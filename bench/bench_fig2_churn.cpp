// Reproduces Figure 2: the number of weights entering/leaving the top-2k
// accumulated-gradient set per iteration under standard SGD on
// MNIST-100-100 — large churn in the first ~10 mini-batches, then a stable
// set with only noise-level swaps (<0.04% of weights in the paper).
#include "bench_common.hpp"

#include "analysis/set_stability.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace dropback;
  util::Flags flags(argc, argv);
  bench::BenchScale scale = bench::BenchScale::mnist(flags);
  bench::print_scale_banner("Figure 2: top-2k set churn", scale);
  auto task = bench::make_mnist_task(scale);

  const std::int64_t k = flags.get_int("k", 2000);
  auto model = nn::models::make_mnist_100_100(7);
  auto params = model->collect_parameters();
  optim::SGD sgd(params, scale.lr);
  analysis::TopKMembershipTracker tracker(params, k);

  train::TrainConfig options;
  options.epochs = scale.epochs;
  options.batch_size = scale.batch_size;
  train::Trainer trainer(*model, sgd, *task.train_set, *task.val_set,
                         options);
  trainer.after_step = [&tracker](std::int64_t step) {
    tracker.update(step);
  };
  trainer.run();

  const auto& series = tracker.series();
  util::CsvWriter csv("fig2_set_churn.csv");
  csv.header({"iteration", "weights_swapped"});
  for (const auto& point : series) {
    csv.row(std::vector<double>{static_cast<double>(point.iteration),
                                static_cast<double>(point.swapped)});
  }

  std::printf("first 10 iterations (left panel):\n");
  std::printf("iter  swapped\n");
  for (std::size_t i = 0; i < series.size() && i < 10; ++i) {
    std::printf("%4lld  %lld\n",
                static_cast<long long>(series[i].iteration),
                static_cast<long long>(series[i].swapped));
  }
  if (series.size() > 10) {
    std::int64_t max_later = 0;
    double mean_later = 0.0;
    for (std::size_t i = 10; i < series.size(); ++i) {
      max_later = std::max(max_later, series[i].swapped);
      mean_later += static_cast<double>(series[i].swapped);
    }
    mean_later /= static_cast<double>(series.size() - 10);
    std::printf(
        "\nremaining %zu iterations (right panel): mean %.1f swapped, max "
        "%lld\n",
        series.size() - 10, mean_later, static_cast<long long>(max_later));
    std::printf(
        "churn as %% of all %lld weights: %.4f%% mean (paper: <0.04%% after "
        "the first epochs)\n",
        static_cast<long long>(89610), 100.0 * mean_later / 89610.0);
  }
  std::printf("Series written to fig2_set_churn.csv\n");
  return 0;
}
