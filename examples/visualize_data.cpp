// Renders the synthetic datasets as terminal ASCII art so the substitution
// for MNIST/CIFAR-10 (DESIGN.md §2) can be eyeballed: digit glyph structure,
// per-sample jitter, and the CIFAR classes' color/texture statistics.
//
//   ./visualize_data [--digits=10] [--noise=0.2]
#include <cstdio>
#include <string>

#include "data/synthetic_cifar.hpp"
#include "data/synthetic_mnist.hpp"
#include "util/flags.hpp"

namespace {

const char* kShades = " .:-=+*#%@";

void print_digit(const float* img) {
  for (int y = 0; y < 28; y += 2) {  // halve vertical for terminal aspect
    std::string line;
    for (int x = 0; x < 28; ++x) {
      const float v = 0.5F * (img[y * 28 + x] +
                              img[std::min(y + 1, 27) * 28 + x]);
      const int shade = std::min(9, static_cast<int>(v * 10.0F));
      line += kShades[shade];
    }
    std::printf("  %s\n", line.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dropback;
  util::Flags flags(argc, argv);

  std::printf("=== SyntheticMnist: one sample per digit class ===\n\n");
  data::SyntheticMnistOptions mnist_opt;
  mnist_opt.num_samples = static_cast<std::int64_t>(
      flags.get_int("digits", 10));
  mnist_opt.noise_stddev = static_cast<float>(flags.get_double("noise", 0.2));
  auto mnist = data::make_synthetic_mnist(mnist_opt);
  std::vector<float> buf(784);
  for (std::int64_t i = 0; i < mnist->size(); ++i) {
    mnist->copy_sample(i, buf.data());
    std::printf("label %lld:\n", static_cast<long long>(mnist->label(i)));
    print_digit(buf.data());
    std::printf("\n");
  }

  std::printf("=== SyntheticCifar: per-class channel statistics ===\n\n");
  data::SyntheticCifarOptions cifar_opt;
  cifar_opt.num_samples = 200;
  auto cifar = data::make_synthetic_cifar(cifar_opt);
  std::vector<float> cbuf(3 * 32 * 32);
  double mean_rgb[10][3] = {};
  int counts[10] = {};
  for (std::int64_t i = 0; i < cifar->size(); ++i) {
    cifar->copy_sample(i, cbuf.data());
    const int cls = static_cast<int>(cifar->label(i));
    for (int ch = 0; ch < 3; ++ch) {
      double acc = 0.0;
      for (int p = 0; p < 1024; ++p) acc += cbuf[ch * 1024 + p];
      mean_rgb[cls][ch] += acc / 1024.0;
    }
    ++counts[cls];
  }
  std::printf("class   mean R   mean G   mean B   (texture: orientation "
              "cls*18deg, occluder cls%%4)\n");
  for (int cls = 0; cls < 10; ++cls) {
    std::printf("%5d   %6.3f   %6.3f   %6.3f\n", cls,
                mean_rgb[cls][0] / counts[cls], mean_rgb[cls][1] / counts[cls],
                mean_rgb[cls][2] / counts[cls]);
  }
  std::printf(
      "\nEach CIFAR class combines a distinct color palette, grating\n"
      "orientation/frequency, and occluder shape; each sample randomizes\n"
      "phase, position, brightness, and pixel noise.\n");
  return 0;
}
