// CIFAR-scale training CLI: pick VGG-S / DenseNet / WRN (width-scaled by
// default; knobs reach paper sizes), a weight budget, and the paper's
// learning-rate schedule; prints per-epoch progress and the compression /
// energy summary.
//
//   ./train_cifar_dropback --model=vgg --budget-ratio=5 --epochs=10
//   ./train_cifar_dropback --model=wrn --wrn-depth=16 --wrn-width=4
//   ./train_cifar_dropback --model=densenet --densenet-growth=8
//
// Telemetry: --metrics-out=run.jsonl / --profile[=prof.jsonl] / --log-json,
// identical to train_mnist_dropback (see examples/telemetry_flags.hpp and
// docs/OBSERVABILITY.md); none of it changes training results.
#include <cstdio>
#include <string>

#include "core/dropback_optimizer.hpp"
#include "core/sparse_weight_store.hpp"
#include "data/synthetic_cifar.hpp"
#include "energy/energy_model.hpp"
#include "nn/models/densenet.hpp"
#include "nn/models/vgg_s.hpp"
#include "nn/models/wrn.hpp"
#include "optim/lr_schedule.hpp"
#include "telemetry_flags.hpp"
#include "train/trainer.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dropback;
  util::Flags flags(argc, argv);
  util::configure_threads(flags);  // --threads N / DROPBACK_THREADS
  const auto telemetry = examples::TelemetryFlags::parse(flags);

  const std::string model_name = flags.get_string("model", "vgg");
  const std::int64_t train_n = flags.get_int("train-n", 400);
  const std::int64_t val_n = flags.get_int("val-n", 200);
  const std::int64_t epochs = flags.get_int("epochs", 8);
  const std::int64_t batch = flags.get_int("batch", 16);
  const double budget_ratio = flags.get_double("budget-ratio", 5.0);
  const float lr = static_cast<float>(flags.get_double("lr", 0.05));

  data::SyntheticCifarOptions data_opt;
  data_opt.num_samples = train_n;
  auto train_set = data::make_synthetic_cifar(data_opt);
  data_opt.num_samples = val_n;
  data_opt.seed = 9;
  auto val_set = data::make_synthetic_cifar(data_opt);

  std::unique_ptr<nn::Module> model;
  if (model_name == "vgg") {
    nn::models::VggSOptions opt;
    opt.width_mult = static_cast<float>(flags.get_double("vgg-width", 0.08));
    model = nn::models::make_vgg_s(opt);
  } else if (model_name == "densenet") {
    nn::models::DenseNetOptions opt;
    opt.growth_rate = flags.get_int("densenet-growth", 6);
    opt.layers_per_block = flags.get_int("densenet-layers", 3);
    model = nn::models::make_densenet(opt);
  } else if (model_name == "wrn") {
    nn::models::WideResNetOptions opt;
    opt.depth = flags.get_int("wrn-depth", 10);
    opt.width = flags.get_int("wrn-width", 2);
    model = nn::models::make_wrn(opt);
  } else {
    std::printf("unknown --model '%s' (vgg | densenet | wrn)\n",
                model_name.c_str());
    return 2;
  }

  const std::int64_t total = model->num_params();
  const std::int64_t budget = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(total / budget_ratio));
  std::printf("%s: %lld parameters, budget %lld (%.1fx target)\n",
              model_name.c_str(), static_cast<long long>(total),
              static_cast<long long>(budget), budget_ratio);

  core::DropBackConfig config;
  config.budget = budget;
  core::DropBackOptimizer optimizer(model->collect_parameters(), lr, config);
  energy::TrafficCounter traffic;
  optimizer.set_traffic_counter(&traffic);

  // CIFAR schedule shape: decay 0.5x periodically (paper: every 25 epochs).
  optim::StepDecay schedule(lr, 0.5F, std::max<std::int64_t>(1, epochs / 3));
  train::TrainOptions options;
  options.epochs = epochs;
  options.batch_size = batch;
  options.schedule = &schedule;
  options.checkpoint_path = flags.get_string("checkpoint", "");
  options.checkpoint_every = flags.get_int("checkpoint-every", 0);
  options.resume = flags.get_bool("resume", false);
  options.anomaly_policy =
      train::parse_anomaly_policy(flags.get_string("anomaly", "off"));
  options.metrics_out = telemetry.metrics_out;
  train::Trainer trainer(*model, optimizer, *train_set, *val_set, options);
  trainer.on_epoch_end = [&](const train::EpochStats& stats) {
    std::printf("epoch %3lld  loss %.4f  train acc %.4f  val acc %.4f\n",
                static_cast<long long>(stats.epoch), stats.train_loss,
                stats.train_acc, stats.val_acc);
  };
  const auto result = trainer.run();

  std::printf("\nbest validation error: %s at epoch %lld\n",
              util::Table::pct(result.best_val_error()).c_str(),
              static_cast<long long>(result.best_epoch));
  std::printf("compression: %.2fx (%lld live weights)\n",
              optimizer.compression_ratio(),
              static_cast<long long>(optimizer.live_weights()));
  std::printf("\nmodeled training energy:\n%s\n", traffic.report().c_str());
  telemetry.report();
  return 0;
}
