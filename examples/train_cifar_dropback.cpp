// CIFAR-scale training CLI: pick VGG-S / DenseNet / WRN (width-scaled by
// default; knobs reach paper sizes), a weight budget, and the paper's
// learning-rate schedule; prints per-epoch progress and the compression /
// energy summary.
//
//   ./train_cifar_dropback --model=vgg --budget-ratio=5 --epochs=10
//   ./train_cifar_dropback --model=wrn --wrn-depth=16 --wrn-width=4
//   ./train_cifar_dropback --model=densenet --densenet-growth=8
//
// All flags — training loop, data pipeline (--prefetch/--augment-noise),
// parallelism (--threads), crash safety (--checkpoint/--resume/--anomaly),
// telemetry (--metrics-out/--profile/--log-json) — are shared with
// train_mnist_dropback via examples/cli_config.hpp; the two binaries differ
// only in model construction and dataset synthesis.
#include <cstdio>
#include <memory>
#include <string>

#include "cli_config.hpp"
#include "data/synthetic_cifar.hpp"
#include "nn/models/densenet.hpp"
#include "nn/models/vgg_s.hpp"
#include "nn/models/wrn.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dropback;
  util::Flags flags(argc, argv);
  examples::CliConfig::Defaults defaults;
  defaults.model = "vgg";
  defaults.train_n = 400;
  defaults.val_n = 200;
  defaults.epochs = 8;
  defaults.batch = 16;
  defaults.budget_ratio = 5.0;
  defaults.lr = 0.05;
  auto cli = examples::CliConfig::parse(flags, defaults);

  data::SyntheticCifarOptions data_opt;
  data_opt.num_samples = cli.train_n;
  auto train_set = data::make_synthetic_cifar(data_opt);
  data_opt.num_samples = cli.val_n;
  data_opt.seed = 9;
  auto val_set = data::make_synthetic_cifar(data_opt);

  std::unique_ptr<nn::Module> model;
  if (cli.model == "vgg") {
    nn::models::VggSOptions opt;
    opt.width_mult = static_cast<float>(flags.get_double("vgg-width", 0.08));
    model = nn::models::make_vgg_s(opt);
  } else if (cli.model == "densenet") {
    nn::models::DenseNetOptions opt;
    opt.growth_rate = flags.get_int("densenet-growth", 6);
    opt.layers_per_block = flags.get_int("densenet-layers", 3);
    model = nn::models::make_densenet(opt);
  } else if (cli.model == "wrn") {
    nn::models::WideResNetOptions opt;
    opt.depth = flags.get_int("wrn-depth", 10);
    opt.width = flags.get_int("wrn-width", 2);
    model = nn::models::make_wrn(opt);
  } else {
    std::printf("unknown --model '%s' (vgg | densenet | wrn)\n",
                cli.model.c_str());
    return 2;
  }

  const std::int64_t total = model->num_params();
  core::DropBackConfig config;
  cli.configure_dropback(total, config);
  std::printf("%s: %lld parameters, schedule %s (%.1fx target)\n",
              cli.model.c_str(), static_cast<long long>(total),
              config.schedule->spec().c_str(),
              static_cast<double>(total) /
                  static_cast<double>(config.budget));
  core::DropBackOptimizer optimizer(model->collect_parameters(), cli.lr,
                                    config);
  cli.train.budget_schedule = config.schedule;
  energy::TrafficCounter traffic;
  optimizer.set_traffic_counter(&traffic);

  // CIFAR schedule shape: decay 0.5x periodically (paper: every 25 epochs).
  optim::StepDecay schedule(cli.lr, 0.5F,
                            std::max<std::int64_t>(1, cli.train.epochs / 3));
  cli.train.schedule = &schedule;

  train::Trainer trainer(*model, optimizer, *train_set, *val_set, cli.train);
  trainer.on_epoch_end = [&](const train::EpochStats& stats) {
    std::printf("epoch %3lld  loss %.4f  train acc %.4f  val acc %.4f\n",
                static_cast<long long>(stats.epoch), stats.train_loss,
                stats.train_acc, stats.val_acc);
  };
  const auto result = trainer.run();

  std::printf("\nbest validation error: %s at epoch %lld\n",
              util::Table::pct(result.best_val_error()).c_str(),
              static_cast<long long>(result.best_epoch));
  std::printf("compression: %.2fx (%lld live weights)\n",
              optimizer.compression_ratio(),
              static_cast<long long>(optimizer.live_weights()));
  std::printf("\nmodeled training energy:\n%s\n", traffic.report().c_str());

  if (!cli.save_path.empty()) {
    auto store = core::SparseWeightStore::from_optimizer(optimizer);
    store.save_file(cli.save_path);
    std::printf("\nsaved compressed model to %s (%lld bytes vs %lld dense)\n",
                cli.save_path.c_str(), static_cast<long long>(store.bytes()),
                static_cast<long long>(store.dense_bytes()));
  }
  cli.report_telemetry();
  return 0;
}
