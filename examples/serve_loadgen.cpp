// Open-loop load generator for the inference server (docs/SERVING.md):
// measures pipelined service capacity with a warm-up burst, then offers a
// configurable multiple of it for a fixed window and reports latency
// percentiles and the outcome breakdown as one flat JSON object (the
// schema scripts/ and dashboards consume, same shape as kernel timings).
//
//   ./serve_loadgen --dir=variants [--seconds=2] [--overload=1.0]
//                   [--threads=2] [--deadline-ms=50] [--models=v0,v1]
//                   [--max-batch=8] [--queue=64] [--inflight=128]
//
// --overload=2 reproduces the chaos-test regime interactively; combine
// with env fault injection to watch the degradation ladder under load:
//
//   DROPBACK_FAULT=rerr:0 ./serve_loadgen --dir=variants --overload=2
//
// The driver is deliberately single-threaded (open-loop pacing against
// absolute due-times): all parallelism lives inside the server.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "data/synthetic_mnist.hpp"
#include "obs/json.hpp"
#include "serve/server.hpp"
#include "util/flags.hpp"
#include "util/steady_clock.hpp"

namespace {

using namespace dropback;

std::vector<std::string> split_models(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos
                                          : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

double percentile_ms(std::vector<std::int64_t>& latencies_us, double q) {
  if (latencies_us.empty()) return 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(latencies_us.size() - 1) + 0.5);
  return static_cast<double>(latencies_us[rank]) / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string dir = flags.get_string("dir", "variants");
  const double seconds = flags.get_double("seconds", 2.0);
  const double overload = flags.get_double("overload", 1.0);
  const std::vector<std::string> models =
      split_models(flags.get_string("models", "v0"));
  if (models.empty()) {
    std::fprintf(stderr, "serve_loadgen: --models must name a variant\n");
    return 2;
  }

  serve::ServerConfig config;
  config.threads = static_cast<int>(flags.get_int("threads", 2));
  config.admission.queue_capacity =
      static_cast<std::size_t>(flags.get_int("queue", 64));
  config.admission.max_inflight =
      static_cast<std::size_t>(flags.get_int("inflight", 128));
  config.batch.max_batch =
      static_cast<std::size_t>(flags.get_int("max-batch", 8));
  config.cache.dir = dir;
  config.cache.fallback_model = flags.get_string("fallback", "fallback");
  config.default_deadline_us = flags.get_int("deadline-ms", 50) * 1000;
  serve::InferenceServer server(config);

  data::SyntheticMnistOptions data_opt;
  data_opt.num_samples = 256;
  data_opt.seed = 23;
  auto inputs = data::make_synthetic_mnist(data_opt);
  auto input_for = [&](std::uint64_t i) {
    return inputs->slice(static_cast<std::int64_t>(
                             i % static_cast<std::uint64_t>(inputs->size())),
                         1)
        .images;
  };
  util::ClockSource& clock = util::steady_clock_source();

  // Warm-up burst: fills the pipeline (caches warm, all workers busy) and
  // yields the capacity estimate the offered rate is derived from. A
  // serial closed loop would measure latency, not throughput.
  constexpr int kWarmup = 48;
  const std::int64_t warm_start = clock.now_us();
  {
    std::vector<std::shared_ptr<serve::ResponseSlot>> warm;
    for (int i = 0; i < kWarmup; ++i) {
      warm.push_back(server.submit(models[i % models.size()],
                                   input_for(i), 10'000'000));
    }
    for (const auto& slot : warm) slot->wait_us(10'000'000);
  }
  const std::int64_t per_request_us = std::max<std::int64_t>(
      1, (clock.now_us() - warm_start) / kWarmup);
  const std::int64_t gap_us = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(static_cast<double>(per_request_us) /
                                   (overload > 0.0 ? overload : 1.0)));

  // Measured window: open-loop submission paced against absolute
  // due-times (oversleep self-corrects, keeping the offered rate honest).
  const auto window_us = static_cast<std::int64_t>(seconds * 1e6);
  std::vector<std::shared_ptr<serve::ResponseSlot>> slots;
  const std::int64_t start = clock.now_us();
  std::int64_t next_due = start;
  for (std::uint64_t i = 0; clock.now_us() - start < window_us; ++i) {
    const std::int64_t now = clock.now_us();
    if (now < next_due) clock.sleep_us(next_due - now);
    slots.push_back(
        server.submit(models[i % models.size()], input_for(i)));
    next_due += gap_us;
  }
  for (const auto& slot : slots) slot->wait_us(30'000'000);
  const std::int64_t elapsed_us = clock.now_us() - start;
  server.stop();

  std::vector<std::int64_t> ok_latencies_us;
  std::uint64_t degraded = 0;
  for (const auto& slot : slots) {
    if (slot->outcome() == serve::Outcome::kOk) {
      ok_latencies_us.push_back(slot->latency_us());
      if (slot->degraded()) ++degraded;
    }
  }
  const serve::ServerStats stats = server.stats();
  const double p50 = percentile_ms(ok_latencies_us, 0.50);
  const double p99 = percentile_ms(ok_latencies_us, 0.99);
  const double qps = 1e6 * static_cast<double>(ok_latencies_us.size()) /
                     static_cast<double>(std::max<std::int64_t>(1,
                                                                elapsed_us));
  const auto offered = static_cast<std::uint64_t>(slots.size());
  obs::JsonObject summary;
  summary.add("type", "serve_loadgen")
      .add("offered", offered)
      .add("offered_qps", 1e6 * static_cast<double>(offered) /
                              static_cast<double>(elapsed_us))
      .add("ok", static_cast<std::uint64_t>(ok_latencies_us.size()))
      .add("ok_qps", qps)
      .add("degraded", degraded)
      .add("rejected", stats.rejected())
      .add("shed", stats.shed())
      .add("unavailable", stats.unavailable)
      .add("shed_rate",
           static_cast<double>(stats.rejected() + stats.shed()) /
               static_cast<double>(std::max<std::uint64_t>(1, offered)))
      .add("p50_ms", p50)
      .add("p99_ms", p99)
      .add("deadline_ms",
           static_cast<double>(config.default_deadline_us) / 1000.0)
      .add("threads", static_cast<std::int64_t>(config.threads))
      .add("overload", overload);
  std::printf("%s\n", summary.str().c_str());
  return 0;
}
