// Accelerator sizing walkthrough — the paper's §6 claim, quantified:
// "DropBack can be used to train networks 5x-10x larger than currently
// possible with typical hardware, or to train/retrain standard-size
// networks on small mobile and embedded devices."
//
// Given an on-chip SRAM budget, this example reports which training schemes
// fit each of the paper's models on-chip and the largest model each scheme
// can train without spilling weight state to DRAM.
//
//   ./accelerator_sizing [--sram-kb=256]
#include <cstdio>

#include "energy/memory_hierarchy.hpp"
#include "nn/models/densenet.hpp"
#include "nn/models/lenet.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dropback;
  util::Flags flags(argc, argv);
  energy::AcceleratorSpec accel;
  accel.sram_bytes = flags.get_int("sram-kb", 256) * 1024;

  std::printf("accelerator: %lld KiB on-chip SRAM (%lld float32 values)\n\n",
              static_cast<long long>(accel.sram_bytes / 1024),
              static_cast<long long>(accel.sram_values()));

  struct ModelCase {
    const char* name;
    std::int64_t dense_weights;
    std::int64_t dropback_budget;
  };
  // The paper's models with their Table 1/3 budgets.
  const ModelCase cases[] = {
      {"MNIST-100-100 (90k) @ 20k", 89610, 20000},
      {"LeNet-300-100 (267k) @ 50k", 266610, 50000},
      {"VGG-S (15M) @ 3M", 15000000, 3000000},
      {"DenseNet (2.7M) @ 600k", 2700000, 600000},
      {"WRN-28-10 (36M) @ 5M", 36000000, 5000000},
  };
  const energy::TrainingScheme schemes[] = {
      energy::TrainingScheme::kDenseSgd,
      energy::TrainingScheme::kDenseMomentum,
      energy::TrainingScheme::kDenseAdam,
      energy::TrainingScheme::kDropBack,
  };

  for (const auto& model_case : cases) {
    util::Table table({"training scheme", "weight-state floats",
                       "fits on-chip?", "spilled values"});
    for (const auto scheme : schemes) {
      const auto report = energy::evaluate_fit(
          accel, scheme, model_case.dense_weights,
          model_case.dropback_budget);
      table.add_row({energy::scheme_name(report.scheme),
                     util::Table::count(report.state_values),
                     report.fits_on_chip ? "yes" : "no",
                     report.fits_on_chip
                         ? "0"
                         : util::Table::count(report.spilled_values)});
    }
    std::printf("%s\n%s\n", model_case.name, table.render().c_str());
  }

  std::printf("largest dense-equivalent model trainable fully on-chip:\n");
  util::Table table({"compression", "DropBack-trainable size",
                     "vs dense-SGD-trainable"});
  for (double compression : {2.0, 5.0, 7.3, 13.3, 59.7}) {
    const double multiplier =
        energy::trainable_size_multiplier(accel, compression);
    table.add_row(
        {util::Table::times(compression, 1),
         util::Table::count(static_cast<std::int64_t>(
             static_cast<double>(accel.sram_values()) / 2.0 * compression)),
         util::Table::times(multiplier, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "At the paper's 13x-60x MNIST compression points the multiplier\n"
      "lands in (and beyond) the claimed 5x-10x band; at the conservative\n"
      "5x CIFAR compression it is ~2.5x with index overhead counted.\n");
  return 0;
}
