// store_tool — inspect and transform compressed DropBack models (.dbsw).
//
//   ./store_tool info model.dbsw           # per-layer summary + totals
//   ./store_tool verify model.dbsw         # structural validation
//   ./store_tool quantize model.dbsw out.dbqs --bits=8
//   ./store_tool diff a.dbsw b.dbsw        # compare two stores
//   ./store_tool migrate old.dbsw new.dbsw # legacy flat -> checksummed
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/sparse_weight_store.hpp"
#include "quant/quantized_store.hpp"
#include "util/atomic_file.hpp"
#include "util/container.hpp"
#include "util/flags.hpp"
#include "util/io_error.hpp"
#include "util/table.hpp"

namespace {

using namespace dropback;

int cmd_info(const std::string& path) {
  const auto store = core::SparseWeightStore::load_file(path);
  util::Table table({"parameter", "shape", "dense", "tracked", "layer x",
                     "init"});
  for (std::size_t p = 0; p < store.num_params(); ++p) {
    const auto& rec = store.record(p);
    const auto dense = rec.dense_numel();
    const auto tracked = static_cast<std::int64_t>(rec.entries.size());
    table.add_row({rec.name, tensor::shape_str(rec.shape),
                   std::to_string(dense), std::to_string(tracked),
                   tracked > 0 ? util::Table::times(
                                     static_cast<double>(dense) / tracked, 1)
                               : "inf",
                   rec.init.describe()});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "totals: %lld tracked of %lld dense (%.2fx weights), %lld bytes vs "
      "%lld dense bytes (%.2fx storage)\n",
      static_cast<long long>(store.live_weights()),
      static_cast<long long>(store.dense_weights()),
      store.compression_ratio(), static_cast<long long>(store.bytes()),
      static_cast<long long>(store.dense_bytes()),
      static_cast<double>(store.dense_bytes()) /
          static_cast<double>(store.bytes()));
  return 0;
}

/// "checksummed container" or "legacy flat" from the file's first bytes.
const char* detect_format(const std::string& path) {
  const std::string bytes = util::read_file(path);
  if (bytes.size() >= 4 &&
      std::memcmp(bytes.data(), util::kContainerMagic, 4) == 0) {
    return "checksummed container";
  }
  return "legacy flat";
}

int cmd_verify(const std::string& path) {
  std::printf("format: %s\n", detect_format(path));
  const auto store = core::SparseWeightStore::load_file(path);
  int problems = 0;
  for (std::size_t p = 0; p < store.num_params(); ++p) {
    const auto& rec = store.record(p);
    const std::int64_t dense = rec.dense_numel();
    std::int64_t prev = -1;
    for (const auto& [idx, val] : rec.entries) {
      if (static_cast<std::int64_t>(idx) >= dense) {
        std::printf("FAIL %s: entry index %u out of range %lld\n",
                    rec.name.c_str(), idx, static_cast<long long>(dense));
        ++problems;
      }
      if (static_cast<std::int64_t>(idx) <= prev) {
        std::printf("FAIL %s: entries not strictly sorted at %u\n",
                    rec.name.c_str(), idx);
        ++problems;
      }
      if (!std::isfinite(val)) {
        std::printf("FAIL %s: non-finite value at %u\n", rec.name.c_str(),
                    idx);
        ++problems;
      }
      prev = idx;
    }
    // Materialization must succeed and be finite.
    const auto dense_tensor = store.materialize(p);
    for (std::int64_t i = 0; i < dense_tensor.numel(); ++i) {
      if (!std::isfinite(dense_tensor[i])) {
        std::printf("FAIL %s: non-finite regenerated value at %lld\n",
                    rec.name.c_str(), static_cast<long long>(i));
        ++problems;
        break;
      }
    }
  }
  if (problems == 0) {
    std::printf("OK: %zu parameters, %lld tracked weights, all invariants "
                "hold\n",
                store.num_params(),
                static_cast<long long>(store.live_weights()));
  }
  return problems == 0 ? 0 : 1;
}

int cmd_quantize(const std::string& in_path, const std::string& out_path,
                 int bits) {
  const auto store = core::SparseWeightStore::load_file(in_path);
  const auto q = quant::QuantizedSparseStore::quantize(store, bits);
  try {
    util::atomic_write_file(out_path,
                            [&](std::ostream& out) { q.save(out); });
  } catch (const util::IoError& e) {
    std::printf("cannot write %s: %s\n", out_path.c_str(), e.what());
    return 1;
  }
  std::printf(
      "quantized to int%d: %lld -> %lld bytes (%.2fx vs dense f32), max "
      "|err| %.5f\n",
      bits, static_cast<long long>(store.bytes()),
      static_cast<long long>(q.bytes()), q.compression_ratio_bytes(),
      q.max_abs_error(store));
  return 0;
}

int cmd_migrate(const std::string& in_path, const std::string& out_path) {
  const char* from = detect_format(in_path);
  const auto store = core::SparseWeightStore::load_file(in_path);
  store.save_file(out_path);
  std::printf("migrated %s (%s) -> %s (checksummed container, %lld bytes)\n",
              in_path.c_str(), from, out_path.c_str(),
              static_cast<long long>(store.bytes()));
  return 0;
}

int cmd_diff(const std::string& a_path, const std::string& b_path) {
  const auto a = core::SparseWeightStore::load_file(a_path);
  const auto b = core::SparseWeightStore::load_file(b_path);
  if (a == b) {
    std::printf("identical\n");
    return 0;
  }
  if (a.num_params() != b.num_params()) {
    std::printf("different parameter counts: %zu vs %zu\n", a.num_params(),
                b.num_params());
    return 1;
  }
  for (std::size_t p = 0; p < a.num_params(); ++p) {
    const auto& ra = a.record(p);
    const auto& rb = b.record(p);
    if (ra.shape != rb.shape) {
      std::printf("%s: shape %s vs %s\n", ra.name.c_str(),
                  tensor::shape_str(ra.shape).c_str(),
                  tensor::shape_str(rb.shape).c_str());
      continue;
    }
    if (!(ra.init == rb.init)) {
      std::printf("%s: init %s vs %s\n", ra.name.c_str(),
                  ra.init.describe().c_str(), rb.init.describe().c_str());
    }
    if (ra.entries.size() != rb.entries.size()) {
      std::printf("%s: %zu vs %zu tracked entries\n", ra.name.c_str(),
                  ra.entries.size(), rb.entries.size());
    } else if (ra.entries != rb.entries) {
      std::size_t diffs = 0;
      for (std::size_t e = 0; e < ra.entries.size(); ++e) {
        if (ra.entries[e] != rb.entries[e]) ++diffs;
      }
      std::printf("%s: %zu differing entries of %zu\n", ra.name.c_str(),
                  diffs, ra.entries.size());
    }
  }
  return 1;
}

void usage() {
  std::printf(
      "usage:\n"
      "  store_tool info <model.dbsw>\n"
      "  store_tool verify <model.dbsw>\n"
      "  store_tool quantize <in.dbsw> <out.dbqs> [--bits=8]\n"
      "  store_tool diff <a.dbsw> <b.dbsw>\n"
      "  store_tool migrate <old.dbsw> <new.dbsw>\n");
}

}  // namespace

int main(int argc, char** argv) {
  dropback::util::Flags flags(argc, argv);
  const auto& args = flags.positional();
  try {
    if (args.size() == 2 && args[0] == "info") return cmd_info(args[1]);
    if (args.size() == 2 && args[0] == "verify") return cmd_verify(args[1]);
    if (args.size() == 3 && args[0] == "quantize") {
      return cmd_quantize(args[1], args[2],
                          static_cast<int>(flags.get_int("bits", 8)));
    }
    if (args.size() == 3 && args[0] == "diff") {
      return cmd_diff(args[1], args[2]);
    }
    if (args.size() == 3 && args[0] == "migrate") {
      return cmd_migrate(args[1], args[2]);
    }
  } catch (const dropback::util::IoError& e) {
    std::printf("corrupt or unreadable store: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::printf("error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
