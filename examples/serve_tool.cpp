// Operator's walkthrough for the inference server (docs/SERVING.md):
// prepare a directory of DropBack variant stores, serve queries against
// them, and deliberately damage one to watch the degradation ladder
// (retry -> quarantine -> fallback) engage instead of a crash.
//
//   ./serve_tool prepare --dir=variants [--variants=3] [--epochs=2]
//                        [--budget=2000]
//       trains a small DropBack model on synthetic MNIST, exports it as
//       fallback.dbsw, then continues training one epoch per variant and
//       exports v0.dbsw .. v{N-1}.dbsw — checkpoints-as-variants, the
//       deployment shape the tiny DBSW footprint makes practical.
//
//   ./serve_tool query --dir=variants [--model=v0] [--requests=32]
//                      [--threads=2] [--deadline-ms=50]
//       starts an InferenceServer over the directory, submits requests,
//       prints per-outcome counts, and cross-checks served outputs
//       bitwise against a direct RegenMlp forward on the same store.
//
//   ./serve_tool corrupt --dir=variants --model=v1 [--truncate]
//                        [--flip=<byte offset>]
//       damages a variant file in place (default: flip one payload byte,
//       which the DBSW section checksum catches). Re-run `query` against
//       it to see quarantine + fallback and the serve.* counters move.
//
// Fault injection also works from the environment, no corrupt step needed:
//   DROPBACK_FAULT=rerr:0 ./serve_tool query --dir=variants
#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/dropback_optimizer.hpp"
#include "core/sparse_weight_store.hpp"
#include "data/synthetic_mnist.hpp"
#include "inference/regen_forward.hpp"
#include "nn/models/lenet.hpp"
#include "serve/server.hpp"
#include "train/trainer.hpp"
#include "util/atomic_file.hpp"
#include "util/flags.hpp"
#include "util/io_error.hpp"

namespace {

using namespace dropback;

int cmd_prepare(const util::Flags& flags) {
  const std::string dir = flags.get_string("dir", "variants");
  const long long variants = flags.get_int("variants", 3);
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "serve_tool: cannot create %s\n", dir.c_str());
    return 1;
  }

  data::SyntheticMnistOptions data_opt;
  data_opt.num_samples = 1000;
  auto train_set = data::make_synthetic_mnist(data_opt);
  data_opt.num_samples = 200;
  data_opt.seed = 2;
  auto val_set = data::make_synthetic_mnist(data_opt);

  auto model = nn::models::make_mnist_100_100(7);
  core::DropBackConfig config;
  config.budget = flags.get_int("budget", 2000);
  core::DropBackOptimizer optimizer(model->collect_parameters(), 0.1F,
                                    config);
  train::TrainConfig options;
  options.epochs = flags.get_int("epochs", 2);
  options.batch_size = 32;
  train::Trainer(*model, optimizer, *train_set, *val_set, options).run();

  auto export_store = [&](const std::string& name) {
    auto store = core::SparseWeightStore::from_optimizer(optimizer);
    const std::string path = dir + "/" + name + ".dbsw";
    store.save_file(path);
    std::printf("  %-12s %6lld bytes  (%lld tracked weights)\n",
                path.c_str(), static_cast<long long>(store.bytes()),
                static_cast<long long>(store.live_weights()));
  };
  std::printf("exported variants under %s/:\n", dir.c_str());
  export_store("fallback");
  // Each additional epoch of training becomes its own serveable variant.
  train::TrainConfig continue_opt;
  continue_opt.epochs = 1;
  continue_opt.batch_size = 32;
  for (long long v = 0; v < variants; ++v) {
    train::Trainer(*model, optimizer, *train_set, *val_set, continue_opt)
        .run();
    export_store("v" + std::to_string(v));
  }
  std::printf("\nnext: ./serve_tool query --dir=%s --model=v0\n",
              dir.c_str());
  return 0;
}

int cmd_query(const util::Flags& flags) {
  const std::string dir = flags.get_string("dir", "variants");
  const std::string model_id = flags.get_string("model", "v0");
  const long long requests = flags.get_int("requests", 32);

  serve::ServerConfig config;
  config.threads = static_cast<int>(flags.get_int("threads", 2));
  config.cache.dir = dir;
  config.cache.fallback_model = "fallback";
  config.default_deadline_us = flags.get_int("deadline-ms", 50) * 1000;

  data::SyntheticMnistOptions data_opt;
  data_opt.num_samples = requests;
  data_opt.seed = 11;
  auto queries = data::make_synthetic_mnist(data_opt);

  std::vector<std::shared_ptr<serve::ResponseSlot>> slots;
  {
    serve::InferenceServer server(config);
    for (long long i = 0; i < requests; ++i) {
      slots.push_back(
          server.submit(model_id, queries->slice(i, 1).images));
    }
    for (const auto& slot : slots) slot->wait_us(10'000'000);
    // Destructor == stop(): joins workers, resolves any stragglers, and
    // emits the serve_summary event if an event stream is configured.
  }

  // Tally outcomes and cross-check kOk outputs bitwise against a direct
  // RegenMlp forward — serving adds scheduling, never numerics.
  std::map<std::string, int> by_outcome;
  long long mismatches = 0;
  core::SparseWeightStore reference_store;  // must outlive the engine
  std::unique_ptr<inference::RegenMlp> reference;
  try {
    reference_store =
        core::SparseWeightStore::load_file(dir + "/" + model_id + ".dbsw");
    reference = std::make_unique<inference::RegenMlp>(reference_store);
  } catch (const util::IoError&) {
    // Primary unreadable (e.g. after `corrupt`): skip the bitwise check;
    // the point of that run is watching fallback/quarantine outcomes.
  }
  for (long long i = 0; i < requests; ++i) {
    const auto& slot = *slots[i];
    std::string label = serve::outcome_name(slot.outcome());
    if (slot.degraded()) label += " (degraded, via " + slot.served_model() + ")";
    ++by_outcome[label];
    if (slot.outcome() != serve::Outcome::kOk || slot.degraded() ||
        !reference) {
      continue;
    }
    const tensor::Tensor expect =
        reference->forward(queries->slice(i, 1).images);
    const tensor::Tensor& got = slot.output();
    for (std::int64_t k = 0; k < expect.numel(); ++k) {
      if (got[k] != expect[k]) {
        ++mismatches;
        break;
      }
    }
  }

  std::printf("served %lld requests for '%s' (%d threads):\n", requests,
              model_id.c_str(), config.threads);
  for (const auto& [name, count] : by_outcome) {
    std::printf("  %-24s %d\n", name.c_str(), count);
  }
  if (reference) {
    std::printf("bitwise check vs direct RegenMlp: %s\n",
                mismatches == 0 ? "identical" : "MISMATCH");
  }
  std::printf("\nmetrics: %s\n",
              obs::MetricsRegistry::global().snapshot_json().c_str());
  return mismatches == 0 ? 0 : 1;
}

int cmd_corrupt(const util::Flags& flags) {
  const std::string dir = flags.get_string("dir", "variants");
  const std::string model_id = flags.get_string("model", "v0");
  const std::string path = dir + "/" + model_id + ".dbsw";
  std::string bytes;
  try {
    bytes = util::read_file(path);
  } catch (const util::IoError& e) {
    std::fprintf(stderr, "serve_tool: %s\n", e.what());
    return 1;
  }
  if (flags.get_bool("truncate", false)) {
    bytes.resize(bytes.size() / 2);
    std::printf("truncated %s to %zu bytes\n", path.c_str(), bytes.size());
  } else {
    const auto offset = static_cast<std::size_t>(flags.get_int(
        "flip", static_cast<long long>(bytes.size()) / 2));
    if (offset >= bytes.size()) {
      std::fprintf(stderr, "serve_tool: --flip=%zu out of range (%zu)\n",
                   offset, bytes.size());
      return 1;
    }
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0xFF);
    std::printf("flipped byte %zu of %s\n", offset, path.c_str());
  }
  util::atomic_write_file(path,
                          [&](std::ostream& out) { out << bytes; });
  std::printf("re-run `query --model=%s` to watch quarantine + fallback\n",
              model_id.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  dropback::util::Flags flags(argc, argv);
  const auto& positional = flags.positional();
  const std::string command = positional.empty() ? "" : positional.front();
  if (command == "prepare") return cmd_prepare(flags);
  if (command == "query") return cmd_query(flags);
  if (command == "corrupt") return cmd_corrupt(flags);
  std::fprintf(stderr,
               "usage: serve_tool prepare|query|corrupt [--dir=variants] "
               "[--model=v0] ...\n(see the header comment for the full "
               "flag list)\n");
  return 2;
}
