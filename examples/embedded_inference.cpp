// Embedded deployment walkthrough: train with DropBack, export the
// compressed SparseWeightStore, then — acting as the "device" — reload it
// and run inference two ways:
//   1. materialize-and-run (dense tensors rebuilt transiently), and
//   2. the streaming RegenMlp engine, which never allocates a dense weight
//      tensor at all: every untracked weight is regenerated inside the MAC
//      loop, the paper's actual deployment model.
// Reports memory footprint and modeled energy vs a dense deployment.
//
//   ./embedded_inference [--budget=5000] [--epochs=12]
#include <cstdio>

#include "core/dropback_optimizer.hpp"
#include "core/sparse_weight_store.hpp"
#include "data/synthetic_mnist.hpp"
#include "energy/energy_model.hpp"
#include "inference/regen_forward.hpp"
#include "nn/loss.hpp"
#include "nn/models/lenet.hpp"
#include "train/trainer.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace dropback;
  util::Flags flags(argc, argv);
  const std::int64_t budget = flags.get_int("budget", 5000);

  // ---- "workstation" side: train and export -------------------------------
  data::SyntheticMnistOptions data_opt;
  data_opt.num_samples = 1000;
  auto train_set = data::make_synthetic_mnist(data_opt);
  data_opt.num_samples = 300;
  data_opt.seed = 2;
  auto val_set = data::make_synthetic_mnist(data_opt);

  auto model = nn::models::make_mnist_100_100(7);
  core::DropBackConfig config;
  config.budget = budget;
  core::DropBackOptimizer optimizer(model->collect_parameters(), 0.1F,
                                    config);
  train::TrainConfig options;
  options.epochs = flags.get_int("epochs", 12);
  options.batch_size = 32;
  train::Trainer trainer(*model, optimizer, *train_set, *val_set, options);
  trainer.run();
  const double trained_acc = train::Trainer::evaluate(*model, *val_set);

  auto store = core::SparseWeightStore::from_optimizer(optimizer);
  const std::string path = flags.get_string("save", "embedded_model.dbsw");
  store.save_file(path);
  std::printf("exported %s: %lld bytes (%lld live weights + InitSpecs)\n",
              path.c_str(), static_cast<long long>(store.bytes()),
              static_cast<long long>(store.live_weights()));
  std::printf("dense float32 equivalent: %lld bytes -> %.1fx smaller\n\n",
              static_cast<long long>(store.dense_bytes()),
              static_cast<double>(store.dense_bytes()) /
                  static_cast<double>(store.bytes()));

  // ---- "device" side: reload and run regen-based inference ----------------
  auto loaded = core::SparseWeightStore::load_file(path);
  auto device_model = nn::models::make_mnist_100_100(999);  // blank weights
  energy::TrafficCounter weight_fetch;
  loaded.apply_to(device_model->collect_parameters(), &weight_fetch);
  const double device_acc = train::Trainer::evaluate(*device_model, *val_set);

  std::printf("trained accuracy : %.2f%%\n", 100.0 * trained_acc);
  std::printf("device accuracy  : %.2f%% (must match exactly)\n",
              100.0 * device_acc);
  std::printf("\nweight-fetch traffic for materializing the model:\n%s\n",
              weight_fetch.report().c_str());

  // Streaming engine: weights are produced inside the MAC loop; the only
  // weight storage the engine holds is the tracked entries themselves.
  inference::RegenMlp engine(loaded);
  energy::TrafficCounter streaming_traffic;
  std::int64_t correct = 0, seen = 0;
  for (std::int64_t first = 0; first < val_set->size(); first += 64) {
    const std::int64_t count = std::min<std::int64_t>(64, val_set->size() - first);
    data::Batch batch = val_set->slice(first, count);
    const tensor::Tensor logits =
        engine.forward(batch.images, &streaming_traffic);
    correct += static_cast<std::int64_t>(
        nn::accuracy(logits, batch.labels) * static_cast<double>(count) +
        0.5);
    seen += count;
  }
  const double streaming_acc =
      static_cast<double>(correct) / static_cast<double>(seen);
  std::printf("\nstreaming RegenMlp accuracy: %.2f%% over %lld samples\n",
              100.0 * streaming_acc, static_cast<long long>(seen));
  std::printf("streaming engine weight storage: %lld floats (dense model: "
              "%lld)\n",
              static_cast<long long>(engine.live_floats()),
              static_cast<long long>(engine.dense_floats()));
  std::printf("streaming weight traffic across the whole val set:\n%s\n",
              streaming_traffic.report().c_str());
  std::printf(
      "\nEvery untracked weight was recomputed from (seed, index) — %llu\n"
      "regens replaced what would have been DRAM reads in a dense model.\n",
      static_cast<unsigned long long>(weight_fetch.regens));
  return device_acc == trained_acc ? 0 : 1;
}
