// metrics_tool — validator / summarizer for the JSONL telemetry streams
// written by --metrics-out (obs/event_stream.hpp schemas), and critical-path
// analyzer for Chrome-trace files exported by the span tracer (obs/trace.hpp).
//
//   ./metrics_tool run.jsonl               # validate + summary table
//   ./metrics_tool --strict run.jsonl      # exit 1 on any schema violation
//   ./metrics_tool trace serve.trace.json  # per-segment p50/p99 + slowest
//   ./metrics_tool trace --top=5 t.json    # traces with their span trees
//
// JSONL mode: every line must parse as one flat JSON object with a known
// "type" ("step" | "epoch" | "checkpoint" | "anomaly" | "summary") carrying
// that type's required fields. Corrupt telemetry fails loudly: a malformed
// line prints its line number and the parser's byte-position diagnostic,
// and the tool exits non-zero. The summary reports record counts per type,
// the min/max step loss, total step time, and tracked-set churn totals.
//
// Trace mode: groups spans by trace id, reports count/p50/p99/max duration
// per span name (the serve segments queue_wait/batch_form/resolve/exec/
// deliver tile each request, so their quantiles decompose e2e latency), and
// prints the top-k slowest traces as indented span trees.
#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "util/atomic_file.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using dropback::obs::JsonValue;

/// Requires `key` to exist with number type (or null when nullable).
/// Returns false (and prints) on violation.
bool check_field(const std::map<std::string, JsonValue>& rec,
                 const std::string& key, bool nullable, std::size_t lineno,
                 std::vector<std::string>& errors) {
  const auto it = rec.find(key);
  if (it == rec.end()) {
    errors.push_back("line " + std::to_string(lineno) + ": missing field '" +
                     key + "'");
    return false;
  }
  if (it->second.type == JsonValue::Type::kNull) {
    if (!nullable) {
      errors.push_back("line " + std::to_string(lineno) + ": field '" + key +
                       "' must not be null");
      return false;
    }
    return true;
  }
  if (it->second.type != JsonValue::Type::kNumber) {
    errors.push_back("line " + std::to_string(lineno) + ": field '" + key +
                     "' must be a number");
    return false;
  }
  return true;
}

double number_or(const std::map<std::string, JsonValue>& rec,
                 const std::string& key, double fallback) {
  const auto it = rec.find(key);
  if (it == rec.end() || it->second.type != JsonValue::Type::kNumber) {
    return fallback;
  }
  return it->second.number;
}

// ---------------------------------------------------------------------------
// trace subcommand
// ---------------------------------------------------------------------------

/// Nearest-rank quantile over microsecond durations (sorted ascending).
std::int64_t dur_quantile(const std::vector<std::int64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  std::size_t rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size()) + 0.5);
  if (rank < 1) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

std::string format_ms(std::int64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(us) / 1000.0);
  return buf;
}

/// One request's (or step's) reassembled trace.
struct TraceGroup {
  std::uint64_t trace_id = 0;
  std::vector<dropback::obs::SpanRecord> spans;
  std::int64_t start_us = std::numeric_limits<std::int64_t>::max();
  std::int64_t end_us = std::numeric_limits<std::int64_t>::min();
  std::int64_t duration_us() const { return end_us - start_us; }
};

void print_span_tree(const TraceGroup& group,
                     const std::map<std::uint64_t, std::vector<std::size_t>>&
                         children,
                     std::size_t index, int depth) {
  const dropback::obs::SpanRecord& span = group.spans[index];
  std::printf("    %*s%-14s +%s ms  %s ms  (tid %d)\n", depth * 2, "",
              span.name.c_str(),
              format_ms(span.start_us - group.start_us).c_str(),
              format_ms(span.dur_us).c_str(), span.tid);
  const auto it = children.find(span.span_id);
  if (it == children.end()) return;
  for (const std::size_t child : it->second) {
    print_span_tree(group, children, child, depth + 1);
  }
}

int run_trace_mode(const std::string& path, int top_k) {
  using namespace dropback;
  std::vector<obs::SpanRecord> spans;
  try {
    spans = obs::parse_chrome_trace(util::read_file(path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "metrics_tool: %s\n", e.what());
    return 1;
  }
  if (spans.empty()) {
    std::fprintf(stderr, "metrics_tool: %s contains no spans\n",
                 path.c_str());
    return 1;
  }

  std::map<std::uint64_t, TraceGroup> groups;
  std::map<std::string, std::vector<std::int64_t>> durs_by_name;
  for (const obs::SpanRecord& span : spans) {
    TraceGroup& g = groups[span.trace_id];
    g.trace_id = span.trace_id;
    g.start_us = std::min(g.start_us, span.start_us);
    g.end_us = std::max(g.end_us, span.start_us + span.dur_us);
    g.spans.push_back(span);
    durs_by_name[span.name].push_back(span.dur_us);
  }

  // Per-segment latency decomposition: the serve segments tile each
  // request, so e.g. p99(queue_wait) answers "where do slow requests wait".
  util::Table table({"span", "count", "p50 ms", "p99 ms", "max ms"});
  for (auto& [name, durs] : durs_by_name) {
    std::sort(durs.begin(), durs.end());
    table.add_row({name, std::to_string(durs.size()),
                   format_ms(dur_quantile(durs, 0.5)),
                   format_ms(dur_quantile(durs, 0.99)),
                   format_ms(durs.back())});
  }
  std::printf("%zu span(s) across %zu trace(s)\n%s", spans.size(),
              groups.size(), table.render().c_str());

  // Top-k slowest traces with their span trees (critical paths).
  std::vector<const TraceGroup*> ordered;
  ordered.reserve(groups.size());
  for (const auto& [id, g] : groups) ordered.push_back(&g);
  std::sort(ordered.begin(), ordered.end(),
            [](const TraceGroup* a, const TraceGroup* b) {
              if (a->duration_us() != b->duration_us()) {
                return a->duration_us() > b->duration_us();
              }
              return a->trace_id < b->trace_id;
            });
  const std::size_t shown =
      std::min<std::size_t>(static_cast<std::size_t>(top_k), ordered.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const TraceGroup& g = *ordered[i];
    std::printf("\n#%zu trace %llu: %s ms, %zu span(s)\n", i + 1,
                static_cast<unsigned long long>(g.trace_id),
                format_ms(g.duration_us()).c_str(), g.spans.size());
    std::map<std::uint64_t, std::vector<std::size_t>> children;
    std::vector<std::size_t> roots;
    for (std::size_t s = 0; s < g.spans.size(); ++s) {
      if (g.spans[s].parent_id == 0) {
        roots.push_back(s);
      } else {
        children[g.spans[s].parent_id].push_back(s);
      }
    }
    for (const std::size_t root : roots) {
      print_span_tree(g, children, root, 0);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dropback;
  util::Flags flags(argc, argv);
  const bool strict = flags.get_bool("strict", false);
  bool trace_mode = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "trace" && !trace_mode && path.empty()) {
      trace_mode = true;
    } else if (arg.rfind("--", 0) != 0) {
      path = arg;
    }
  }
  if (path.empty()) {
    std::printf(
        "usage: metrics_tool [--strict] <stream.jsonl>\n"
        "       metrics_tool trace [--top=N] <trace.json>\n");
    return 2;
  }
  if (trace_mode) {
    return run_trace_mode(path,
                          static_cast<int>(flags.get_int("top", 3)));
  }

  std::string bytes;
  try {
    bytes = util::read_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "metrics_tool: %s\n", e.what());
    return 1;
  }

  std::map<std::string, std::int64_t> type_counts;
  std::vector<std::string> errors;
  double min_loss = std::numeric_limits<double>::infinity();
  double max_loss = -std::numeric_limits<double>::infinity();
  double total_step_ms = 0.0;
  std::int64_t churn_in_total = 0;
  std::int64_t churn_out_total = 0;
  std::size_t lineno = 0;

  std::size_t pos = 0;
  while (pos < bytes.size()) {
    std::size_t end = bytes.find('\n', pos);
    if (end == std::string::npos) end = bytes.size();
    const std::string line = bytes.substr(pos, end - pos);
    pos = end + 1;
    ++lineno;
    if (line.empty()) continue;

    std::map<std::string, JsonValue> rec;
    try {
      rec = obs::parse_flat_object(line);
    } catch (const std::exception& e) {
      errors.push_back("line " + std::to_string(lineno) + ": " + e.what());
      continue;
    }
    const auto type_it = rec.find("type");
    if (type_it == rec.end() ||
        type_it->second.type != JsonValue::Type::kString) {
      errors.push_back("line " + std::to_string(lineno) +
                       ": missing string field 'type'");
      continue;
    }
    const std::string& type = type_it->second.string;
    ++type_counts[type];

    if (type == "step") {
      for (const char* key : {"step", "epoch", "loss", "acc", "step_ms",
                              "forward_ms", "backward_ms", "optimizer_ms"}) {
        check_field(rec, key, /*nullable=*/false, lineno, errors);
      }
      for (const char* key : {"churn_in", "churn_out", "tracked", "budget",
                              "occupancy", "grad_q50", "grad_q90",
                              "grad_q99"}) {
        check_field(rec, key, /*nullable=*/true, lineno, errors);
      }
      const double loss = number_or(rec, "loss", 0.0);
      min_loss = std::min(min_loss, loss);
      max_loss = std::max(max_loss, loss);
      total_step_ms += number_or(rec, "step_ms", 0.0);
      churn_in_total += static_cast<std::int64_t>(
          number_or(rec, "churn_in", 0.0));
      churn_out_total += static_cast<std::int64_t>(
          number_or(rec, "churn_out", 0.0));
    } else if (type == "epoch") {
      for (const char* key : {"epoch", "train_loss", "train_acc", "val_acc",
                              "lr", "epoch_ms"}) {
        check_field(rec, key, /*nullable=*/false, lineno, errors);
      }
    } else if (type == "checkpoint") {
      check_field(rec, "step", false, lineno, errors);
      check_field(rec, "ms", false, lineno, errors);
      if (rec.find("path") == rec.end()) {
        errors.push_back("line " + std::to_string(lineno) +
                         ": checkpoint record missing 'path'");
      }
    } else if (type == "anomaly") {
      check_field(rec, "step", false, lineno, errors);
      if (rec.find("what") == rec.end() || rec.find("policy") == rec.end()) {
        errors.push_back("line " + std::to_string(lineno) +
                         ": anomaly record missing 'what'/'policy'");
      }
    } else if (type == "summary") {
      for (const char* key : {"steps", "epochs", "anomalies", "checkpoints",
                              "best_val_acc", "total_step_ms"}) {
        check_field(rec, key, /*nullable=*/false, lineno, errors);
      }
    } else {
      errors.push_back("line " + std::to_string(lineno) +
                       ": unknown record type '" + type + "'");
    }
  }

  for (const std::string& e : errors) {
    std::fprintf(stderr, "metrics_tool: %s\n", e.c_str());
  }

  util::Table table({"metric", "value"});
  std::int64_t total_records = 0;
  for (const auto& [type, count] : type_counts) {
    table.add_row({"records[" + type + "]", std::to_string(count)});
    total_records += count;
  }
  table.add_row({"records[total]", std::to_string(total_records)});
  const std::int64_t steps = type_counts.count("step") ? type_counts["step"]
                                                       : 0;
  if (steps > 0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", min_loss);
    table.add_row({"min loss", buf});
    std::snprintf(buf, sizeof(buf), "%.6g", max_loss);
    table.add_row({"max loss", buf});
    std::snprintf(buf, sizeof(buf), "%.3f ms", total_step_ms);
    table.add_row({"total step time", buf});
    table.add_row({"churn in (sum)", std::to_string(churn_in_total)});
    table.add_row({"churn out (sum)", std::to_string(churn_out_total)});
  }
  table.add_row({"schema errors", std::to_string(errors.size())});
  std::printf("%s", table.render().c_str());

  if (!errors.empty()) {
    std::fprintf(stderr, "metrics_tool: %zu schema error(s) in %s\n",
                 errors.size(), path.c_str());
    return 1;
  }
  if (strict && total_records == 0) {
    std::fprintf(stderr, "metrics_tool: %s contains no records\n",
                 path.c_str());
    return 1;
  }
  return 0;
}
