// metrics_tool — validator / summarizer for the JSONL telemetry streams
// written by --metrics-out (obs/event_stream.hpp schemas).
//
//   ./metrics_tool run.jsonl             # validate + summary table
//   ./metrics_tool --strict run.jsonl    # exit 1 on any schema violation
//
// Every line must parse as one flat JSON object with a known "type"
// ("step" | "epoch" | "checkpoint" | "anomaly" | "summary") carrying that
// type's required fields. Corrupt telemetry fails loudly: a malformed line
// prints its line number and the parser's byte-position diagnostic, and the
// tool exits non-zero. The summary reports record counts per type, the
// min/max step loss, total step time, and tracked-set churn totals.
#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/atomic_file.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using dropback::obs::JsonValue;

/// Requires `key` to exist with number type (or null when nullable).
/// Returns false (and prints) on violation.
bool check_field(const std::map<std::string, JsonValue>& rec,
                 const std::string& key, bool nullable, std::size_t lineno,
                 std::vector<std::string>& errors) {
  const auto it = rec.find(key);
  if (it == rec.end()) {
    errors.push_back("line " + std::to_string(lineno) + ": missing field '" +
                     key + "'");
    return false;
  }
  if (it->second.type == JsonValue::Type::kNull) {
    if (!nullable) {
      errors.push_back("line " + std::to_string(lineno) + ": field '" + key +
                       "' must not be null");
      return false;
    }
    return true;
  }
  if (it->second.type != JsonValue::Type::kNumber) {
    errors.push_back("line " + std::to_string(lineno) + ": field '" + key +
                     "' must be a number");
    return false;
  }
  return true;
}

double number_or(const std::map<std::string, JsonValue>& rec,
                 const std::string& key, double fallback) {
  const auto it = rec.find(key);
  if (it == rec.end() || it->second.type != JsonValue::Type::kNumber) {
    return fallback;
  }
  return it->second.number;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dropback;
  util::Flags flags(argc, argv);
  const bool strict = flags.get_bool("strict", false);
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) path = arg;
  }
  if (path.empty()) {
    std::printf("usage: metrics_tool [--strict] <stream.jsonl>\n");
    return 2;
  }

  std::string bytes;
  try {
    bytes = util::read_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "metrics_tool: %s\n", e.what());
    return 1;
  }

  std::map<std::string, std::int64_t> type_counts;
  std::vector<std::string> errors;
  double min_loss = std::numeric_limits<double>::infinity();
  double max_loss = -std::numeric_limits<double>::infinity();
  double total_step_ms = 0.0;
  std::int64_t churn_in_total = 0;
  std::int64_t churn_out_total = 0;
  std::size_t lineno = 0;

  std::size_t pos = 0;
  while (pos < bytes.size()) {
    std::size_t end = bytes.find('\n', pos);
    if (end == std::string::npos) end = bytes.size();
    const std::string line = bytes.substr(pos, end - pos);
    pos = end + 1;
    ++lineno;
    if (line.empty()) continue;

    std::map<std::string, JsonValue> rec;
    try {
      rec = obs::parse_flat_object(line);
    } catch (const std::exception& e) {
      errors.push_back("line " + std::to_string(lineno) + ": " + e.what());
      continue;
    }
    const auto type_it = rec.find("type");
    if (type_it == rec.end() ||
        type_it->second.type != JsonValue::Type::kString) {
      errors.push_back("line " + std::to_string(lineno) +
                       ": missing string field 'type'");
      continue;
    }
    const std::string& type = type_it->second.string;
    ++type_counts[type];

    if (type == "step") {
      for (const char* key : {"step", "epoch", "loss", "acc", "step_ms",
                              "forward_ms", "backward_ms", "optimizer_ms"}) {
        check_field(rec, key, /*nullable=*/false, lineno, errors);
      }
      for (const char* key : {"churn_in", "churn_out", "tracked", "budget",
                              "occupancy", "grad_q50", "grad_q90",
                              "grad_q99"}) {
        check_field(rec, key, /*nullable=*/true, lineno, errors);
      }
      const double loss = number_or(rec, "loss", 0.0);
      min_loss = std::min(min_loss, loss);
      max_loss = std::max(max_loss, loss);
      total_step_ms += number_or(rec, "step_ms", 0.0);
      churn_in_total += static_cast<std::int64_t>(
          number_or(rec, "churn_in", 0.0));
      churn_out_total += static_cast<std::int64_t>(
          number_or(rec, "churn_out", 0.0));
    } else if (type == "epoch") {
      for (const char* key : {"epoch", "train_loss", "train_acc", "val_acc",
                              "lr", "epoch_ms"}) {
        check_field(rec, key, /*nullable=*/false, lineno, errors);
      }
    } else if (type == "checkpoint") {
      check_field(rec, "step", false, lineno, errors);
      check_field(rec, "ms", false, lineno, errors);
      if (rec.find("path") == rec.end()) {
        errors.push_back("line " + std::to_string(lineno) +
                         ": checkpoint record missing 'path'");
      }
    } else if (type == "anomaly") {
      check_field(rec, "step", false, lineno, errors);
      if (rec.find("what") == rec.end() || rec.find("policy") == rec.end()) {
        errors.push_back("line " + std::to_string(lineno) +
                         ": anomaly record missing 'what'/'policy'");
      }
    } else if (type == "summary") {
      for (const char* key : {"steps", "epochs", "anomalies", "checkpoints",
                              "best_val_acc", "total_step_ms"}) {
        check_field(rec, key, /*nullable=*/false, lineno, errors);
      }
    } else {
      errors.push_back("line " + std::to_string(lineno) +
                       ": unknown record type '" + type + "'");
    }
  }

  for (const std::string& e : errors) {
    std::fprintf(stderr, "metrics_tool: %s\n", e.c_str());
  }

  util::Table table({"metric", "value"});
  std::int64_t total_records = 0;
  for (const auto& [type, count] : type_counts) {
    table.add_row({"records[" + type + "]", std::to_string(count)});
    total_records += count;
  }
  table.add_row({"records[total]", std::to_string(total_records)});
  const std::int64_t steps = type_counts.count("step") ? type_counts["step"]
                                                       : 0;
  if (steps > 0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", min_loss);
    table.add_row({"min loss", buf});
    std::snprintf(buf, sizeof(buf), "%.6g", max_loss);
    table.add_row({"max loss", buf});
    std::snprintf(buf, sizeof(buf), "%.3f ms", total_step_ms);
    table.add_row({"total step time", buf});
    table.add_row({"churn in (sum)", std::to_string(churn_in_total)});
    table.add_row({"churn out (sum)", std::to_string(churn_out_total)});
  }
  table.add_row({"schema errors", std::to_string(errors.size())});
  std::printf("%s", table.render().c_str());

  if (!errors.empty()) {
    std::fprintf(stderr, "metrics_tool: %zu schema error(s) in %s\n",
                 errors.size(), path.c_str());
    return 1;
  }
  if (strict && total_records == 0) {
    std::fprintf(stderr, "metrics_tool: %s contains no records\n",
                 path.c_str());
    return 1;
  }
  return 0;
}
