// Quickstart: train an MLP on the synthetic MNIST task with DropBack,
// keeping only 10k of its ~90k weights live, then print the accuracy and
// compression achieved. ~30 lines of library use.
//
//   ./quickstart [--budget=10000] [--epochs=10]
#include <cstdio>

#include "core/dropback_optimizer.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/models/lenet.hpp"
#include "train/trainer.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace dropback;
  util::Flags flags(argc, argv);

  // 1. Data: a procedural MNIST stand-in (28x28 digits, 10 classes).
  data::SyntheticMnistOptions data_opt;
  data_opt.num_samples = 1000;
  auto train_set = data::make_synthetic_mnist(data_opt);
  data_opt.num_samples = 300;
  data_opt.seed = 2;
  auto val_set = data::make_synthetic_mnist(data_opt);

  // 2. Model: the paper's MNIST-100-100 MLP (89,610 weights).
  auto model = nn::models::make_mnist_100_100(/*seed=*/7);

  // 3. Optimizer: DropBack — SGD constrained to a budget of live weights;
  //    everything else is regenerated from the init seed on each access.
  core::DropBackConfig config;
  config.budget = flags.get_int("budget", 10000);
  core::DropBackOptimizer optimizer(model->collect_parameters(), /*lr=*/0.1F,
                                    config);

  // 4. Train.
  train::TrainConfig options;
  options.epochs = flags.get_int("epochs", 10);
  options.batch_size = 32;
  train::Trainer trainer(*model, optimizer, *train_set, *val_set, options);
  const auto result = trainer.run();

  std::printf("validation accuracy : %.2f%% (best epoch %lld)\n",
              100.0 * result.best_val_acc,
              static_cast<long long>(result.best_epoch));
  std::printf("live weights        : %lld of %lld (%.1fx compression)\n",
              static_cast<long long>(optimizer.live_weights()),
              static_cast<long long>(model->num_params()),
              optimizer.compression_ratio());
  return 0;
}
