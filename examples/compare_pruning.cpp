// Compares the four pruning approaches of the paper on one model and one
// budget: DropBack, magnitude pruning, sparse variational dropout, and the
// DropBack-with-zeroing ablation (what naive pruning-at-init would do).
//
//   ./compare_pruning [--budget=5000] [--epochs=12]
#include <cstdio>

#include "baselines/magnitude_pruner.hpp"
#include "baselines/variational_dropout.hpp"
#include "core/dropback_optimizer.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/models/lenet.hpp"
#include "train/trainer.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dropback;
  util::Flags flags(argc, argv);
  const std::int64_t budget = flags.get_int("budget", 5000);
  const std::int64_t epochs = flags.get_int("epochs", 12);

  data::SyntheticMnistOptions data_opt;
  data_opt.num_samples = 1000;
  auto train_set = data::make_synthetic_mnist(data_opt);
  data_opt.num_samples = 300;
  data_opt.seed = 2;
  auto val_set = data::make_synthetic_mnist(data_opt);

  train::TrainConfig options;
  options.epochs = epochs;
  options.batch_size = 32;

  util::Table table(
      {"method", "val error", "compression", "best epoch"});

  auto add_row = [&](const std::string& name,
                     const train::TrainResult& result, double compression) {
    table.add_row({name, util::Table::pct(result.best_val_error()),
                   util::Table::times(compression),
                   std::to_string(result.best_epoch)});
  };

  const std::int64_t total = nn::models::make_mnist_100_100(7)->num_params();
  std::printf("MNIST-100-100 (%lld weights), budget %lld, %lld epochs\n\n",
              static_cast<long long>(total), static_cast<long long>(budget),
              static_cast<long long>(epochs));

  {  // DropBack (regeneration)
    auto model = nn::models::make_mnist_100_100(7);
    core::DropBackConfig config;
    config.budget = budget;
    core::DropBackOptimizer opt(model->collect_parameters(), 0.1F, config);
    train::Trainer trainer(*model, opt, *train_set, *val_set, options);
    const auto result = trainer.run();  // run before reading compression
    add_row("DropBack (regen)", result, opt.compression_ratio());
  }
  {  // DropBack ablation: zero the untracked weights instead
    auto model = nn::models::make_mnist_100_100(7);
    core::DropBackConfig config;
    config.budget = budget;
    config.regenerate_untracked = false;
    core::DropBackOptimizer opt(model->collect_parameters(), 0.1F, config);
    train::Trainer trainer(*model, opt, *train_set, *val_set, options);
    const auto result = trainer.run();
    add_row("DropBack (zeroed, ablation)", result, opt.compression_ratio());
  }
  {  // magnitude pruning at the same live-weight budget
    auto model = nn::models::make_mnist_100_100(7);
    const float fraction =
        1.0F - static_cast<float>(budget) / static_cast<float>(total);
    baselines::MagnitudePruningOptimizer opt(model->collect_parameters(),
                                             0.1F, fraction);
    train::Trainer trainer(*model, opt, *train_set, *val_set, options);
    const auto result = trainer.run();
    add_row("Magnitude pruning", result, opt.compression_ratio());
  }
  {  // sparse variational dropout
    auto vd = baselines::make_vd_mlp(784, {100, 100}, 10, 7);
    optim::SGD opt(vd.net->collect_parameters(), 0.1F);
    train::Trainer trainer(*vd.net, opt, *train_set, *val_set, options);
    auto* layers = &vd.vd_layers;
    const float kl_scale = 1.0F / 1000.0F;
    trainer.loss_transform = [layers,
                              kl_scale](const autograd::Variable& loss) {
      return autograd::add(loss, baselines::vd_total_kl(*layers, kl_scale));
    };
    const auto result = trainer.run();
    add_row("Variational dropout", result,
            baselines::vd_compression(vd.vd_layers));
  }

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expected ordering (paper): DropBack-with-regeneration best;\n"
      "zeroing collapses; magnitude pruning in between; VD compression is\n"
      "learned rather than budgeted.\n");
  return 0;
}
