// Shared CLI flag handling for the example trainers.
//
// Both train_mnist_dropback and train_cifar_dropback parse the same flag
// set into one CliConfig; the binaries differ only in model construction
// and dataset synthesis. Flags parse directly into train::TrainConfig, so
// every knob the training pipeline exposes is reachable from either CLI:
//
// Training loop:
//   --epochs=N --batch=N --lr=F --patience=N
// DropBack:
//   --budget=N | --budget-ratio=F   (ratio = total params / budget)
//   --budget-schedule=SPEC  (docs/SCHEDULES.md grammar, e.g.
//     "const:budget=20000,freeze_epoch=7", "dsd:budget=20000,dense=2,freeze=3"
//     or "stochastic:budget=20000,p=0.01"; overrides --budget/--budget-ratio)
//   --freeze-epoch=N  (deprecated: shorthand for a const schedule with
//     freeze_epoch=N; prefer --budget-schedule)
//   --save=model.dbsw
// Data pipeline:
//   --train-n=N --val-n=N --prefetch=N (background batches ahead, default 1)
//   --augment-noise=F (deterministic per-sample uniform noise, default off)
// Parallelism:
//   --threads=N (or DROPBACK_THREADS; sizes the global kernel pool)
//   --simd=scalar|sse4|avx2|avx512|neon|auto (or DROPBACK_SIMD; selects
//     the kernel dispatch target — results are bitwise identical across
//     targets, docs/SIMD.md)
// Crash safety:
//   --checkpoint=run.dbts --checkpoint-every=N --resume
//   --anomaly=off|throw|skip|rollback
// Telemetry (never changes training results — obs_equivalence_test):
//   --metrics-out=run.jsonl   JSONL event stream + metrics snapshot at exit
//   --profile[=prof.jsonl]    scoped profiler; table to stdout or JSONL dump
//   --trace-out=run.trace.json  per-step span traces as Chrome trace JSON
//     (open in Perfetto, or `metrics_tool trace run.trace.json`)
//   --log-json                util::log as flat JSON records
#pragma once

#include <cstdio>
#include <ostream>
#include <string>

#include "dropback.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "simd/dispatch.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace dropback::examples {

struct CliConfig {
  /// Per-binary defaults (each CLI keeps its paper-matched settings).
  struct Defaults {
    std::string model;
    std::int64_t train_n = 0;
    std::int64_t val_n = 0;
    std::int64_t epochs = 0;
    std::int64_t batch = 0;
    std::int64_t budget = 0;    ///< 0 = budget comes from budget_ratio
    double budget_ratio = 0.0;  ///< used when budget == 0
    double lr = 0.1;
  };

  // Model / dataset selection (interpreted by the binary).
  std::string model;
  std::int64_t train_n = 0;
  std::int64_t val_n = 0;

  // DropBack knobs.
  std::int64_t budget = 0;    ///< 0: derive from budget_ratio and model size
  double budget_ratio = 0.0;
  std::int64_t freeze_epoch = -1;      ///< deprecated --freeze-epoch shim
  std::string budget_schedule_spec;    ///< --budget-schedule; "" = constant
  float lr = 0.1F;
  std::string save_path;      ///< compressed-model export; "" = skip

  // Telemetry switches (beyond TrainConfig::metrics_out).
  bool profile = false;
  std::string profile_path;   ///< "" = pretty table to stdout
  std::string trace_path;     ///< Chrome trace JSON export; "" = tracing off

  /// Everything the training pipeline consumes, parsed in one place.
  train::TrainConfig train;

  /// Parses flags and applies the process-wide switches (thread-pool size,
  /// profiler enable, log format).
  static CliConfig parse(const util::Flags& flags, const Defaults& d) {
    util::configure_threads(flags);  // --threads N / DROPBACK_THREADS
    simd::configure_simd(flags);     // --simd TARGET / DROPBACK_SIMD
    CliConfig c;
    c.model = flags.get_string("model", d.model);
    c.train_n = flags.get_int("train-n", d.train_n);
    c.val_n = flags.get_int("val-n", d.val_n);
    c.budget = flags.get_int("budget", d.budget);
    c.budget_ratio = flags.get_double("budget-ratio", d.budget_ratio);
    c.freeze_epoch = flags.get_int("freeze-epoch", -1);
    c.budget_schedule_spec = flags.get_string("budget-schedule", "");
    DROPBACK_CHECK(c.budget_schedule_spec.empty() || c.freeze_epoch < 0,
                   << "--freeze-epoch conflicts with --budget-schedule; put "
                      "freeze_epoch=N inside the schedule spec instead");
    if (c.freeze_epoch >= 0) {
      util::log_warn() << "--freeze-epoch is deprecated; use "
                          "--budget-schedule=const:budget=N,freeze_epoch="
                       << c.freeze_epoch << " (docs/SCHEDULES.md)";
    }
    c.lr = static_cast<float>(flags.get_double("lr", d.lr));
    c.save_path = flags.get_string("save", "");
    c.train = train::TrainConfig{}
                  .with_epochs(flags.get_int("epochs", d.epochs))
                  .with_batch_size(flags.get_int("batch", d.batch))
                  .with_patience(flags.get_int("patience", -1))
                  .with_prefetch(flags.get_int("prefetch", 1))
                  .with_checkpoint(flags.get_string("checkpoint", ""),
                                   flags.get_int("checkpoint-every", 0))
                  .with_resume(flags.get_bool("resume", false))
                  .with_anomaly_policy(train::parse_anomaly_policy(
                      flags.get_string("anomaly", "off")))
                  .with_metrics_out(flags.get_string("metrics-out", ""));
    const double noise = flags.get_double("augment-noise", 0.0);
    if (noise > 0.0) {
      c.train.transform =
          data::uniform_noise_transform(static_cast<float>(noise));
    }
    const std::string prof = flags.get_string("profile", "");
    if (!prof.empty()) {
      c.profile = true;
      if (prof != "1") c.profile_path = prof;  // bare --profile parses as "1"
      obs::reset_profile();
      obs::set_profiling_enabled(true);
    }
    c.trace_path = flags.get_string("trace-out", "");
    if (!c.trace_path.empty()) {
      obs::reset_trace();
      obs::set_tracing_enabled(true);
    }
    if (flags.get_bool("log-json", false)) {
      util::set_log_format(util::LogFormat::kJson);
    }
    return c;
  }

  /// The effective weight budget for a model of `total_params` weights.
  std::int64_t effective_budget(std::int64_t total_params) const {
    if (budget > 0) return budget;
    if (budget_ratio > 0.0) {
      const auto b = static_cast<std::int64_t>(
          static_cast<double>(total_params) / budget_ratio);
      return b > 1 ? b : 1;
    }
    return total_params;
  }

  /// Fills the schedule-bearing fields of a DropBackConfig from the flags:
  /// either the parsed --budget-schedule spec (whose scope= key also sets
  /// the budget split) or a ConstantSchedule built from --budget /
  /// --budget-ratio plus the deprecated --freeze-epoch. After the call
  /// `config.budget` holds the schedule's base budget for reporting.
  void configure_dropback(std::int64_t total_params,
                          core::DropBackConfig& config) const {
    if (!budget_schedule_spec.empty()) {
      const optim::ParsedSchedule parsed =
          optim::parse_budget_schedule(budget_schedule_spec);
      config.schedule = parsed.schedule;
      config.scope = parsed.split == optim::BudgetSplit::kPerLayer
                         ? core::DropBackConfig::BudgetScope::kPerLayer
                         : core::DropBackConfig::BudgetScope::kGlobal;
    } else {
      const std::int64_t k = effective_budget(total_params);
      config.schedule = freeze_epoch >= 0
                            ? optim::constant_budget_epochs(k, freeze_epoch)
                            : optim::constant_budget(k);
    }
    config.budget = config.schedule->base_budget();
  }

  /// Call once after training: reports the profile and metrics snapshot.
  void report_telemetry() const {
    if (profile) {
      const obs::ProfileReport report = obs::collect_profile();
      if (profile_path.empty()) {
        std::printf("\nprofile (scoped wall time):\n%s",
                    report.pretty().c_str());
      } else {
        util::atomic_write_file(profile_path, [&](std::ostream& out) {
          out << report.to_jsonl();
        });
        std::printf("\nwrote profile to %s (%zu scopes)\n",
                    profile_path.c_str(), report.entries.size());
      }
    }
    if (!trace_path.empty()) {
      obs::set_tracing_enabled(false);  // quiescence before collect()
      const obs::TraceSnapshot snapshot = obs::TraceCollector::collect();
      util::atomic_write_file(trace_path, [&](std::ostream& out) {
        out << obs::TraceCollector::export_json(snapshot);
      });
      std::printf("\nwrote %zu span(s) to %s (dropped %llu)\n",
                  snapshot.spans.size(), trace_path.c_str(),
                  static_cast<unsigned long long>(snapshot.dropped));
    }
    if (!train.metrics_out.empty()) {
      std::printf("\nmetrics snapshot: %s\n",
                  obs::MetricsRegistry::global().snapshot_json().c_str());
      std::printf("wrote telemetry stream to %s\n",
                  train.metrics_out.c_str());
    }
  }
};

}  // namespace dropback::examples
