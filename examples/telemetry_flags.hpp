// Shared telemetry CLI handling for the example trainers (ISSUE 3):
//
//   --metrics-out=run.jsonl   JSONL event stream (one flat record per step /
//                             epoch / checkpoint / anomaly + summary) written
//                             crash-safely; also enables the global metrics
//                             registry, whose snapshot is printed at exit.
//   --profile                 enable the scoped profiler; pretty table on
//                             stdout at exit.
//   --profile=prof.jsonl      same, but dump the kernel-timing JSONL (the
//                             schema shared with bench_micro --speedup)
//                             instead of the table.
//   --log-json                switch util::log to one-flat-JSON-record-per-
//                             line output.
//
// Telemetry never changes training results: the run is bitwise identical
// with or without these flags (tests/obs_equivalence_test.cpp).
#pragma once

#include <cstdio>
#include <ostream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/atomic_file.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"

namespace dropback::examples {

struct TelemetryFlags {
  std::string metrics_out;   ///< JSONL stream path; "" = telemetry off
  bool profile = false;
  std::string profile_path;  ///< "" = pretty table to stdout

  /// Parses the flags and applies the process-wide switches (profiler
  /// enable, log format).
  static TelemetryFlags parse(const util::Flags& flags) {
    TelemetryFlags t;
    t.metrics_out = flags.get_string("metrics-out", "");
    const std::string prof = flags.get_string("profile", "");
    if (!prof.empty()) {
      t.profile = true;
      if (prof != "1") t.profile_path = prof;  // bare --profile parses as "1"
      obs::reset_profile();
      obs::set_profiling_enabled(true);
    }
    if (flags.get_bool("log-json", false)) {
      util::set_log_format(util::LogFormat::kJson);
    }
    return t;
  }

  /// Call once after training: reports the profile and metrics snapshot.
  void report() const {
    if (profile) {
      const obs::ProfileReport report = obs::collect_profile();
      if (profile_path.empty()) {
        std::printf("\nprofile (scoped wall time):\n%s",
                    report.pretty().c_str());
      } else {
        util::atomic_write_file(profile_path, [&](std::ostream& out) {
          out << report.to_jsonl();
        });
        std::printf("\nwrote profile to %s (%zu scopes)\n",
                    profile_path.c_str(), report.entries.size());
      }
    }
    if (!metrics_out.empty()) {
      std::printf("\nmetrics snapshot: %s\n",
                  obs::MetricsRegistry::global().snapshot_json().c_str());
      std::printf("wrote telemetry stream to %s\n", metrics_out.c_str());
    }
  }
};

}  // namespace dropback::examples
