// Full training CLI for the MNIST experiments: choose the model, weight
// budget, freeze epoch, and schedule; prints per-epoch progress, the
// compression summary, the modeled energy of the run, and (optionally)
// saves the compressed model.
//
//   ./train_mnist_dropback --model=lenet --budget=50000 --epochs=20
//       --freeze-epoch=7 --lr=0.1 --save=model.dbsw    (one command line)
//   ./train_mnist_dropback --model=mlp --budget=1500      # extreme budget
//
// Crash-safe training: --checkpoint=run.dbts snapshots the full training
// state after every epoch (plus every --checkpoint-every=N steps), and
// --resume continues a killed run bitwise-identically. --anomaly selects the
// non-finite loss/gradient policy (off|throw|skip|rollback).
//
// Telemetry (none of it changes training results): --metrics-out=run.jsonl
// streams one JSON record per step/epoch/checkpoint/anomaly, --profile
// (or --profile=prof.jsonl) reports scoped kernel wall times, --log-json
// switches diagnostics to JSON lines. See examples/telemetry_flags.hpp and
// docs/OBSERVABILITY.md.
#include <cstdio>
#include <string>

#include "core/dropback_optimizer.hpp"
#include "core/sparse_weight_store.hpp"
#include "data/synthetic_mnist.hpp"
#include "energy/energy_model.hpp"
#include "nn/models/lenet.hpp"
#include "optim/lr_schedule.hpp"
#include "telemetry_flags.hpp"
#include "train/trainer.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dropback;
  util::Flags flags(argc, argv);
  util::configure_threads(flags);  // --threads N / DROPBACK_THREADS
  const auto telemetry = examples::TelemetryFlags::parse(flags);

  const std::string model_name = flags.get_string("model", "mlp");
  const std::int64_t train_n = flags.get_int("train-n", 1500);
  const std::int64_t val_n = flags.get_int("val-n", 500);
  const std::int64_t epochs = flags.get_int("epochs", 15);
  const std::int64_t batch = flags.get_int("batch", 32);
  const std::int64_t budget = flags.get_int("budget", 20000);
  const std::int64_t freeze_epoch = flags.get_int("freeze-epoch", -1);
  const float lr = static_cast<float>(flags.get_double("lr", 0.1));

  data::SyntheticMnistOptions data_opt;
  data_opt.num_samples = train_n;
  auto train_set = data::make_synthetic_mnist(data_opt);
  data_opt.num_samples = val_n;
  data_opt.seed = 2;
  auto val_set = data::make_synthetic_mnist(data_opt);

  auto model = model_name == "lenet" ? nn::models::make_lenet_300_100(7)
                                     : nn::models::make_mnist_100_100(7);
  std::printf("model: %s (%lld weights), budget %lld (%.2fx target)\n",
              model_name == "lenet" ? "LeNet-300-100" : "MNIST-100-100",
              static_cast<long long>(model->num_params()),
              static_cast<long long>(budget),
              static_cast<double>(model->num_params()) /
                  static_cast<double>(budget));

  core::DropBackConfig config;
  config.budget = budget;
  const std::int64_t steps_per_epoch = (train_n + batch - 1) / batch;
  config.freeze_after_steps =
      freeze_epoch >= 0 ? freeze_epoch * steps_per_epoch : -1;
  core::DropBackOptimizer optimizer(model->collect_parameters(), lr, config);
  energy::TrafficCounter traffic;
  optimizer.set_traffic_counter(&traffic);

  // The paper's MNIST schedule: lr halved four times over the run.
  optim::StepDecay schedule(lr, 0.5F, std::max<std::int64_t>(1, epochs / 5),
                            4);

  train::TrainOptions options;
  options.epochs = epochs;
  options.batch_size = batch;
  options.schedule = &schedule;
  options.patience = flags.get_int("patience", -1);
  options.checkpoint_path = flags.get_string("checkpoint", "");
  options.checkpoint_every = flags.get_int("checkpoint-every", 0);
  options.resume = flags.get_bool("resume", false);
  options.anomaly_policy =
      train::parse_anomaly_policy(flags.get_string("anomaly", "off"));
  options.metrics_out = telemetry.metrics_out;
  train::Trainer trainer(*model, optimizer, *train_set, *val_set, options);
  trainer.on_epoch_end = [&](const train::EpochStats& stats) {
    std::printf(
        "epoch %3lld  loss %.4f  train acc %.4f  val acc %.4f  lr %.4f%s\n",
        static_cast<long long>(stats.epoch), stats.train_loss,
        stats.train_acc, stats.val_acc, static_cast<double>(stats.lr),
        optimizer.frozen() ? "  [frozen]" : "");
  };
  const auto result = trainer.run();

  std::printf("\nbest validation error: %s at epoch %lld\n",
              util::Table::pct(result.best_val_error()).c_str(),
              static_cast<long long>(result.best_epoch));
  std::printf("compression: %.2fx (%lld live weights)\n",
              optimizer.compression_ratio(),
              static_cast<long long>(optimizer.live_weights()));
  std::printf("\nmodeled training energy:\n%s\n", traffic.report().c_str());

  const std::string save_path = flags.get_string("save", "");
  if (!save_path.empty()) {
    auto store = core::SparseWeightStore::from_optimizer(optimizer);
    store.save_file(save_path);
    std::printf("\nsaved compressed model to %s (%lld bytes vs %lld dense)\n",
                save_path.c_str(), static_cast<long long>(store.bytes()),
                static_cast<long long>(store.dense_bytes()));
  }
  telemetry.report();
  return 0;
}
