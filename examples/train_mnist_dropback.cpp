// Full training CLI for the MNIST experiments: choose the model, weight
// budget (fixed or schedule-driven), and lr schedule; prints per-epoch
// progress, the compression summary, the modeled energy of the run, and
// (optionally) saves the compressed model.
//
//   ./train_mnist_dropback --model=lenet --budget=50000 --epochs=20
//       --budget-schedule=const:budget=50000,freeze_epoch=7 --lr=0.1
//   ./train_mnist_dropback --model=mlp --budget=1500      # extreme budget
//   ./train_mnist_dropback --budget-schedule=dsd:budget=20000,dense=2,freeze=3
//
// All flags — training loop, data pipeline (--prefetch/--augment-noise),
// parallelism (--threads), crash safety (--checkpoint/--resume/--anomaly),
// telemetry (--metrics-out/--profile/--log-json) — are shared with
// train_cifar_dropback via examples/cli_config.hpp; the two binaries differ
// only in model construction and dataset synthesis.
#include <cstdio>
#include <string>

#include "cli_config.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/models/lenet.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dropback;
  util::Flags flags(argc, argv);
  examples::CliConfig::Defaults defaults;
  defaults.model = "mlp";
  defaults.train_n = 1500;
  defaults.val_n = 500;
  defaults.epochs = 15;
  defaults.batch = 32;
  defaults.budget = 20000;
  defaults.lr = 0.1;
  auto cli = examples::CliConfig::parse(flags, defaults);

  data::SyntheticMnistOptions data_opt;
  data_opt.num_samples = cli.train_n;
  auto train_set = data::make_synthetic_mnist(data_opt);
  data_opt.num_samples = cli.val_n;
  data_opt.seed = 2;
  auto val_set = data::make_synthetic_mnist(data_opt);

  auto model = cli.model == "lenet" ? nn::models::make_lenet_300_100(7)
                                    : nn::models::make_mnist_100_100(7);
  core::DropBackConfig config;
  cli.configure_dropback(model->num_params(), config);
  std::printf("model: %s (%lld weights), schedule %s (%.2fx target)\n",
              cli.model == "lenet" ? "LeNet-300-100" : "MNIST-100-100",
              static_cast<long long>(model->num_params()),
              config.schedule->spec().c_str(),
              static_cast<double>(model->num_params()) /
                  static_cast<double>(config.budget));
  core::DropBackOptimizer optimizer(model->collect_parameters(), cli.lr,
                                    config);
  cli.train.budget_schedule = config.schedule;
  energy::TrafficCounter traffic;
  optimizer.set_traffic_counter(&traffic);

  // The paper's MNIST schedule: lr halved four times over the run.
  optim::StepDecay schedule(
      cli.lr, 0.5F, std::max<std::int64_t>(1, cli.train.epochs / 5), 4);
  cli.train.schedule = &schedule;

  train::Trainer trainer(*model, optimizer, *train_set, *val_set, cli.train);
  trainer.on_epoch_end = [&](const train::EpochStats& stats) {
    std::printf(
        "epoch %3lld  loss %.4f  train acc %.4f  val acc %.4f  lr %.4f%s\n",
        static_cast<long long>(stats.epoch), stats.train_loss,
        stats.train_acc, stats.val_acc, static_cast<double>(stats.lr),
        optimizer.frozen() ? "  [frozen]" : "");
  };
  const auto result = trainer.run();

  std::printf("\nbest validation error: %s at epoch %lld\n",
              util::Table::pct(result.best_val_error()).c_str(),
              static_cast<long long>(result.best_epoch));
  std::printf("compression: %.2fx (%lld live weights)\n",
              optimizer.compression_ratio(),
              static_cast<long long>(optimizer.live_weights()));
  std::printf("\nmodeled training energy:\n%s\n", traffic.report().c_str());

  if (!cli.save_path.empty()) {
    auto store = core::SparseWeightStore::from_optimizer(optimizer);
    store.save_file(cli.save_path);
    std::printf("\nsaved compressed model to %s (%lld bytes vs %lld dense)\n",
                cli.save_path.c_str(), static_cast<long long>(store.bytes()),
                static_cast<long long>(store.dense_bytes()));
  }
  cli.report_telemetry();
  return 0;
}
