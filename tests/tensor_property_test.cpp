// Property-based sweeps over the tensor kernels: algebraic identities that
// must hold for arbitrary shapes and data, complementing the example-based
// tests in tensor_test / matmul_test / conv_test.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "rng/xorshift.hpp"
#include "tensor/conv.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace dropback::tensor {
namespace {

Tensor rand_tensor(Shape shape, std::uint64_t seed) {
  rng::Xorshift128 rng(seed);
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(-1, 1);
  return t;
}

void expect_close(const Tensor& a, const Tensor& b, float tol = 1e-4F) {
  ASSERT_EQ(a.numel(), b.numel());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << "flat " << i;
  }
}

/// (m, k, n) triples for matmul laws.
class MatmulLaws
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, std::int64_t>> {};

TEST_P(MatmulLaws, DistributesOverAddition) {
  const auto [m, k, n] = GetParam();
  Tensor a = rand_tensor({m, k}, 1);
  Tensor b = rand_tensor({k, n}, 2);
  Tensor c = rand_tensor({k, n}, 3);
  expect_close(matmul(a, add(b, c)), add(matmul(a, b), matmul(a, c)), 2e-4F);
}

TEST_P(MatmulLaws, ScalarCommutes) {
  const auto [m, k, n] = GetParam();
  Tensor a = rand_tensor({m, k}, 4);
  Tensor b = rand_tensor({k, n}, 5);
  expect_close(matmul(mul_scalar(a, 2.5F), b),
               mul_scalar(matmul(a, b), 2.5F), 2e-4F);
}

TEST_P(MatmulLaws, TransposeReversesProduct) {
  const auto [m, k, n] = GetParam();
  Tensor a = rand_tensor({m, k}, 6);
  Tensor b = rand_tensor({k, n}, 7);
  // (AB)ᵀ = Bᵀ Aᵀ
  expect_close(transpose2d(matmul(a, b)),
               matmul(transpose2d(b), transpose2d(a)), 2e-4F);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulLaws,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 7, 3),
                      std::make_tuple(9, 4, 9), std::make_tuple(16, 16, 16),
                      std::make_tuple(5, 31, 2)));

/// Associativity needs three compatible matrices.
TEST(MatmulLaws, Associates) {
  Tensor a = rand_tensor({4, 6}, 8);
  Tensor b = rand_tensor({6, 5}, 9);
  Tensor c = rand_tensor({5, 7}, 10);
  expect_close(matmul(matmul(a, b), c), matmul(a, matmul(b, c)), 5e-4F);
}

/// Convolution is linear in both inputs and weights.
class ConvLinearity
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, std::int64_t>> {};

TEST_P(ConvLinearity, LinearInInput) {
  const auto [kernel, stride, padding] = GetParam();
  Conv2dSpec spec{kernel, kernel, stride, padding};
  if (spec.out_h(6) <= 0) GTEST_SKIP();
  Tensor x1 = rand_tensor({1, 2, 6, 6}, 11);
  Tensor x2 = rand_tensor({1, 2, 6, 6}, 12);
  Tensor w = rand_tensor({3, 2, kernel, kernel}, 13);
  expect_close(conv2d(add(x1, x2), w, Tensor(), spec),
               add(conv2d(x1, w, Tensor(), spec),
                   conv2d(x2, w, Tensor(), spec)),
               2e-4F);
}

TEST_P(ConvLinearity, LinearInWeights) {
  const auto [kernel, stride, padding] = GetParam();
  Conv2dSpec spec{kernel, kernel, stride, padding};
  if (spec.out_h(6) <= 0) GTEST_SKIP();
  Tensor x = rand_tensor({1, 2, 6, 6}, 14);
  Tensor w1 = rand_tensor({3, 2, kernel, kernel}, 15);
  Tensor w2 = rand_tensor({3, 2, kernel, kernel}, 16);
  expect_close(conv2d(x, add(w1, w2), Tensor(), spec),
               add(conv2d(x, w1, Tensor(), spec),
                   conv2d(x, w2, Tensor(), spec)),
               2e-4F);
}

TEST_P(ConvLinearity, Im2colAdjointHoldsForSpec) {
  const auto [kernel, stride, padding] = GetParam();
  Conv2dSpec spec{kernel, kernel, stride, padding};
  if (spec.out_h(6) <= 0) GTEST_SKIP();
  const Shape xshape{2, 2, 6, 6};
  Tensor x = rand_tensor(xshape, 17);
  Tensor cols = im2col(x, spec);
  Tensor y = rand_tensor(cols.shape(), 18);
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < cols.numel(); ++i) lhs += cols[i] * y[i];
  Tensor back = col2im(y, xshape, spec);
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += x[i] * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Specs, ConvLinearity,
    ::testing::Values(std::make_tuple(1, 1, 0), std::make_tuple(3, 1, 1),
                      std::make_tuple(3, 2, 1), std::make_tuple(5, 1, 2),
                      std::make_tuple(2, 2, 0)));

/// Softmax invariances.
class SoftmaxProperties : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SoftmaxProperties, ShiftInvariant) {
  const std::int64_t n = GetParam();
  Tensor x = rand_tensor({3, n}, 19);
  Tensor shifted = add_scalar(x, 7.5F);
  expect_close(row_softmax(x), row_softmax(shifted), 1e-5F);
}

TEST_P(SoftmaxProperties, LogsumexpShiftsByConstant) {
  const std::int64_t n = GetParam();
  Tensor x = rand_tensor({3, n}, 20);
  Tensor lse = row_logsumexp(x);
  Tensor lse_shifted = row_logsumexp(add_scalar(x, 2.0F));
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(lse_shifted[i], lse[i] + 2.0F, 1e-4F);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SoftmaxProperties,
                         ::testing::Values(1, 2, 10, 64));

/// Pooling consistency: average pooling with full-size kernel equals global
/// average pooling.
TEST(PoolingProperties, FullKernelAvgEqualsGlobal) {
  Tensor x = rand_tensor({2, 3, 5, 5}, 21);
  Tensor full = avgpool2d(x, 5, 5);
  Tensor global = global_avgpool(x);
  for (std::int64_t i = 0; i < global.numel(); ++i) {
    EXPECT_NEAR(full[i], global[i], 1e-5F);
  }
}

TEST(PoolingProperties, MaxPoolDominatesAvgPool) {
  Tensor x = rand_tensor({1, 2, 6, 6}, 22);
  Tensor mx = maxpool2d(x, 2, 2, nullptr);
  Tensor av = avgpool2d(x, 2, 2);
  for (std::int64_t i = 0; i < mx.numel(); ++i) {
    EXPECT_GE(mx[i], av[i]);
  }
}

TEST(PoolingProperties, PoolBackwardConservesGradientMass) {
  // Sum of gradients is conserved through avg pooling and max pooling.
  Tensor x = rand_tensor({1, 1, 4, 4}, 23);
  std::vector<std::int64_t> argmax;
  Tensor y = maxpool2d(x, 2, 2, &argmax);
  Tensor gy = rand_tensor(y.shape(), 24);
  Tensor gmax = maxpool2d_backward(gy, x.shape(), argmax);
  EXPECT_NEAR(gmax.sum(), gy.sum(), 1e-4F);
  Tensor gavg = avgpool2d_backward(gy, x.shape(), 2, 2);
  EXPECT_NEAR(gavg.sum(), gy.sum(), 1e-4F);
}

/// Channel-helper consistency with reshape-based reference.
TEST(ChannelProperties, MeanOfAffineIsAffineOfMean) {
  Tensor x = rand_tensor({2, 3, 4, 4}, 25);
  Tensor mean = channel_mean(x);
  Tensor zero_mean = channel_affine(x, mean, Tensor::ones({3}),
                                    Tensor::zeros({3}));
  Tensor new_mean = channel_mean(zero_mean);
  for (std::int64_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(new_mean[c], 0.0F, 1e-5F);
  }
}

TEST(ChannelProperties, DotWithSelfIsSumOfSquares) {
  Tensor x = rand_tensor({2, 2, 3, 3}, 26);
  Tensor d = channel_dot(x, x);
  Tensor sq = mul(x, x);
  Tensor s = channel_sum(sq);
  for (std::int64_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(d[c], s[c], 1e-4F);
  }
}

}  // namespace
}  // namespace dropback::tensor
