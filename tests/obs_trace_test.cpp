// Span tracing tests (ISSUE 8): RAII nesting and parent links, cross-thread
// context propagation (explicit handoff + ScopedTraceContext adoption), ring
// wraparound with dropped-span accounting, byte-deterministic Chrome-trace
// export under an injectable ManualClock, and the export -> parse round trip
// that `metrics_tool trace` depends on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "util/steady_clock.hpp"

namespace {

using namespace dropback;

// Every test runs against the same process-wide rings, so each one starts
// from a clean slate and restores the production defaults on the way out.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_trace_clock(&clock_);
    obs::set_trace_ring_capacity(4096);
    obs::reset_trace();
    obs::set_tracing_enabled(true);
  }

  void TearDown() override {
    obs::set_tracing_enabled(false);
    obs::set_trace_clock(nullptr);
    obs::set_trace_ring_capacity(4096);
    obs::reset_trace();
  }

  const obs::SpanRecord* find(const obs::TraceSnapshot& snap,
                              const std::string& name) {
    for (const auto& span : snap.spans) {
      if (span.name == name) return &span;
    }
    return nullptr;
  }

  util::ManualClock clock_;
};

TEST_F(TraceTest, NestedSpansLinkParentsAndUseInjectedClock) {
  const obs::TraceContext root = obs::begin_trace();
  ASSERT_NE(root.trace_id, 0U);
  {
    obs::ScopedTraceContext adopt(root);
    clock_.advance_us(100);
    obs::TraceSpan outer("step");
    clock_.advance_us(40);
    {
      obs::TraceSpan inner("forward");
      clock_.advance_us(10);
    }
    clock_.advance_us(5);
  }
  const obs::TraceSnapshot snap = obs::TraceCollector::collect();
  ASSERT_EQ(snap.spans.size(), 2U);
  EXPECT_EQ(snap.dropped, 0U);

  const obs::SpanRecord* outer = find(snap, "step");
  const obs::SpanRecord* inner = find(snap, "forward");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->trace_id, root.trace_id);
  EXPECT_EQ(inner->trace_id, root.trace_id);
  EXPECT_EQ(outer->parent_id, 0U);  // root span of its trace
  EXPECT_EQ(inner->parent_id, outer->span_id);
  // Timestamps are exactly the manual clock's: injection is total.
  EXPECT_EQ(outer->start_us, 100);
  EXPECT_EQ(outer->dur_us, 55);
  EXPECT_EQ(inner->start_us, 140);
  EXPECT_EQ(inner->dur_us, 10);
}

TEST_F(TraceTest, SiblingSpansShareAParentSequentially) {
  const obs::TraceContext root = obs::begin_trace();
  {
    obs::ScopedTraceContext adopt(root);
    obs::TraceSpan step("step");
    { obs::TraceSpan a("forward"); }
    { obs::TraceSpan b("backward"); }
  }
  const obs::TraceSnapshot snap = obs::TraceCollector::collect();
  const obs::SpanRecord* step = find(snap, "step");
  const obs::SpanRecord* a = find(snap, "forward");
  const obs::SpanRecord* b = find(snap, "backward");
  ASSERT_NE(step, nullptr);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // After `a` closes, the context's open span must be `step` again, not `a`.
  EXPECT_EQ(a->parent_id, step->span_id);
  EXPECT_EQ(b->parent_id, step->span_id);
  EXPECT_NE(a->span_id, b->span_id);
}

TEST_F(TraceTest, ContextPropagatesAcrossThreadsByExplicitHandoff) {
  const obs::TraceContext root = obs::begin_trace();
  obs::TraceContext handoff;
  {
    obs::ScopedTraceContext adopt(root);
    obs::TraceSpan submit("submit");
    clock_.advance_us(3);
    handoff = obs::current_trace_context();  // what a Request would carry
  }
  std::thread worker([&] {
    obs::ScopedTraceContext adopt(handoff);
    obs::TraceSpan exec("exec");
    clock_.advance_us(7);
  });
  worker.join();

  const obs::TraceSnapshot snap = obs::TraceCollector::collect();
  const obs::SpanRecord* submit = find(snap, "submit");
  const obs::SpanRecord* exec = find(snap, "exec");
  ASSERT_NE(submit, nullptr);
  ASSERT_NE(exec, nullptr);
  // One trace, two threads: the id rode the explicit handoff.
  EXPECT_EQ(exec->trace_id, root.trace_id);
  EXPECT_EQ(exec->parent_id, submit->span_id);
  EXPECT_NE(exec->tid, submit->tid);
  // The worker's ring outlives the worker: collect() after join sees it.
  EXPECT_EQ(exec->dur_us, 7);
}

TEST_F(TraceTest, AdoptionRestoresThePreviousContextOnExit) {
  const obs::TraceContext a = obs::begin_trace();
  const obs::TraceContext b = obs::begin_trace();
  obs::ScopedTraceContext outer(a);
  {
    obs::ScopedTraceContext inner(b);
    EXPECT_EQ(obs::current_trace_context().trace_id, b.trace_id);
  }
  EXPECT_EQ(obs::current_trace_context().trace_id, a.trace_id);
}

TEST_F(TraceTest, RingWraparoundKeepsNewestAndCountsDropped) {
  obs::set_trace_ring_capacity(4);
  obs::reset_trace();
  const obs::TraceContext root = obs::begin_trace();
  for (int i = 0; i < 10; ++i) {
    obs::record_span("segment", root, i, i + 1);
  }
  const obs::TraceSnapshot snap = obs::TraceCollector::collect();
  ASSERT_EQ(snap.spans.size(), 4U);
  EXPECT_EQ(snap.dropped, 6U);
  // The survivors are the newest four, oldest surviving first.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(snap.spans[i].start_us, 6 + i);
  }
  // A later collect() reports the same totals (dropped is derived from the
  // cursor, not consumed).
  EXPECT_EQ(obs::TraceCollector::collect().dropped, 6U);
}

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  obs::set_tracing_enabled(false);
  EXPECT_EQ(obs::begin_trace().trace_id, 0U);
  {
    obs::TraceSpan span("invisible");
    DROPBACK_TRACE_SPAN("also_invisible");
  }
  obs::record_span("ctxless", obs::TraceContext{}, 0, 5);
  obs::record_span("ctxful", obs::TraceContext{42, 0}, 0, 5);
  const obs::TraceSnapshot snap = obs::TraceCollector::collect();
  EXPECT_TRUE(snap.spans.empty());
  EXPECT_EQ(snap.dropped, 0U);
}

TEST_F(TraceTest, RecordSpanWithoutATraceIsANoOp) {
  obs::record_span("orphan", obs::TraceContext{}, 0, 5);
  EXPECT_TRUE(obs::TraceCollector::collect().spans.empty());
}

TEST_F(TraceTest, ResetClearsSpansAndDropCounts) {
  obs::set_trace_ring_capacity(2);
  obs::reset_trace();
  const obs::TraceContext root = obs::begin_trace();
  for (int i = 0; i < 5; ++i) obs::record_span("s", root, i, i + 1);
  EXPECT_EQ(obs::TraceCollector::collect().dropped, 3U);
  obs::reset_trace();
  const obs::TraceSnapshot snap = obs::TraceCollector::collect();
  EXPECT_TRUE(snap.spans.empty());
  EXPECT_EQ(snap.dropped, 0U);
}

// ---------------------------------------------------------------------------
// Exporter: byte-deterministic JSON, Perfetto-compatible shape, round trip
// ---------------------------------------------------------------------------

obs::SpanRecord make_span(std::uint64_t trace, std::uint64_t span,
                          std::uint64_t parent, const char* name, int tid,
                          std::int64_t start, std::int64_t dur) {
  obs::SpanRecord r;
  r.trace_id = trace;
  r.span_id = span;
  r.parent_id = parent;
  r.name = name;
  r.tid = tid;
  r.start_us = start;
  r.dur_us = dur;
  return r;
}

TEST(TraceExportTest, GoldenChromeTraceBytes) {
  obs::TraceSnapshot snap;
  // Deliberately out of order: the exporter sorts (ts, -dur, span_id) so
  // parents precede children in the file.
  snap.spans.push_back(make_span(7, 2, 1, "exec", 1, 10, 5));
  snap.spans.push_back(make_span(7, 1, 0, "request", 0, 10, 30));
  const std::string json = obs::TraceCollector::export_json(snap);
  EXPECT_EQ(
      json,
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"name\":\"request\",\"cat\":\"dropback\",\"ph\":\"X\",\"ts\":10,"
      "\"dur\":30,\"pid\":1,\"tid\":0,"
      "\"args\":{\"trace\":7,\"span\":1,\"parent\":0}},"
      "{\"name\":\"exec\",\"cat\":\"dropback\",\"ph\":\"X\",\"ts\":10,"
      "\"dur\":5,\"pid\":1,\"tid\":1,"
      "\"args\":{\"trace\":7,\"span\":2,\"parent\":1}}]}");
}

TEST(TraceExportTest, DroppedSpansSurfaceAsAnInstantEvent) {
  obs::TraceSnapshot snap;
  snap.spans.push_back(make_span(1, 1, 0, "s", 0, 0, 1));
  snap.dropped = 12;
  const std::string json = obs::TraceCollector::export_json(snap);
  EXPECT_NE(json.find("\"name\":\"dropped_spans\",\"cat\":\"dropback\","
                      "\"ph\":\"I\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"args\":{\"count\":12}"), std::string::npos) << json;
  // The reader skips non-"X" events rather than tripping on them.
  EXPECT_EQ(obs::parse_chrome_trace(json).size(), 1U);
}

TEST(TraceExportTest, ParseRoundTripsEveryField) {
  obs::TraceSnapshot snap;
  snap.spans.push_back(make_span(3, 8, 0, "queue_wait", 2, 100, 40));
  snap.spans.push_back(make_span(3, 9, 8, "exec", 4, 140, 25));
  const std::vector<obs::SpanRecord> parsed =
      obs::parse_chrome_trace(obs::TraceCollector::export_json(snap));
  ASSERT_EQ(parsed.size(), 2U);
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].trace_id, snap.spans[i].trace_id);
    EXPECT_EQ(parsed[i].span_id, snap.spans[i].span_id);
    EXPECT_EQ(parsed[i].parent_id, snap.spans[i].parent_id);
    EXPECT_EQ(parsed[i].name, snap.spans[i].name);
    EXPECT_EQ(parsed[i].tid, snap.spans[i].tid);
    EXPECT_EQ(parsed[i].start_us, snap.spans[i].start_us);
    EXPECT_EQ(parsed[i].dur_us, snap.spans[i].dur_us);
  }
}

TEST(TraceExportTest, EmptySnapshotIsStillValidJson) {
  const std::string json =
      obs::TraceCollector::export_json(obs::TraceSnapshot{});
  EXPECT_EQ(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
  EXPECT_TRUE(obs::parse_chrome_trace(json).empty());
}

TEST(TraceExportTest, ParserRejectsMalformedInput) {
  EXPECT_THROW(obs::parse_chrome_trace("{}"), std::runtime_error);
  EXPECT_THROW(obs::parse_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}"),
               std::runtime_error);  // X event without a name
  EXPECT_THROW(obs::parse_chrome_trace("{\"traceEvents\":[{"),
               std::runtime_error);
  // Whitespace and trailing metadata events are tolerated.
  const std::string spaced =
      "{ \"traceEvents\": [\n"
      "  { \"name\": \"s\", \"ph\": \"X\", \"ts\": 1, \"dur\": 2,"
      " \"tid\": 0, \"args\": { \"trace\": 5, \"span\": 1, \"parent\": 0 } "
      "},\n"
      "  { \"name\": \"process_name\", \"ph\": \"M\" }\n"
      "] }";
  const auto parsed = obs::parse_chrome_trace(spaced);
  ASSERT_EQ(parsed.size(), 1U);
  EXPECT_EQ(parsed[0].trace_id, 5U);
}

}  // namespace
