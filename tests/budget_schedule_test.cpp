// BudgetSchedule suite: the schedule API itself (semantics of the three
// implementations and the spec mini-language), plus the optimizer-level
// contracts the redesign promises:
//   * the default ConstantSchedule path is bitwise identical — final weights
//     AND checkpoint bytes — to the pre-schedule fixed-k configuration, at
//     1 and 2 threads;
//   * DenseSparseDense grows and shrinks the tracked set with regen-
//     consistent growth (untracked weights sit at their regenerated init)
//     and exact churn/readmit counters;
//   * StochasticDropBack re-admission is bitwise identical across thread
//     counts;
//   * DBOS snapshots carry the schedule spec and refuse to resume under a
//     different schedule.
#include "optim/budget_schedule.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "autograd/ops.hpp"
#include "core/dropback_optimizer.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/linear.hpp"
#include "nn/models/lenet.hpp"
#include "nn/sequential.hpp"
#include "rng/xorshift.hpp"
#include "train/trainer.hpp"
#include "util/atomic_file.hpp"
#include "util/io_error.hpp"
#include "util/thread_pool.hpp"

namespace dropback {
namespace {

namespace T = dropback::tensor;
namespace ag = dropback::autograd;
using optim::BudgetDecision;
using optim::BudgetSplit;
using optim::kDenseBudget;
using optim::SchedulePoint;

SchedulePoint at_step(std::int64_t step, std::int64_t steps_per_epoch) {
  SchedulePoint t;
  t.step = step;
  t.steps_per_epoch = steps_per_epoch;
  t.epoch = steps_per_epoch > 0 ? step / steps_per_epoch : 0;
  return t;
}

// ---------------------------------------------------------------------------
// Schedule semantics
// ---------------------------------------------------------------------------

TEST(ConstantScheduleTest, FixedBudgetNeverFreezesByDefault) {
  optim::ConstantSchedule s(5000);
  for (std::int64_t step : {0, 1, 7, 1000000}) {
    const BudgetDecision d = s.at(at_step(step, 10));
    EXPECT_EQ(d.budget, 5000);
    EXPECT_FALSE(d.frozen);
    EXPECT_EQ(d.readmit_prob, 0.0F);
  }
  EXPECT_TRUE(s.is_constant());
  EXPECT_FALSE(s.epoch_phrased());
}

TEST(ConstantScheduleTest, FreezeStepEdges) {
  // freeze_after_steps=N freezes at step N — except N=0, which still runs
  // the first selection window (historical fixed-k behavior).
  optim::ConstantSchedule s0(100, /*freeze_after_steps=*/0);
  EXPECT_FALSE(s0.at(at_step(0, 0)).frozen);
  EXPECT_TRUE(s0.at(at_step(1, 0)).frozen);
  optim::ConstantSchedule s1(100, 1);
  EXPECT_FALSE(s1.at(at_step(0, 0)).frozen);
  EXPECT_TRUE(s1.at(at_step(1, 0)).frozen);
  optim::ConstantSchedule s8(100, 8);
  EXPECT_FALSE(s8.at(at_step(7, 0)).frozen);
  EXPECT_TRUE(s8.at(at_step(8, 0)).frozen);
}

TEST(ConstantScheduleTest, FreezeEpochMatchesOldSessionHook) {
  // The old DropBackSession froze at the end of epoch freeze_epoch-1, i.e.
  // selection runs through epoch max(freeze_epoch,1)-1 and is frozen from
  // epoch max(freeze_epoch,1) on.
  optim::ConstantSchedule s(100, /*freeze_after_steps=*/-1,
                            /*freeze_epoch=*/2);
  EXPECT_TRUE(s.epoch_phrased());
  EXPECT_FALSE(s.at(at_step(19, 10)).frozen);  // epoch 1
  EXPECT_TRUE(s.at(at_step(20, 10)).frozen);   // epoch 2
  optim::ConstantSchedule s0(100, -1, 0);
  EXPECT_FALSE(s0.at(at_step(9, 10)).frozen);  // epoch 0 still selects
  EXPECT_TRUE(s0.at(at_step(10, 10)).frozen);  // frozen from epoch 1
}

TEST(ConstantScheduleTest, RejectsBadArguments) {
  EXPECT_THROW(optim::ConstantSchedule(0), std::invalid_argument);
  EXPECT_THROW(optim::ConstantSchedule(-5), std::invalid_argument);
  EXPECT_THROW(optim::ConstantSchedule(10, 3, 2), std::invalid_argument);
}

TEST(DenseSparseDenseTest, PhaseBudgetsAndFreeze) {
  // 2 dense epochs, 3 sparse epochs with a freeze 2 epochs in, then
  // re-dense. 10 steps per epoch.
  optim::DenseSparseDense s(1000, /*dense_epochs=*/2, /*sparse_epochs=*/3,
                            /*freeze_after_epochs=*/2);
  EXPECT_TRUE(s.epoch_phrased());
  EXPECT_FALSE(s.is_constant());
  EXPECT_EQ(s.at(at_step(0, 10)).budget, kDenseBudget);    // epoch 0
  EXPECT_EQ(s.at(at_step(19, 10)).budget, kDenseBudget);   // epoch 1
  EXPECT_EQ(s.at(at_step(20, 10)).budget, 1000);           // epoch 2: sparse
  EXPECT_FALSE(s.at(at_step(20, 10)).frozen);
  EXPECT_FALSE(s.at(at_step(39, 10)).frozen);  // 1 epoch into sparse
  EXPECT_TRUE(s.at(at_step(40, 10)).frozen);   // 2 epochs into sparse
  const BudgetDecision redense = s.at(at_step(50, 10));    // epoch 5
  EXPECT_EQ(redense.budget, kDenseBudget);
  EXPECT_FALSE(redense.frozen);  // re-dense unfreezes
}

TEST(DenseSparseDenseTest, SparseForeverAndCustomFinal) {
  optim::DenseSparseDense forever(500, 1);
  EXPECT_EQ(forever.at(at_step(5, 10)).budget, kDenseBudget);
  EXPECT_EQ(forever.at(at_step(10, 10)).budget, 500);
  EXPECT_EQ(forever.at(at_step(100000, 10)).budget, 500);

  optim::DenseSparseDense shrink(500, 1, 2, -1, /*final_budget=*/800);
  EXPECT_EQ(shrink.at(at_step(30, 10)).budget, 800);  // epoch 3: re-"dense"
}

TEST(StochasticDropBackTest, ReadmitOnlyWhileUnfrozen) {
  optim::StochasticDropBack s(100, 0.25F, /*seed=*/42,
                              /*freeze_after_steps=*/5);
  const BudgetDecision live = s.at(at_step(3, 0));
  EXPECT_EQ(live.budget, 100);
  EXPECT_FLOAT_EQ(live.readmit_prob, 0.25F);
  EXPECT_EQ(live.readmit_seed, 42U);
  const BudgetDecision frozen = s.at(at_step(5, 0));
  EXPECT_TRUE(frozen.frozen);
  EXPECT_EQ(frozen.readmit_prob, 0.0F);
}

TEST(StochasticDropBackTest, RejectsBadProbability) {
  EXPECT_THROW(optim::StochasticDropBack(100, 0.0F), std::invalid_argument);
  EXPECT_THROW(optim::StochasticDropBack(100, 1.5F), std::invalid_argument);
  EXPECT_THROW(optim::StochasticDropBack(100, -0.1F), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Spec mini-language
// ---------------------------------------------------------------------------

TEST(ScheduleSpecTest, ParsesConstAndRoundTrips) {
  const auto parsed =
      optim::parse_budget_schedule("const:budget=20000,freeze_epoch=7");
  EXPECT_EQ(parsed.schedule->base_budget(), 20000);
  EXPECT_TRUE(parsed.schedule->is_constant());
  EXPECT_EQ(parsed.split, BudgetSplit::kGlobal);
  EXPECT_EQ(parsed.schedule->spec(), "const:budget=20000,freeze_epoch=7");
  // spec() strings re-parse to an equal schedule.
  const auto again =
      optim::parse_budget_schedule(parsed.schedule->spec());
  EXPECT_EQ(again.schedule->spec(), parsed.schedule->spec());
}

TEST(ScheduleSpecTest, ParsesDsdStochasticAndScope) {
  const auto dsd = optim::parse_budget_schedule(
      "dsd:budget=1000,dense=2,sparse=3,freeze=1,final=4000,scope=layer");
  EXPECT_EQ(dsd.schedule->base_budget(), 1000);
  EXPECT_EQ(dsd.split, BudgetSplit::kPerLayer);
  EXPECT_EQ(dsd.schedule->spec(),
            "dsd:budget=1000,dense=2,sparse=3,freeze=1,final=4000");

  const auto sto = optim::parse_budget_schedule(
      "stochastic:budget=500,p=0.01,seed=9,freeze_step=100");
  EXPECT_EQ(sto.schedule->base_budget(), 500);
  const BudgetDecision d = sto.schedule->at(at_step(0, 0));
  EXPECT_FLOAT_EQ(d.readmit_prob, 0.01F);
  EXPECT_EQ(d.readmit_seed, 9U);
}

TEST(ScheduleSpecTest, RejectionsNameTheOffendingToken) {
  const auto expect_reject = [](const std::string& spec,
                                const std::string& needle) {
    try {
      optim::parse_budget_schedule(spec);
      FAIL() << "accepted '" << spec << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message for '" << spec << "' was: " << e.what();
    }
  };
  expect_reject("", "empty spec");
  expect_reject("linear:budget=10", "unknown kind 'linear'");
  expect_reject("const", "missing required key 'budget'");
  expect_reject("const:budget", "'budget' is not key=value");
  expect_reject("const:budget=12x", "bad integer '12x'");
  expect_reject("const:budget=100,dense=2", "unknown key 'dense'");
  expect_reject("dsd:dense=2", "missing required key 'budget'");
  expect_reject("stochastic:budget=100", "missing required key 'p'");
  expect_reject("stochastic:budget=100,p=high", "bad number 'high'");
  expect_reject("const:budget=100,scope=weird", "bad scope 'weird'");
  expect_reject("const:budget=100,,freeze_step=2", "empty token");
  expect_reject("const:budget=0", "budget must be positive");
}

// ---------------------------------------------------------------------------
// Optimizer-level harness
// ---------------------------------------------------------------------------

std::unique_ptr<nn::Sequential> tiny_net(std::uint64_t seed = 1) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Linear>(4, 6, seed);
  net->emplace<nn::Linear>(6, 3, seed + 1);
  return net;
}

void make_gradients(nn::Module& net, std::uint64_t seed) {
  rng::Xorshift128 rng(seed);
  T::Tensor x({2, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-1, 1);
  ag::Variable input(x);
  ag::Variable out = net.forward(input);
  ag::backward(ag::sum(ag::mul(out, out)));
}

/// Steps `opt` through `steps` synthetic gradient steps.
void drive(nn::Module& net, core::DropBackOptimizer& opt, std::int64_t steps,
           std::uint64_t seed_base = 100) {
  for (std::int64_t s = 0; s < steps; ++s) {
    net.zero_grad();
    make_gradients(net, seed_base + static_cast<std::uint64_t>(s));
    opt.step();
  }
}

std::vector<float> flat_weights(const std::vector<nn::Parameter*>& params) {
  std::vector<float> all;
  for (const nn::Parameter* p : params) {
    const float* w = p->var.value().data();
    all.insert(all.end(), w, w + p->numel());
  }
  return all;
}

TEST(ScheduleOptimizerTest, ConstantSchedulePathMatchesFixedConfigBitwise) {
  // The redesign's central compatibility promise: DropBackConfig{budget,
  // freeze_after_steps} and an explicit ConstantSchedule produce identical
  // weights AND identical DBOS bytes, at 1 and 2 threads.
  for (int threads : {1, 2}) {
    util::set_num_threads(threads);
    auto fixed_net = tiny_net();
    core::DropBackConfig fixed_config;
    fixed_config.budget = 12;
    fixed_config.freeze_after_steps = 5;
    core::DropBackOptimizer fixed(fixed_net->collect_parameters(), 0.1F,
                                  fixed_config);
    drive(*fixed_net, fixed, 8);

    auto sched_net = tiny_net();
    core::DropBackConfig sched_config;
    sched_config.schedule = optim::constant_budget(12, 5);
    core::DropBackOptimizer scheduled(sched_net->collect_parameters(), 0.1F,
                                      sched_config);
    drive(*sched_net, scheduled, 8);

    const auto wa = flat_weights(fixed_net->collect_parameters());
    const auto wb = flat_weights(sched_net->collect_parameters());
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t i = 0; i < wa.size(); ++i) {
      ASSERT_EQ(wa[i], wb[i]) << "weight " << i << " at " << threads
                              << " thread(s)";
    }
    std::ostringstream state_a;
    std::ostringstream state_b;
    fixed.save_state(state_a);
    scheduled.save_state(state_b);
    EXPECT_EQ(state_a.str(), state_b.str())
        << "DBOS bytes diverge at " << threads << " thread(s)";
    EXPECT_TRUE(fixed.frozen());
    EXPECT_TRUE(scheduled.frozen());
  }
  util::set_num_threads(1);
}

TEST(ScheduleOptimizerTest, DsdGrowsAndShrinksRegenConsistently) {
  // 51-weight net, 2 steps/epoch: dense epoch 0, sparse epochs 1-2 (k=10),
  // re-dense from epoch 3.
  auto net = tiny_net();
  core::DropBackConfig config;
  config.schedule =
      std::make_shared<optim::DenseSparseDense>(10, 1, 2, -1, kDenseBudget);
  config.steps_per_epoch = 2;
  core::DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  EXPECT_EQ(opt.config().budget, 10);  // base budget = sparse k

  drive(*net, opt, 2);  // dense epoch: everything tracked
  EXPECT_TRUE(opt.tracked().all_tracked());
  EXPECT_EQ(opt.current_budget(), opt.param_index().total());

  drive(*net, opt, 2, 200);  // sparse epoch 1: shrink to 10
  EXPECT_FALSE(opt.tracked().all_tracked());
  EXPECT_EQ(opt.tracked().tracked_count(), 10);
  EXPECT_EQ(opt.current_budget(), 10);
  // Every untracked weight sits exactly at its regenerated init — the
  // invariant that makes later growth regen-consistent.
  const auto& index = opt.param_index();
  for (std::size_t p = 0; p < index.num_params(); ++p) {
    const nn::Parameter& param = index.param(p);
    if (!param.prunable) continue;
    const std::uint8_t* mask = opt.tracked().mask_of(p);
    for (std::int64_t i = 0; i < param.numel(); ++i) {
      if (mask[static_cast<std::size_t>(i)] != 0) continue;
      ASSERT_EQ(param.var.value()[i],
                param.init.value_at(static_cast<std::uint64_t>(i)))
          << "untracked weight " << i << " of param " << p;
    }
  }

  drive(*net, opt, 2, 300);  // sparse epoch 2
  EXPECT_EQ(opt.tracked().tracked_count(), 10);

  // Re-dense: the grow step tracks everything again and the churn counter
  // reports exactly the number of grown (previously untracked) entries.
  net->zero_grad();
  make_gradients(*net, 400);
  const std::int64_t untracked_before =
      index.total() - opt.tracked().tracked_count();
  opt.step();
  EXPECT_TRUE(opt.tracked().all_tracked());
  EXPECT_EQ(opt.last_churn(), untracked_before);
  EXPECT_EQ(opt.current_budget(), index.total());
}

TEST(ScheduleOptimizerTest, EpochPhrasedScheduleRequiresStepsPerEpoch) {
  auto net = tiny_net();
  core::DropBackConfig config;
  config.schedule = std::make_shared<optim::DenseSparseDense>(10, 1);
  core::DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  make_gradients(*net, 7);
  EXPECT_THROW(opt.step(), std::invalid_argument);
  opt.set_steps_per_epoch(2);
  EXPECT_NO_THROW(opt.step());
}

TEST(ScheduleOptimizerTest, StochasticReadmitIdenticalAcrossThreadCounts) {
  std::vector<std::vector<float>> results;
  std::vector<std::string> states;
  for (int threads : {1, 2, 7}) {
    util::set_num_threads(threads);
    auto net = tiny_net();
    core::DropBackConfig config;
    config.schedule =
        std::make_shared<optim::StochasticDropBack>(10, 0.2F, /*seed=*/77);
    core::DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
    drive(*net, opt, 6);
    results.push_back(flat_weights(net->collect_parameters()));
    std::ostringstream state;
    opt.save_state(state);
    states.push_back(state.str());
  }
  util::set_num_threads(1);
  for (std::size_t v = 1; v < results.size(); ++v) {
    ASSERT_EQ(results[0].size(), results[v].size());
    for (std::size_t i = 0; i < results[0].size(); ++i) {
      ASSERT_EQ(results[0][i], results[v][i])
          << "weight " << i << " differs at variant " << v;
    }
    EXPECT_EQ(states[0], states[v]);
  }
}

TEST(ScheduleOptimizerTest, ReadmitCountersAreExact) {
  // With p=1 every untracked weight re-enters the set on the readmit pass.
  auto net = tiny_net();
  core::DropBackConfig config;
  config.schedule = std::make_shared<optim::StochasticDropBack>(10, 1.0F);
  core::DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  drive(*net, opt, 1);
  const std::int64_t total = opt.param_index().total();
  // Step 1: select() shrinks to 10, then readmit(p=1) flips the other 41.
  EXPECT_EQ(opt.tracked().last_readmitted(), total - 10);
  EXPECT_EQ(opt.tracked().tracked_count(), total);
}

// ---------------------------------------------------------------------------
// DBOS schedule-state validation
// ---------------------------------------------------------------------------

TEST(ScheduleStateTest, DynamicSnapshotRefusesDifferentSchedule) {
  auto net = tiny_net();
  core::DropBackConfig config;
  config.schedule = std::make_shared<optim::StochasticDropBack>(10, 0.2F, 7);
  config.steps_per_epoch = 2;
  core::DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  drive(*net, opt, 3);
  std::ostringstream out;
  opt.save_state(out);

  // Same budget, different schedule parameters: typed IoError naming both.
  auto other_net = tiny_net();
  core::DropBackConfig other;
  other.schedule = std::make_shared<optim::StochasticDropBack>(10, 0.5F, 7);
  other.steps_per_epoch = 2;
  core::DropBackOptimizer mismatch(other_net->collect_parameters(), 0.1F,
                                   other);
  std::istringstream in(out.str());
  try {
    mismatch.load_state(in);
    FAIL() << "loaded a snapshot written under a different schedule";
  } catch (const util::IoError& e) {
    EXPECT_NE(std::string(e.what()).find("schedule mismatch"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("p=0.2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("p=0.5"), std::string::npos);
  }

  // The same schedule loads fine and the state round-trips bitwise.
  auto same_net = tiny_net();
  core::DropBackConfig same;
  same.schedule = std::make_shared<optim::StochasticDropBack>(10, 0.2F, 7);
  same.steps_per_epoch = 2;
  core::DropBackOptimizer resumed(same_net->collect_parameters(), 0.1F, same);
  std::istringstream in2(out.str());
  resumed.load_state(in2);
  EXPECT_EQ(resumed.steps(), 3);
  std::ostringstream out2;
  resumed.save_state(out2);
  EXPECT_EQ(out.str(), out2.str());
}

TEST(ScheduleStateTest, ConstantSnapshotRefusedByDynamicSchedule) {
  auto net = tiny_net();
  core::DropBackConfig config;
  config.budget = 10;
  core::DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  drive(*net, opt, 2);
  std::ostringstream out;
  opt.save_state(out);

  auto other_net = tiny_net();
  core::DropBackConfig dynamic;
  dynamic.schedule = std::make_shared<optim::StochasticDropBack>(10, 0.2F);
  core::DropBackOptimizer loader(other_net->collect_parameters(), 0.1F,
                                 dynamic);
  std::istringstream in(out.str());
  EXPECT_THROW(loader.load_state(in), util::IoError);
}

TEST(ScheduleStateTest, ManualFreezeSurvivesRoundTrip) {
  auto net = tiny_net();
  core::DropBackConfig config;
  config.budget = 10;  // constant, never freezes on its own
  core::DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  drive(*net, opt, 2);
  opt.freeze();
  EXPECT_TRUE(opt.frozen());
  std::ostringstream out;
  opt.save_state(out);

  auto net2 = tiny_net();
  core::DropBackConfig config2;
  config2.budget = 10;
  core::DropBackOptimizer loaded(net2->collect_parameters(), 0.1F, config2);
  std::istringstream in(out.str());
  loaded.load_state(in);
  EXPECT_TRUE(loaded.frozen());
  // Still frozen after more steps: the manual latch is sticky, not a
  // schedule artifact that the next refresh would clear.
  drive(*net2, loaded, 2, 500);
  EXPECT_TRUE(loaded.frozen());
}

// ---------------------------------------------------------------------------
// Trainer integration: checkpoint-file bytes of the two constant paths
// ---------------------------------------------------------------------------

TEST(ScheduleTrainerTest, ConstantScheduleCheckpointFileBytesMatchFixedPath) {
  data::SyntheticMnistOptions data_opt;
  data_opt.num_samples = 64;
  data_opt.seed = 1;
  auto train_set = data::make_synthetic_mnist(data_opt);
  data_opt.num_samples = 32;
  data_opt.seed = 2;
  auto val_set = data::make_synthetic_mnist(data_opt);

  for (int threads : {1, 2}) {
    const std::string fixed_ckpt = ::testing::TempDir() + "/sched_fixed_" +
                                   std::to_string(threads) + ".dbts";
    const std::string sched_ckpt = ::testing::TempDir() + "/sched_const_" +
                                   std::to_string(threads) + ".dbts";
    std::vector<float> fixed_weights;
    {
      auto model = nn::models::make_mnist_100_100(7);
      core::DropBackConfig config;
      config.budget = 2000;
      config.freeze_after_steps = 6;
      core::DropBackOptimizer opt(model->collect_parameters(), 0.1F, config);
      train::TrainConfig options;
      options.epochs = 2;
      options.batch_size = 16;
      options.threads = threads;
      options.checkpoint_path = fixed_ckpt;
      train::Trainer trainer(*model, opt, *train_set, *val_set, options);
      trainer.run();
      fixed_weights = flat_weights(model->collect_parameters());
    }
    std::vector<float> sched_weights;
    {
      auto model = nn::models::make_mnist_100_100(7);
      core::DropBackConfig config;
      config.budget = 999;  // overridden by the schedule below
      core::DropBackOptimizer opt(model->collect_parameters(), 0.1F, config);
      train::TrainConfig options;
      options.epochs = 2;
      options.batch_size = 16;
      options.threads = threads;
      options.checkpoint_path = sched_ckpt;
      options.budget_schedule = optim::constant_budget(2000, 6);
      train::Trainer trainer(*model, opt, *train_set, *val_set, options);
      trainer.run();
      sched_weights = flat_weights(model->collect_parameters());
    }
    ASSERT_EQ(fixed_weights.size(), sched_weights.size());
    for (std::size_t i = 0; i < fixed_weights.size(); ++i) {
      ASSERT_EQ(fixed_weights[i], sched_weights[i])
          << "weight " << i << " at " << threads << " thread(s)";
    }
    EXPECT_EQ(util::read_file(fixed_ckpt), util::read_file(sched_ckpt))
        << "checkpoint bytes diverge at " << threads << " thread(s)";
  }
  util::set_num_threads(1);
}

}  // namespace
}  // namespace dropback
