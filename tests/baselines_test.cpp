#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.hpp"
#include "baselines/magnitude_pruner.hpp"
#include "baselines/network_slimming.hpp"
#include "baselines/variational_dropout.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/models/vgg_s.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "rng/xorshift.hpp"

namespace dropback::baselines {
namespace {

namespace T = dropback::tensor;
namespace ag = dropback::autograd;

std::unique_ptr<nn::Sequential> tiny_net(std::uint64_t seed = 1) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Linear>(4, 6, seed);
  net->emplace<nn::Linear>(6, 3, seed + 1);
  return net;
}

void make_gradients(nn::Module& net, std::uint64_t seed,
                    std::int64_t in_dim = 4) {
  rng::Xorshift128 rng(seed);
  T::Tensor x({2, in_dim});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-1, 1);
  ag::Variable input(x);
  ag::backward(ag::sum(ag::mul(net.forward(input), net.forward(input))));
}

// --- magnitude pruning ------------------------------------------------------

TEST(MagnitudePruning, KeepsExactlyTheBudget) {
  auto net = tiny_net();
  MagnitudePruningOptimizer opt(net->collect_parameters(), 0.1F,
                                /*prune_fraction=*/0.8F);
  EXPECT_EQ(opt.kept_weights(), std::max<std::int64_t>(1, 51 / 5));
  make_gradients(*net, 3);
  opt.step();
  // Count nonzero weights.
  std::int64_t nonzero = 0;
  for (auto* p : net->parameters()) {
    for (std::int64_t i = 0; i < p->numel(); ++i) {
      if (p->var.value()[i] != 0.0F) ++nonzero;
    }
  }
  EXPECT_LE(nonzero, opt.kept_weights());
}

TEST(MagnitudePruning, KeptWeightsAreTheLargest) {
  auto net = tiny_net();
  MagnitudePruningOptimizer opt(net->collect_parameters(), 0.01F, 0.5F);
  make_gradients(*net, 4);
  opt.step();
  // Every surviving weight must be >= every zeroed weight's pre-zero value
  // cannot be checked directly, but survivors must all exceed the smallest
  // survivor in magnitude by construction; verify mask consistency instead.
  const auto& kept = opt.kept();
  const auto& index = opt.param_index();
  float min_kept = 1e9F;
  float max_dropped = 0.0F;
  for (std::size_t p = 0; p < index.num_params(); ++p) {
    nn::Parameter& param = index.param(p);
    const std::uint8_t* mask = kept.mask_of(p);
    for (std::int64_t i = 0; i < param.numel(); ++i) {
      const float v = std::fabs(param.var.value()[i]);
      if (mask[static_cast<std::size_t>(i)]) {
        min_kept = std::min(min_kept, v);
      } else {
        max_dropped = std::max(max_dropped, v);  // should be 0 after zeroing
      }
    }
  }
  EXPECT_FLOAT_EQ(max_dropped, 0.0F);
  EXPECT_GT(min_kept, 0.0F);
}

TEST(MagnitudePruning, CompressionRatioMatchesFraction) {
  auto net = tiny_net();
  MagnitudePruningOptimizer opt(net->collect_parameters(), 0.1F, 0.75F);
  EXPECT_NEAR(opt.compression_ratio(), 51.0 / opt.kept_weights(), 1e-9);
  EXPECT_NEAR(opt.compression_ratio(), 4.0, 0.35);
}

TEST(MagnitudePruning, RejectsFullPruning) {
  auto net = tiny_net();
  EXPECT_THROW(
      MagnitudePruningOptimizer(net->collect_parameters(), 0.1F, 1.0F),
      std::invalid_argument);
}

TEST(MagnitudePruning, ZeroFractionIsPlainSgd) {
  auto net_a = tiny_net(5);
  auto net_b = tiny_net(5);
  MagnitudePruningOptimizer mag(net_a->collect_parameters(), 0.2F, 0.0F);
  optim::SGD sgd(net_b->collect_parameters(), 0.2F);
  make_gradients(*net_a, 6);
  make_gradients(*net_b, 6);
  mag.step();
  sgd.step();
  auto pa = net_a->parameters();
  auto pb = net_b->parameters();
  for (std::size_t p = 0; p < pa.size(); ++p) {
    for (std::int64_t i = 0; i < pa[p]->numel(); ++i) {
      ASSERT_FLOAT_EQ(pa[p]->var.value()[i], pb[p]->var.value()[i]);
    }
  }
}

// --- variational dropout ----------------------------------------------------

TEST(VariationalDropout, KlIsPositiveAtInit) {
  VdLinear layer(6, 4, 7);
  ag::Variable kl = layer.kl();
  EXPECT_GT(kl.value()[0], 0.0F);
}

TEST(VariationalDropout, KlDecreasesWithLogAlpha) {
  // KL is minimized as alpha -> infinity (weight fully dropped); pushing
  // log_sigma2 up must lower the KL.
  VdLinear layer(6, 4, 7);
  const float kl_before = layer.kl().value()[0];
  layer.log_sigma2().var.value().fill_(5.0F);  // huge alpha
  const float kl_after = layer.kl().value()[0];
  EXPECT_LT(kl_after, kl_before);
}

TEST(VariationalDropout, NearlyAllWeightsActiveAtInit) {
  // log_sigma2 = -8 and theta ~ lecun => log alpha well below threshold for
  // all but weights that happened to initialize within ~1e-3 of zero.
  VdLinear layer(6, 4, 7);
  EXPECT_GE(layer.active_weights(), layer.total_weights() * 9 / 10);
}

TEST(VariationalDropout, HighAlphaWeightsGetPruned) {
  VdLinear layer(6, 4, 7);
  layer.log_sigma2().var.value().fill_(10.0F);
  EXPECT_EQ(layer.active_weights(), 0);
  // Eval-mode forward must then produce bias-only outputs.
  layer.set_training(false);
  ag::Variable x(T::Tensor::ones({1, 6}));
  auto y = layer.forward(x);
  for (std::int64_t i = 0; i < y.value().numel(); ++i) {
    EXPECT_FLOAT_EQ(y.value()[i], 0.0F);
  }
}

TEST(VariationalDropout, TrainingForwardIsStochastic) {
  VdLinear layer(8, 4, 7);
  layer.log_sigma2().var.value().fill_(-2.0F);  // visible noise
  layer.set_training(true);
  ag::Variable x(T::Tensor::ones({1, 8}));
  auto y1 = layer.forward(x);
  auto y2 = layer.forward(x);
  bool any_diff = false;
  for (std::int64_t i = 0; i < 4; ++i) {
    if (y1.value()[i] != y2.value()[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(VariationalDropout, EvalForwardIsDeterministic) {
  VdLinear layer(8, 4, 7);
  layer.set_training(false);
  ag::Variable x(T::Tensor::ones({1, 8}));
  auto y1 = layer.forward(x);
  auto y2 = layer.forward(x);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(y1.value()[i], y2.value()[i]);
  }
}

TEST(VariationalDropout, GradientsReachBothThetaAndLogSigma) {
  VdLinear layer(5, 3, 9);
  layer.set_training(true);
  rng::Xorshift128 rng(1);
  T::Tensor x({2, 5});
  for (std::int64_t i = 0; i < 10; ++i) x[i] = rng.uniform(-1, 1);
  ag::Variable input(x);
  auto y = layer.forward(input);
  auto loss = ag::add(ag::sum(ag::mul(y, y)),
                      ag::mul_scalar(layer.kl(), 0.01F));
  ag::backward(loss);
  EXPECT_TRUE(layer.theta().var.has_grad());
  EXPECT_TRUE(layer.log_sigma2().var.has_grad());
  EXPECT_GT(layer.log_sigma2().var.grad().norm(), 0.0F);
}

TEST(VariationalDropout, ConvVariantShapesAndPruning) {
  VdConv2d conv(2, 3, 3, 1, 1, 11);
  conv.set_training(true);
  rng::Xorshift128 rng(2);
  T::Tensor x({1, 2, 5, 5});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-1, 1);
  EXPECT_EQ(conv.forward(ag::Variable(x)).value().shape(),
            (T::Shape{1, 3, 5, 5}));
  EXPECT_EQ(conv.total_weights(), 2 * 3 * 9);
  EXPECT_EQ(conv.active_weights(), conv.total_weights());
}

TEST(VariationalDropout, BuildersWireUpLayers) {
  auto mlp = make_vd_mlp(16, {8}, 4, 5);
  EXPECT_EQ(mlp.vd_layers.size(), 2U);
  auto kl = vd_total_kl(mlp.vd_layers, 0.5F);
  EXPECT_GT(kl.value()[0], 0.0F);
  EXPECT_GT(vd_compression(mlp.vd_layers), 0.0);
  rng::Xorshift128 rng(3);
  T::Tensor x({2, 16});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-1, 1);
  EXPECT_EQ(mlp.net->forward(ag::Variable(x)).value().shape(),
            (T::Shape{2, 4}));
}

TEST(VariationalDropout, KlApproximationNearZeroAlphaIsLarge) {
  // For log alpha << 0 the KL per weight approaches +0.5*(-la) growth; it
  // must exceed the KL at log alpha >> 0 (which tends to 0).
  ag::Variable low(T::Tensor::full({1}, -10.0F));
  ag::Variable high(T::Tensor::full({1}, 10.0F));
  EXPECT_GT(vd_kl_from_log_alpha(low).value()[0],
            vd_kl_from_log_alpha(high).value()[0]);
  EXPECT_NEAR(vd_kl_from_log_alpha(high).value()[0], 0.0F, 0.05F);
}

// --- network slimming -------------------------------------------------------

std::unique_ptr<nn::Sequential> conv_bn_net() {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(1, 4, 3, 1, 1, 1);
  net->emplace<nn::BatchNorm2d>(4);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Conv2d>(4, 6, 3, 1, 1, 2);
  net->emplace<nn::BatchNorm2d>(6);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(6 * 4 * 4, 3, 3);
  return net;
}

TEST(NetworkSlimmingTest, FindsConvBnPairs) {
  auto net = conv_bn_net();
  NetworkSlimming slimming(*net, 1e-4F);
  EXPECT_EQ(slimming.num_pairs(), 2U);
  EXPECT_EQ(slimming.stats().channels_total, 10);
}

TEST(NetworkSlimmingTest, L1SubgradientPushesGammaGrads) {
  auto net = conv_bn_net();
  NetworkSlimming slimming(*net, 0.1F);
  slimming.add_l1_subgradient();
  auto* bn = dynamic_cast<nn::BatchNorm2d*>(&net->at(1));
  ASSERT_NE(bn, nullptr);
  // gamma starts at +1 everywhere, so subgradient is +lambda.
  for (std::int64_t c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(bn->gamma().var.grad()[c], 0.1F);
  }
}

TEST(NetworkSlimmingTest, PruneRemovesLowGammaChannels) {
  auto net = conv_bn_net();
  auto* bn1 = dynamic_cast<nn::BatchNorm2d*>(&net->at(1));
  // Make channels 0 and 2 of the first BN tiny.
  bn1->gamma().var.value()[0] = 1e-5F;
  bn1->gamma().var.value()[2] = 1e-5F;
  NetworkSlimming slimming(*net, 1e-4F);
  const auto stats = slimming.prune(0.2F);  // 2 of 10 channels
  EXPECT_EQ(stats.channels_pruned, 2);
  EXPECT_GT(stats.params_removed, 0);
  EXPECT_GT(stats.compression_ratio(), 1.0);
  // The pruned conv filter rows are zero.
  auto* conv1 = dynamic_cast<nn::Conv2d*>(&net->at(0));
  const auto& w = conv1->weight().var.value();
  for (std::int64_t i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(w[0 * 9 + i], 0.0F);  // channel 0 filter
    EXPECT_FLOAT_EQ(w[2 * 9 + i], 0.0F);  // channel 2 filter
  }
  // And the next conv's input slices for those channels are zero.
  auto* conv2 = dynamic_cast<nn::Conv2d*>(&net->at(3));
  const auto& w2 = conv2->weight().var.value();
  for (std::int64_t o = 0; o < 6; ++o) {
    for (std::int64_t i = 0; i < 9; ++i) {
      EXPECT_FLOAT_EQ(w2[(o * 4 + 0) * 9 + i], 0.0F);
      EXPECT_FLOAT_EQ(w2[(o * 4 + 2) * 9 + i], 0.0F);
    }
  }
}

TEST(NetworkSlimmingTest, ApplyMasksReZeroesAfterUpdates) {
  auto net = conv_bn_net();
  auto* bn1 = dynamic_cast<nn::BatchNorm2d*>(&net->at(1));
  bn1->gamma().var.value()[1] = 1e-6F;
  NetworkSlimming slimming(*net, 1e-4F);
  slimming.prune(0.1F);
  // Simulate retraining touching the pruned channel.
  auto* conv1 = dynamic_cast<nn::Conv2d*>(&net->at(0));
  conv1->weight().var.value()[1 * 9 + 3] = 0.5F;
  bn1->gamma().var.value()[1] = 0.7F;
  slimming.apply_masks();
  EXPECT_FLOAT_EQ(conv1->weight().var.value()[1 * 9 + 3], 0.0F);
  EXPECT_FLOAT_EQ(bn1->gamma().var.value()[1], 0.0F);
}

TEST(NetworkSlimmingTest, PruneOnVggTopologyRuns) {
  nn::models::VggSOptions opt;
  opt.width_mult = 0.05F;
  auto net = nn::models::make_vgg_s(opt);
  NetworkSlimming slimming(*net, 1e-4F);
  EXPECT_GT(slimming.num_pairs(), 5U);
  const auto stats = slimming.prune(0.3F);
  EXPECT_GT(stats.channels_pruned, 0);
  // The pruned network must still run forward.
  rng::Xorshift128 rng(1);
  T::Tensor x({1, 3, 32, 32});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(0, 1);
  net->set_training(false);
  EXPECT_EQ(net->forward(ag::Variable(x)).value().shape(), (T::Shape{1, 10}));
}

/// Fraction sweep for magnitude pruning budgets.
class MagFractionSweep : public ::testing::TestWithParam<float> {};

TEST_P(MagFractionSweep, BudgetFollowsFraction) {
  auto net = tiny_net();
  MagnitudePruningOptimizer opt(net->collect_parameters(), 0.1F, GetParam());
  const auto expected = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::llround(51 * (1.0 - GetParam()))));
  EXPECT_EQ(opt.kept_weights(), expected);
}

INSTANTIATE_TEST_SUITE_P(Fractions, MagFractionSweep,
                         ::testing::Values(0.0F, 0.25F, 0.5F, 0.75F, 0.8F,
                                           0.95F));

}  // namespace
}  // namespace dropback::baselines
