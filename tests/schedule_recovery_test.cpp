// Schedule-aware crash recovery: a killed-and-resumed run under a *dynamic*
// BudgetSchedule (DenseSparseDense, StochasticDropBack) must follow the
// uninterrupted run bitwise — weights and history — at 1, 2, and 7 threads,
// whether the kill lands mid-shrink (sparse phase), mid-re-dense, or inside
// the stochastic re-admission stream. This is the determinism contract of
// docs/SCHEDULES.md: schedules are pure functions of the step counter, and
// the DBTS/DBOS snapshot carries everything needed to re-derive the
// trajectory (including the schedule spec, validated on load).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/dropback_optimizer.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/models/lenet.hpp"
#include "optim/budget_schedule.hpp"
#include "train/trainer.hpp"

namespace dropback::train {
namespace {

struct TinyTask {
  std::unique_ptr<data::InMemoryDataset> train_set;
  std::unique_ptr<data::InMemoryDataset> val_set;
};

TinyTask make_task(std::int64_t n_train = 96, std::int64_t n_val = 32) {
  data::SyntheticMnistOptions opt;
  opt.num_samples = n_train;
  opt.seed = 1;
  TinyTask task;
  task.train_set = data::make_synthetic_mnist(opt);
  opt.num_samples = n_val;
  opt.seed = 2;
  task.val_set = data::make_synthetic_mnist(opt);
  return task;
}

/// Thrown by an after_step hook to emulate SIGKILL between two steps.
struct KillSignal {};

std::vector<float> flat_weights(const std::vector<nn::Parameter*>& params) {
  std::vector<float> all;
  for (const nn::Parameter* p : params) {
    const float* w = p->var.value().data();
    all.insert(all.end(), w, w + p->numel());
  }
  return all;
}

void expect_bitwise_equal(const std::vector<float>& a,
                          const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "weight " << i;
  }
}

void expect_history_bitwise_equal(const TrainResult& a, const TrainResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t e = 0; e < a.history.size(); ++e) {
    ASSERT_EQ(a.history[e].epoch, b.history[e].epoch);
    ASSERT_EQ(a.history[e].train_loss, b.history[e].train_loss)
        << "epoch " << e;
    ASSERT_EQ(a.history[e].train_acc, b.history[e].train_acc) << "epoch " << e;
    ASSERT_EQ(a.history[e].val_acc, b.history[e].val_acc) << "epoch " << e;
    ASSERT_EQ(a.history[e].lr, b.history[e].lr) << "epoch " << e;
  }
  ASSERT_EQ(a.best_val_acc, b.best_val_acc);
  ASSERT_EQ(a.best_epoch, b.best_epoch);
}

// 96 samples / batch 16 = 6 steps per epoch over 3 epochs; snapshot every
// 2 steps so every kill point has a recent snapshot to resume from.
TrainConfig base_options(
    const std::string& checkpoint_path, std::int64_t threads,
    std::shared_ptr<const optim::BudgetSchedule> schedule) {
  TrainConfig options;
  options.epochs = 3;
  options.batch_size = 16;
  options.checkpoint_path = checkpoint_path;
  options.checkpoint_every = 2;
  options.threads = threads;
  options.budget_schedule = std::move(schedule);
  return options;
}

struct RunOutput {
  std::vector<float> weights;
  TrainResult result;
};

core::DropBackOptimizer make_optimizer(nn::Module& model) {
  // The budget comes from the schedule the Trainer installs; this value is
  // a placeholder the redesign overrides (and the test would catch it not
  // being overridden: 1 tracked weight cannot reproduce the reference run).
  core::DropBackConfig config;
  config.budget = 1;
  return core::DropBackOptimizer(model.collect_parameters(), 0.1F, config);
}

RunOutput reference_run(
    const TinyTask& task, const std::string& ckpt, std::int64_t threads,
    const std::shared_ptr<const optim::BudgetSchedule>& schedule) {
  auto model = nn::models::make_mnist_100_100(7);
  auto opt = make_optimizer(*model);
  Trainer trainer(*model, opt, *task.train_set, *task.val_set,
                  base_options(ckpt, threads, schedule));
  RunOutput out;
  out.result = trainer.run();
  out.weights = flat_weights(model->collect_parameters());
  return out;
}

RunOutput killed_and_resumed_run(
    const TinyTask& task, const std::string& ckpt, std::int64_t threads,
    std::int64_t kill_at_step,
    const std::shared_ptr<const optim::BudgetSchedule>& schedule) {
  {
    auto model = nn::models::make_mnist_100_100(7);
    auto opt = make_optimizer(*model);
    Trainer trainer(*model, opt, *task.train_set, *task.val_set,
                    base_options(ckpt, threads, schedule));
    trainer.after_step = [kill_at_step](std::int64_t step) {
      if (step == kill_at_step) throw KillSignal{};
    };
    EXPECT_THROW(trainer.run(), KillSignal);
  }
  // Fresh everything with a different init seed: the snapshot must overwrite
  // all of it, or the comparison below fails.
  auto model = nn::models::make_mnist_100_100(12345);
  auto opt = make_optimizer(*model);
  TrainConfig options = base_options(ckpt, threads, schedule);
  options.resume = true;
  Trainer trainer(*model, opt, *task.train_set, *task.val_set, options);
  RunOutput out;
  out.result = trainer.run();
  out.weights = flat_weights(model->collect_parameters());
  return out;
}

void run_kill_resume(
    const std::string& tag, std::int64_t threads, std::int64_t kill_at_step,
    const std::shared_ptr<const optim::BudgetSchedule>& schedule) {
  const auto task = make_task();
  const std::string dir = ::testing::TempDir();
  const std::string suffix = tag + "_" + std::to_string(threads) + "_" +
                             std::to_string(kill_at_step) + ".dbts";
  const std::string ref_ckpt = dir + "/sched_ref_" + suffix;
  const std::string killed_ckpt = dir + "/sched_killed_" + suffix;
  std::remove(ref_ckpt.c_str());
  std::remove(killed_ckpt.c_str());
  const RunOutput ref = reference_run(task, ref_ckpt, threads, schedule);
  const RunOutput resumed =
      killed_and_resumed_run(task, killed_ckpt, threads, kill_at_step, schedule);
  expect_bitwise_equal(ref.weights, resumed.weights);
  expect_history_bitwise_equal(ref.result, resumed.result);
}

using Sweep = std::tuple<std::int64_t, std::int64_t>;

// --- DenseSparseDense ------------------------------------------------------
// dense epoch 0 (steps 0-5, track-all) -> sparse epoch 1 (steps 6-11,
// k=4000) -> re-dense epoch 2 (steps 12-17). Kill points: 7 = mid-shrink
// (one step into the sparse phase, between snapshots), 13 = mid-re-dense
// (one step after the set grew back).
std::shared_ptr<const optim::BudgetSchedule> dsd_schedule() {
  return std::make_shared<optim::DenseSparseDense>(
      /*budget=*/4000, /*dense_epochs=*/1, /*sparse_epochs=*/1);
}

class DsdKillResumeSweep : public ::testing::TestWithParam<Sweep> {};

TEST_P(DsdKillResumeSweep, BitwiseEqualToUninterruptedRun) {
  const auto [threads, kill_at_step] = GetParam();
  run_kill_resume("dsd", threads, kill_at_step, dsd_schedule());
}

INSTANTIATE_TEST_SUITE_P(
    Kills, DsdKillResumeSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 2, 7),
                       ::testing::Values<std::int64_t>(7, 13)));

// --- StochasticDropBack ----------------------------------------------------
// k=4000 with p=0.05 re-admission per step, frozen from step 14. Kill
// points: 5 = inside the live re-admission stream between snapshots, 9 =
// deeper into the run but still unfrozen (re-admission decisions after
// resume must replay the same counter-based stream).
std::shared_ptr<const optim::BudgetSchedule> stochastic_schedule() {
  return std::make_shared<optim::StochasticDropBack>(
      /*budget=*/4000, /*readmit_prob=*/0.05F, /*seed=*/99,
      /*freeze_after_steps=*/14);
}

class StochasticKillResumeSweep : public ::testing::TestWithParam<Sweep> {};

TEST_P(StochasticKillResumeSweep, BitwiseEqualToUninterruptedRun) {
  const auto [threads, kill_at_step] = GetParam();
  run_kill_resume("stochastic", threads, kill_at_step, stochastic_schedule());
}

INSTANTIATE_TEST_SUITE_P(
    Kills, StochasticKillResumeSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 2, 7),
                       ::testing::Values<std::int64_t>(5, 9)));

// Cross-thread-count determinism of full runs under a dynamic schedule: the
// contract behind the sweep above (and the reason kill/resume can't diverge
// by thread count either).
TEST(ScheduleDeterminism, DsdRunIdenticalAcrossThreadCounts) {
  const auto task = make_task();
  std::vector<std::vector<float>> all;
  for (std::int64_t threads : {1, 2, 7}) {
    const std::string ckpt = ::testing::TempDir() + "/sched_det_" +
                             std::to_string(threads) + ".dbts";
    std::remove(ckpt.c_str());
    all.push_back(reference_run(task, ckpt, threads, dsd_schedule()).weights);
  }
  expect_bitwise_equal(all[0], all[1]);
  expect_bitwise_equal(all[0], all[2]);
}

}  // namespace
}  // namespace dropback::train
