#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "nn/models/densenet.hpp"
#include "nn/models/lenet.hpp"
#include "nn/models/vgg_s.hpp"
#include "nn/models/wrn.hpp"

namespace dropback::nn::models {
namespace {

namespace T = dropback::tensor;
namespace ag = dropback::autograd;
using dropback::testing::random_tensor;

TEST(MlpModels, LeNet300100HasPaperParamCount) {
  auto model = make_lenet_300_100(1);
  // 784*300+300 + 300*100+100 + 100*10+10 = 266,610 (~266.6k per paper).
  EXPECT_EQ(model->num_params(), 266610);
}

TEST(MlpModels, Mnist100100HasPaperParamCount) {
  auto model = make_mnist_100_100(1);
  // 78500 + 10100 + 1010 = 89,610 — Table 2's layer-by-layer total.
  EXPECT_EQ(model->num_params(), 89610);
}

TEST(MlpModels, PerLayerCountsMatchTable2) {
  auto model = make_mnist_100_100(1);
  auto params = model->collect_parameters();
  ASSERT_EQ(params.size(), 6U);  // 3x (weight, bias)
  EXPECT_EQ(params[0]->numel() + params[1]->numel(), 78500);  // fc1
  EXPECT_EQ(params[2]->numel() + params[3]->numel(), 10100);  // fc2
  EXPECT_EQ(params[4]->numel() + params[5]->numel(), 1010);   // fc3
}

TEST(MlpModels, ForwardAcceptsImagesAndFlatVectors) {
  auto model = make_mnist_100_100(1);
  rng::Xorshift128 rng(1);
  ag::Variable img(random_tensor({2, 1, 28, 28}, rng));
  ag::Variable flat(random_tensor({2, 784}, rng));
  EXPECT_EQ(model->forward(img).value().shape(), (T::Shape{2, 10}));
  EXPECT_EQ(model->forward(flat).value().shape(), (T::Shape{2, 10}));
}

TEST(MlpModels, SameSeedReproducesInitialization) {
  auto a = make_lenet_300_100(7);
  auto b = make_lenet_300_100(7);
  auto pa = a->parameters();
  auto pb = b->parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::int64_t j = 0; j < pa[i]->numel(); ++j) {
      ASSERT_EQ(pa[i]->var.value()[j], pb[i]->var.value()[j]);
    }
  }
}

TEST(VggS, ForwardShapeAndDropoutEval) {
  VggSOptions opt;
  opt.width_mult = 0.05F;
  auto net = make_vgg_s(opt);
  rng::Xorshift128 rng(1);
  ag::Variable x(random_tensor({2, 3, 32, 32}, rng));
  net->set_training(false);
  EXPECT_EQ(net->forward(x).value().shape(), (T::Shape{2, 10}));
}

TEST(VggS, WidthMultScalesParameters) {
  VggSOptions small;
  small.width_mult = 0.05F;
  VggSOptions bigger;
  bigger.width_mult = 0.1F;
  const auto n_small = make_vgg_s(small)->num_params();
  const auto n_bigger = make_vgg_s(bigger)->num_params();
  EXPECT_GT(n_bigger, 2 * n_small);
}

TEST(VggS, FullWidthMatchesPaperScale) {
  // The paper quotes ~15M parameters for VGG-S. Constructing the full-width
  // net is cheap (allocation only).
  VggSOptions opt;
  opt.width_mult = 1.0F;
  const auto n = make_vgg_s(opt)->num_params();
  EXPECT_GT(n, 14'000'000);
  EXPECT_LT(n, 16'500'000);
}

TEST(DenseNetModel, ForwardShape) {
  DenseNetOptions opt;  // tiny defaults
  auto net = make_densenet(opt);
  rng::Xorshift128 rng(2);
  ag::Variable x(random_tensor({2, 3, 16, 16}, rng));
  net->set_training(true);
  EXPECT_EQ(net->forward(x).value().shape(), (T::Shape{2, 10}));
}

TEST(DenseNetModel, GrowthRateGrowsChannels) {
  DenseNetOptions a;
  a.growth_rate = 2;
  DenseNetOptions b;
  b.growth_rate = 6;
  EXPECT_GT(make_densenet(b)->num_params(), make_densenet(a)->num_params());
}

TEST(DenseNetModel, BackwardRunsThroughConcatGraph) {
  DenseNetOptions opt;
  opt.layers_per_block = 2;
  opt.num_blocks = 2;
  auto net = make_densenet(opt);
  rng::Xorshift128 rng(3);
  ag::Variable x(random_tensor({1, 3, 8, 8}, rng));
  auto loss = ag::sum(net->forward(x));
  ag::backward(loss);
  for (auto* p : net->parameters()) {
    EXPECT_TRUE(p->var.has_grad()) << p->name;
  }
}

TEST(WrnModel, RejectsInvalidDepth) {
  WideResNetOptions opt;
  opt.depth = 11;  // not 6n+4
  EXPECT_THROW(WideResNet net(opt), std::invalid_argument);
}

TEST(WrnModel, ForwardShapeAndDownsampling) {
  WideResNetOptions opt;  // WRN-10-2 tiny
  auto net = make_wrn(opt);
  rng::Xorshift128 rng(4);
  ag::Variable x(random_tensor({2, 3, 16, 16}, rng));
  net->set_training(true);
  EXPECT_EQ(net->forward(x).value().shape(), (T::Shape{2, 10}));
}

TEST(WrnModel, WidthMultiplierScalesParams) {
  WideResNetOptions w1;
  w1.width = 1;
  WideResNetOptions w2;
  w2.width = 2;
  const auto n1 = make_wrn(w1)->num_params();
  const auto n2 = make_wrn(w2)->num_params();
  EXPECT_GT(n2, 3 * n1);  // params scale ~quadratically with width
}

TEST(WrnModel, BackwardReachesAllParams) {
  WideResNetOptions opt;
  auto net = make_wrn(opt);
  rng::Xorshift128 rng(5);
  ag::Variable x(random_tensor({1, 3, 8, 8}, rng));
  auto loss = ag::sum(net->forward(x));
  ag::backward(loss);
  for (auto* p : net->parameters()) {
    EXPECT_TRUE(p->var.has_grad()) << p->name;
  }
}

TEST(AllModels, EveryParameterIsPrunableByDefault) {
  // The paper prunes everything, including BN and biases — so models must
  // not mark anything non-prunable.
  DenseNetOptions dn;
  WideResNetOptions wrn;
  VggSOptions vgg;
  vgg.width_mult = 0.05F;
  for (auto* p : make_densenet(dn)->parameters()) EXPECT_TRUE(p->prunable);
  for (auto* p : make_wrn(wrn)->parameters()) EXPECT_TRUE(p->prunable);
  for (auto* p : make_vgg_s(vgg)->parameters()) EXPECT_TRUE(p->prunable);
  for (auto* p : make_lenet_300_100(1)->parameters()) EXPECT_TRUE(p->prunable);
}

/// Hidden-layer sweep for the generic Mlp builder.
class MlpSweep : public ::testing::TestWithParam<std::vector<std::int64_t>> {};

TEST_P(MlpSweep, ParamCountMatchesFormula) {
  const auto hidden = GetParam();
  Mlp model(20, hidden, 5, 1);
  std::int64_t expected = 0;
  std::int64_t in = 20;
  for (std::int64_t h : hidden) {
    expected += in * h + h;
    in = h;
  }
  expected += in * 5 + 5;
  EXPECT_EQ(model.num_params(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Hiddens, MlpSweep,
    ::testing::Values(std::vector<std::int64_t>{},
                      std::vector<std::int64_t>{8},
                      std::vector<std::int64_t>{16, 8},
                      std::vector<std::int64_t>{32, 16, 8}));

}  // namespace
}  // namespace dropback::nn::models
