// Read-path fault injection and the serve cache's degradation ladder
// (docs/SERVING.md, docs/ROBUSTNESS.md):
//   * FaultyStreambuf read side — short read, mid-read IoError, stall;
//   * util::read_file honoring armed read faults (rshort/rerr/stall) and
//     the write/read direction filter of the one-shot registry;
//   * StoreCache under corruption: mid-file truncation and byte-flip both
//     surface as CRC/parse failures -> quarantine + fallback, never a
//     crash or a raw exception out of get();
//   * transient-vs-permanent: transient read errors are retried with
//     backoff, permanent ones quarantine (negative caching), quarantine
//     expires on the injected clock.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cerrno>
#include <functional>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "nn/models/lenet.hpp"
#include "obs/metrics.hpp"
#include "rng/xorshift.hpp"
#include "serve/store_cache.hpp"
#include "util/atomic_file.hpp"
#include "util/fault_injection.hpp"
#include "util/io_error.hpp"
#include "util/steady_clock.hpp"

namespace dropback::serve {
namespace {

core::SparseWeightStore small_store(std::uint64_t seed) {
  nn::models::Mlp model(12, {8}, 4, seed);
  auto params = model.collect_parameters();
  rng::Xorshift128 rng(seed ^ 0xFA17ULL);
  for (nn::Parameter* p : params) {
    tensor::Tensor& v = p->var.value();
    for (int k = 0; k < 5 && k < v.numel(); ++k) {
      v[rng.next_u64() % static_cast<std::uint64_t>(v.numel())] +=
          rng.uniform(0.2F, 0.9F);
    }
  }
  return core::SparseWeightStore::from_params(params);
}

std::string fault_dir() {
  const std::string dir = ::testing::TempDir() + "serve_faults";
  EXPECT_TRUE(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST);
  return dir;
}

std::string variant_path(const std::string& dir, const std::string& id) {
  return dir + "/" + id + ".dbsw";
}

void write_variant(const std::string& dir, const std::string& id,
                   std::uint64_t seed) {
  small_store(seed).save_file(variant_path(dir, id));
}

/// Rewrites the variant file with `mutate` applied to its bytes — the
/// sanctioned way (atomic_write_file) to author a corrupt fixture.
void corrupt_variant(const std::string& dir, const std::string& id,
                     const std::function<void(std::string&)>& mutate) {
  std::string bytes = util::read_file(variant_path(dir, id));
  mutate(bytes);
  util::atomic_write_file(variant_path(dir, id),
                          [&](std::ostream& out) { out << bytes; });
}

CacheConfig fault_cache_config(const std::string& dir) {
  CacheConfig config;
  config.dir = dir;
  config.max_load_attempts = 3;
  config.retry_backoff_us = 100;
  config.quarantine_us = 50'000;
  return config;
}

// --------------------------------------------------------------------------
// FaultyStreambuf: read side
// --------------------------------------------------------------------------

TEST(FaultyStreambufRead, ShortReadStopsAtOffset) {
  std::istringstream src("0123456789");
  util::FaultyStreambuf faulty(src.rdbuf(),
                               {util::FaultKind::kShortRead, 4});
  std::istream in(&faulty);
  std::string got(16, '\0');
  in.read(got.data(), 16);
  EXPECT_EQ(in.gcount(), 4);
  EXPECT_TRUE(in.eof());
  EXPECT_EQ(got.substr(0, 4), "0123");
  EXPECT_EQ(faulty.bytes_read(), 4);
}

TEST(FaultyStreambufRead, ShortReadAlsoGatesCharwiseReads) {
  std::istringstream src("abcdef");
  util::FaultyStreambuf faulty(src.rdbuf(),
                               {util::FaultKind::kShortRead, 2});
  std::istream in(&faulty);
  EXPECT_EQ(in.get(), 'a');
  EXPECT_EQ(in.get(), 'b');
  EXPECT_EQ(in.get(), std::istream::traits_type::eof());
}

TEST(FaultyStreambufRead, ReadErrorThrowsAtOffset) {
  std::istringstream src("0123456789");
  util::FaultyStreambuf faulty(src.rdbuf(),
                               {util::FaultKind::kReadError, 3});
  std::istream in(&faulty);
  // istream catches streambuf exceptions and sets badbit; badbit in the
  // exception mask makes it rethrow the original IoError (read_file reads
  // through the streambuf directly, so it sees the throw without this).
  in.exceptions(std::ios::badbit);
  std::string got(3, '\0');
  in.read(got.data(), 3);  // the first 3 bytes arrive intact
  EXPECT_EQ(got, "012");
  EXPECT_THROW(in.get(), util::IoError);
}

TEST(FaultyStreambufRead, StallDeliversIntactBytes) {
  std::istringstream src("0123456789");
  // at_byte is a *millisecond* delay for kStall; 1ms keeps the test fast.
  util::FaultyStreambuf faulty(src.rdbuf(), {util::FaultKind::kStall, 1});
  std::istream in(&faulty);
  std::string got(10, '\0');
  in.read(got.data(), 10);
  EXPECT_EQ(in.gcount(), 10);
  EXPECT_EQ(got, "0123456789");  // late, never wrong
}

TEST(FaultyStreambufRead, WriteFaultsDoNotAffectReads) {
  std::istringstream src("0123456789");
  util::FaultyStreambuf faulty(src.rdbuf(),
                               {util::FaultKind::kShortWrite, 2});
  std::istream in(&faulty);
  std::string got(10, '\0');
  in.read(got.data(), 10);
  EXPECT_EQ(in.gcount(), 10);
}

// --------------------------------------------------------------------------
// util::read_file: armed read faults, direction filter
// --------------------------------------------------------------------------

class ReadFileFault : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "read_fault_fixture.bin";
    util::atomic_write_file(path_,
                            [](std::ostream& out) { out << "0123456789"; });
  }
  void TearDown() override { util::disarm_fault(); }

  std::string path_;
};

TEST_F(ReadFileFault, ShortReadTruncatesOnce) {
  util::arm_fault({util::FaultKind::kShortRead, 4});
  EXPECT_EQ(util::read_file(path_), "0123");
  EXPECT_EQ(util::read_file(path_), "0123456789");  // one-shot
}

TEST_F(ReadFileFault, ReadErrorThrowsTypedOnce) {
  util::arm_fault({util::FaultKind::kReadError, 0});
  EXPECT_THROW(util::read_file(path_), util::IoError);
  EXPECT_EQ(util::read_file(path_), "0123456789");
}

TEST_F(ReadFileFault, StallReturnsIntactBytes) {
  util::arm_fault({util::FaultKind::kStall, 1});
  EXPECT_EQ(util::read_file(path_), "0123456789");
}

TEST_F(ReadFileFault, ReadFaultSurvivesInterveningWrites) {
  // DROPBACK_FAULT=rshort:N must fire on the next *read*, even when the
  // process checkpoints (writes) in between — direction-filtered one-shot.
  util::arm_fault({util::FaultKind::kShortRead, 2});
  util::atomic_write_file(path_, [](std::ostream& out) { out << "abcdef"; });
  EXPECT_EQ(util::read_file(path_), "ab");
}

TEST_F(ReadFileFault, WriteFaultNotConsumedByReads) {
  util::arm_fault({util::FaultKind::kFlipByte, 1});
  EXPECT_EQ(util::read_file(path_), "0123456789");  // read side unaffected
  util::atomic_write_file(path_, [](std::ostream& out) { out << "xyz"; });
  EXPECT_EQ(util::read_file(path_), std::string("x") + static_cast<char>(
                                        'y' ^ 0xFF) + "z");
}

TEST(FaultSpecParse, ReadKindsRoundTrip) {
  EXPECT_EQ(util::parse_fault_spec("rshort:64").kind,
            util::FaultKind::kShortRead);
  EXPECT_EQ(util::parse_fault_spec("rerr:0").kind,
            util::FaultKind::kReadError);
  const auto stall = util::parse_fault_spec("stall:25");
  EXPECT_EQ(stall.kind, util::FaultKind::kStall);
  EXPECT_EQ(stall.at_byte, 25);
  EXPECT_TRUE(util::is_read_fault(util::FaultKind::kStall));
  EXPECT_FALSE(util::is_read_fault(util::FaultKind::kFlipByte));
}

// --------------------------------------------------------------------------
// StoreCache: corruption -> quarantine -> fallback
// --------------------------------------------------------------------------

TEST(ServeCacheFault, TruncatedFileQuarantinesAndFallsBack) {
  obs::MetricsRegistry::global().reset();
  const std::string dir = fault_dir();
  write_variant(dir, "trunc", 21);
  write_variant(dir, "fallback", 42);
  corrupt_variant(dir, "trunc",
                  [](std::string& b) { b.resize(b.size() / 2); });

  util::ManualClock clock;
  CacheConfig config = fault_cache_config(dir);
  config.fallback_model = "fallback";
  StoreCache cache(config, &clock);

  const CacheResult r = cache.get("trunc");
  ASSERT_NE(r.variant, nullptr);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.variant->model_id, "fallback");
  EXPECT_NE(r.error.find("trunc"), std::string::npos);
  EXPECT_TRUE(cache.is_quarantined("trunc"));
  EXPECT_GE(obs::MetricsRegistry::global()
                .counter("serve.cache.quarantine")
                .value(),
            1U);
}

TEST(ServeCacheFault, ByteFlipQuarantinesViaCrc) {
  obs::MetricsRegistry::global().reset();
  const std::string dir = fault_dir();
  write_variant(dir, "flip", 22);
  corrupt_variant(dir, "flip", [](std::string& b) {
    b[b.size() / 2] = static_cast<char>(b[b.size() / 2] ^ 0xFF);
  });

  util::ManualClock clock;
  StoreCache cache(fault_cache_config(dir), &clock);  // no fallback
  const CacheResult r = cache.get("flip");
  EXPECT_EQ(r.variant, nullptr);  // typed unavailability, not a throw
  EXPECT_NE(r.error.find("flip"), std::string::npos);
  EXPECT_TRUE(cache.is_quarantined("flip"));

  // While quarantined, the disk is NOT re-read: the miss counter is frozen.
  const auto misses =
      obs::MetricsRegistry::global().counter("serve.cache.miss").value();
  EXPECT_EQ(cache.get("flip").variant, nullptr);
  EXPECT_EQ(obs::MetricsRegistry::global().counter("serve.cache.miss").value(),
            misses);
}

TEST(ServeCacheFault, QuarantineExpiresAndRepairedFileLoads) {
  obs::MetricsRegistry::global().reset();
  const std::string dir = fault_dir();
  write_variant(dir, "heal", 23);
  corrupt_variant(dir, "heal", [](std::string& b) { b.resize(8); });

  util::ManualClock clock;
  CacheConfig config = fault_cache_config(dir);
  StoreCache cache(config, &clock);
  EXPECT_EQ(cache.get("heal").variant, nullptr);
  EXPECT_TRUE(cache.is_quarantined("heal"));

  write_variant(dir, "heal", 23);  // operator replaces the bad file
  EXPECT_EQ(cache.get("heal").variant, nullptr);  // still cooling down
  clock.advance_us(config.quarantine_us + 1);
  EXPECT_FALSE(cache.is_quarantined("heal"));
  EXPECT_NE(cache.get("heal").variant, nullptr);  // reloaded after expiry
}

TEST(ServeCacheFault, TransientReadErrorIsRetriedNotQuarantined) {
  obs::MetricsRegistry::global().reset();
  const std::string dir = fault_dir();
  write_variant(dir, "transient", 24);

  util::ManualClock clock;
  StoreCache cache(fault_cache_config(dir), &clock);
  // One-shot injected EIO: attempt 1 fails, attempt 2 reads clean bytes.
  util::arm_fault({util::FaultKind::kReadError, 0});
  const CacheResult r = cache.get("transient");
  ASSERT_NE(r.variant, nullptr);
  EXPECT_FALSE(r.degraded);
  EXPECT_FALSE(cache.is_quarantined("transient"));
  EXPECT_GE(
      obs::MetricsRegistry::global().counter("serve.cache.retry").value(),
      1U);
}

TEST(ServeCacheFault, InjectedShortReadParsesAsCorruptAndQuarantines) {
  obs::MetricsRegistry::global().reset();
  const std::string dir = fault_dir();
  write_variant(dir, "shortread", 25);

  util::ManualClock clock;
  CacheConfig config = fault_cache_config(dir);
  config.fallback_model = "shortread";  // fallback == primary: no ladder loop
  StoreCache cache(config, &clock);
  // The bytes arrive truncated ONCE; the parse (not the read) fails, which
  // must quarantine immediately — corrupt bytes are not retried.
  util::arm_fault({util::FaultKind::kShortRead, 16});
  const CacheResult r = cache.get("shortread");
  EXPECT_EQ(r.variant, nullptr);
  EXPECT_TRUE(cache.is_quarantined("shortread"));
  EXPECT_EQ(
      obs::MetricsRegistry::global().counter("serve.cache.retry").value(),
      0U);
  util::disarm_fault();
}

TEST(ServeCacheFault, PersistentFailureExhaustsRetriesThenQuarantines) {
  obs::MetricsRegistry::global().reset();
  const std::string dir = fault_dir();
  write_variant(dir, "dead", 26);

  util::ManualClock clock;
  CacheConfig config = fault_cache_config(dir);
  StoreCache cache(config, &clock);
  int calls = 0;
  cache.set_load_hook([&calls](const std::string&) {
    ++calls;
    throw util::IoError("injected persistent EIO");
  });
  const std::int64_t before = clock.now_us();
  const CacheResult r = cache.get("dead");
  EXPECT_EQ(r.variant, nullptr);
  EXPECT_EQ(calls, config.max_load_attempts);
  EXPECT_TRUE(cache.is_quarantined("dead"));
  // Doubling backoff ran on the injected clock: 100 + 200 virtual us.
  EXPECT_EQ(clock.now_us() - before, 300);
  EXPECT_EQ(
      obs::MetricsRegistry::global().counter("serve.cache.retry").value(),
      2U);
}

TEST(ServeCacheFault, HookRecoveryBeforeExhaustionLoadsCleanly) {
  obs::MetricsRegistry::global().reset();
  const std::string dir = fault_dir();
  write_variant(dir, "flaky", 27);

  util::ManualClock clock;
  StoreCache cache(fault_cache_config(dir), &clock);
  int calls = 0;
  cache.set_load_hook([&calls](const std::string&) {
    if (++calls < 3) throw util::IoError("injected flaky EIO");
  });
  const CacheResult r = cache.get("flaky");
  ASSERT_NE(r.variant, nullptr);
  EXPECT_EQ(calls, 3);
  EXPECT_FALSE(cache.is_quarantined("flaky"));
}

}  // namespace
}  // namespace dropback::serve
