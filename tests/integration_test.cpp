// End-to-end integration tests: tiny trainings that exercise the library the
// way the paper's experiments do, asserting the qualitative results the
// paper reports (scaled down to seconds of CPU time).
#include <gtest/gtest.h>

#include "baselines/magnitude_pruner.hpp"
#include "core/dropback_optimizer.hpp"
#include "core/sparse_weight_store.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/models/lenet.hpp"
#include "train/trainer.hpp"

namespace dropback {
namespace {

struct Task {
  std::unique_ptr<data::InMemoryDataset> train_set;
  std::unique_ptr<data::InMemoryDataset> val_set;
};

Task make_task(std::int64_t n_train = 400, std::int64_t n_val = 200) {
  data::SyntheticMnistOptions opt;
  opt.num_samples = n_train;
  opt.seed = 10;
  Task task;
  task.train_set = data::make_synthetic_mnist(opt);
  opt.num_samples = n_val;
  opt.seed = 20;
  task.val_set = data::make_synthetic_mnist(opt);
  return task;
}

double train_dropback(Task& task, std::int64_t budget,
                      std::int64_t freeze_steps, bool regenerate,
                      core::DropBackOptimizer** out_opt = nullptr,
                      nn::models::Mlp** out_model = nullptr) {
  static std::vector<std::unique_ptr<nn::models::Mlp>> model_keeper;
  static std::vector<std::unique_ptr<core::DropBackOptimizer>> opt_keeper;
  model_keeper.push_back(nn::models::make_mnist_100_100(7));
  auto& model = *model_keeper.back();
  core::DropBackConfig config;
  config.budget = budget;
  config.freeze_after_steps = freeze_steps;
  config.regenerate_untracked = regenerate;
  opt_keeper.push_back(std::make_unique<core::DropBackOptimizer>(
      model.collect_parameters(), 0.1F, config));
  auto& opt = *opt_keeper.back();
  train::TrainConfig options;
  options.epochs = 12;
  options.batch_size = 32;
  train::Trainer trainer(model, opt, *task.train_set, *task.val_set, options);
  const auto result = trainer.run();
  if (out_opt) *out_opt = &opt;
  if (out_model) *out_model = &model;
  return result.best_val_acc;
}

TEST(Integration, DropBackTrainsToUsefulAccuracyAtMildBudget) {
  Task task = make_task();
  // 20k of 89.6k weights (4.5x compression, the paper's "DropBack 20k").
  const double acc = train_dropback(task, 20000, -1, true);
  EXPECT_GT(acc, 0.65) << "DropBack 20k failed to learn the task";
}

TEST(Integration, MildBudgetMatchesBaselineClosely) {
  Task task = make_task();
  auto baseline_model = nn::models::make_mnist_100_100(7);
  optim::SGD sgd(baseline_model->collect_parameters(), 0.1F);
  train::TrainConfig options;
  options.epochs = 12;
  options.batch_size = 32;
  train::Trainer baseline_trainer(*baseline_model, sgd, *task.train_set,
                                  *task.val_set, options);
  const double baseline_acc = baseline_trainer.run().best_val_acc;
  const double dropback_acc = train_dropback(task, 50000, -1, true);
  // Table 1's core claim: DropBack at ~2x compression tracks the baseline.
  EXPECT_GT(dropback_acc, baseline_acc - 0.05);
}

TEST(Integration, RegenerationBeatsZeroingAtTightBudget) {
  // The paper's key ablation (§2.1): untracked weights must be regenerated
  // to their init values; zeroing them destroys the scaffolding.
  Task task = make_task();
  const double regen_acc = train_dropback(task, 3000, -1, true);
  const double zero_acc = train_dropback(task, 3000, -1, false);
  EXPECT_GT(regen_acc, zero_acc + 0.03)
      << "regeneration should outperform zeroing at 30x compression";
}

TEST(Integration, ExtremeBudgetStillLearnsSomething) {
  // "DropBack 1.5k" on the 90k MLP: error rises but training still works.
  Task task = make_task();
  const double acc = train_dropback(task, 1500, -1, true);
  EXPECT_GT(acc, 0.3);
}

TEST(Integration, FreezingPreservesAccuracyAtMildCompression) {
  // Paper: "for smaller compression ratios freezing early has little effect".
  Task task = make_task();
  const double no_freeze = train_dropback(task, 30000, -1, true);
  const double early_freeze = train_dropback(task, 30000, 20, true);
  EXPECT_GT(early_freeze, no_freeze - 0.08);
}

TEST(Integration, SparseStoreDeploymentPreservesAccuracy) {
  // Train with DropBack, export the compressed store, load into a fresh
  // model, and verify identical validation accuracy — the embedded
  // deployment path.
  Task task = make_task();
  core::DropBackOptimizer* opt = nullptr;
  nn::models::Mlp* model = nullptr;
  train_dropback(task, 20000, -1, true, &opt, &model);
  // The store snapshots the *final* weights, so compare against the final
  // state's accuracy (best-epoch accuracy may be higher).
  const double trained_acc =
      train::Trainer::evaluate(*model, *task.val_set, 64);
  auto store = core::SparseWeightStore::from_optimizer(*opt);
  EXPECT_EQ(store.live_weights(), 20000);
  EXPECT_NEAR(store.compression_ratio(), 89610.0 / 20000.0, 1e-6);

  auto fresh = nn::models::make_mnist_100_100(12345);  // different init
  store.apply_to(fresh->collect_parameters());
  const double restored_acc =
      train::Trainer::evaluate(*fresh, *task.val_set, 64);
  EXPECT_NEAR(restored_acc, trained_acc, 1e-9);
}

TEST(Integration, DropBackBeatsMagnitudePruningAtEqualBudget) {
  // Figure 5 / Table 3 shape: at the same live-weight budget, keeping
  // untracked weights at their init values trains better than keeping the
  // largest weights and zeroing the rest.
  Task task = make_task();
  const std::int64_t budget = 5000;
  const double dropback_acc = train_dropback(task, budget, -1, true);

  auto mag_model = nn::models::make_mnist_100_100(7);
  const double fraction = 1.0 - static_cast<double>(budget) / 89610.0;
  baselines::MagnitudePruningOptimizer mag(
      mag_model->collect_parameters(), 0.1F, static_cast<float>(fraction));
  train::TrainConfig options;
  options.epochs = 12;
  options.batch_size = 32;
  train::Trainer trainer(*mag_model, mag, *task.train_set, *task.val_set,
                         options);
  const double mag_acc = trainer.run().best_val_acc;
  EXPECT_GT(dropback_acc, mag_acc - 0.02)
      << "DropBack should not lose to magnitude pruning at equal budget";
}

TEST(Integration, CompressionRatiosMatchTable1Arithmetic) {
  // DropBack 20k on MNIST-100-100 is "4.5x"; 1.5k is "60x" (Table 1).
  EXPECT_NEAR(89610.0 / 20000.0, 4.5, 0.05);
  EXPECT_NEAR(89610.0 / 1500.0, 59.7, 0.5);
  // LeNet-300-100: 50k -> 5.33x, 20k -> 13.33x, 1.5k -> 177.7x.
  EXPECT_NEAR(266610.0 / 50000.0, 5.33, 0.01);
  EXPECT_NEAR(266610.0 / 20000.0, 13.33, 0.01);
  EXPECT_NEAR(266610.0 / 1500.0, 177.74, 0.1);
}

}  // namespace
}  // namespace dropback
