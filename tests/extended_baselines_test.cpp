// Tests for the extended baseline set: DSD (Han et al. 2017), gradual
// magnitude pruning (Zhu & Gupta 2017), per-layer budget scope, and the
// accelerator memory-hierarchy model.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.hpp"
#include "baselines/dsd.hpp"
#include "baselines/gradual_pruner.hpp"
#include "core/dropback_optimizer.hpp"
#include "energy/memory_hierarchy.hpp"
#include "nn/linear.hpp"
#include "nn/models/lenet.hpp"
#include "nn/sequential.hpp"
#include "optim/sgd.hpp"
#include "rng/xorshift.hpp"

namespace dropback {
namespace {

namespace T = dropback::tensor;
namespace ag = dropback::autograd;

std::unique_ptr<nn::Sequential> tiny_net(std::uint64_t seed = 1) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Linear>(4, 6, seed);
  net->emplace<nn::Linear>(6, 3, seed + 1);
  return net;
}

void make_gradients(nn::Module& net, std::uint64_t seed) {
  rng::Xorshift128 rng(seed);
  T::Tensor x({2, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-1, 1);
  ag::Variable input(x);
  ag::backward(ag::sum(ag::mul(net.forward(input), net.forward(input))));
}

std::int64_t count_zeros(nn::Module& net) {
  std::int64_t zeros = 0;
  for (auto* p : net.parameters()) {
    for (std::int64_t i = 0; i < p->numel(); ++i) {
      if (p->var.value()[i] == 0.0F) ++zeros;
    }
  }
  return zeros;
}

// --- DSD ---------------------------------------------------------------------

TEST(Dsd, PhaseTransitionsFollowConfig) {
  auto net = tiny_net();
  baselines::DsdConfig config;
  config.sparse_fraction = 0.5F;
  config.sparse_begin_step = 3;
  config.sparse_end_step = 6;
  baselines::DsdSchedule dsd(net->collect_parameters(), config);
  EXPECT_EQ(dsd.phase(), baselines::DsdSchedule::Phase::kDenseInitial);
  dsd.on_step(1);
  EXPECT_EQ(dsd.phase(), baselines::DsdSchedule::Phase::kDenseInitial);
  dsd.on_step(3);
  EXPECT_EQ(dsd.phase(), baselines::DsdSchedule::Phase::kSparse);
  EXPECT_GT(dsd.masked_weights(), 0);
  dsd.on_step(6);
  EXPECT_EQ(dsd.phase(), baselines::DsdSchedule::Phase::kDenseFinal);
  EXPECT_EQ(dsd.masked_weights(), 0);
}

TEST(Dsd, SparsePhaseZeroesLowestMagnitudes) {
  auto net = tiny_net();
  baselines::DsdConfig config;
  config.sparse_fraction = 0.5F;
  config.sparse_begin_step = 1;
  config.sparse_end_step = 100;
  baselines::DsdSchedule dsd(net->collect_parameters(), config);
  dsd.on_step(1);
  // About half the 51 weights are zeroed (keep = ceil(51 * 0.5)).
  const std::int64_t zeros = count_zeros(*net);
  EXPECT_GE(zeros, 24);
  EXPECT_LE(zeros, 27);
}

TEST(Dsd, MaskReappliedAfterUpdates) {
  auto net = tiny_net();
  baselines::DsdConfig config;
  config.sparse_fraction = 0.4F;
  config.sparse_begin_step = 1;
  config.sparse_end_step = 50;
  baselines::DsdSchedule dsd(net->collect_parameters(), config);
  optim::SGD sgd(net->collect_parameters(), 0.1F);
  dsd.on_step(1);
  const std::int64_t zeros_before = count_zeros(*net);
  // Gradient step perturbs everything; the schedule restores the mask.
  make_gradients(*net, 3);
  sgd.step();
  dsd.on_step(2);
  EXPECT_GE(count_zeros(*net), zeros_before);
}

TEST(Dsd, DenseFinalPhaseLetsWeightsRecover) {
  auto net = tiny_net();
  baselines::DsdConfig config;
  config.sparse_fraction = 0.5F;
  config.sparse_begin_step = 1;
  config.sparse_end_step = 2;
  baselines::DsdSchedule dsd(net->collect_parameters(), config);
  optim::SGD sgd(net->collect_parameters(), 0.1F);
  dsd.on_step(1);  // sparse
  dsd.on_step(2);  // dense final
  make_gradients(*net, 4);
  sgd.step();
  dsd.on_step(3);
  // Most previously-zeroed weights received gradient and are nonzero again.
  EXPECT_LT(count_zeros(*net), 10);
}

// --- gradual pruning --------------------------------------------------------

TEST(GradualPruning, SparsityRampIsCubic) {
  auto net = tiny_net();
  baselines::GradualPruningConfig config;
  config.final_sparsity = 0.8F;
  config.ramp_begin_step = 0;
  config.ramp_end_step = 100;
  baselines::GradualMagnitudePruningOptimizer opt(net->collect_parameters(),
                                                  0.1F, config);
  EXPECT_FLOAT_EQ(opt.sparsity_at(0), 0.0F);
  EXPECT_FLOAT_EQ(opt.sparsity_at(100), 0.8F);
  EXPECT_FLOAT_EQ(opt.sparsity_at(1000), 0.8F);
  // Half way: s = 0.8 * (1 - 0.5^3) = 0.7.
  EXPECT_NEAR(opt.sparsity_at(50), 0.7F, 1e-5F);
  // Monotone non-decreasing.
  float prev = 0.0F;
  for (int s = 0; s <= 100; s += 5) {
    const float now = opt.sparsity_at(s);
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(GradualPruning, SparsityGrowsDuringTraining) {
  auto net = tiny_net();
  baselines::GradualPruningConfig config;
  config.final_sparsity = 0.75F;
  config.ramp_begin_step = 0;
  config.ramp_end_step = 20;
  config.prune_every = 1;
  baselines::GradualMagnitudePruningOptimizer opt(net->collect_parameters(),
                                                  0.1F, config);
  std::int64_t live_early = 0, live_late = 0;
  for (int iter = 0; iter < 25; ++iter) {
    net->zero_grad();
    make_gradients(*net, 60 + iter);
    opt.step();
    if (iter == 2) live_early = opt.live_weights();
    if (iter == 24) live_late = opt.live_weights();
  }
  EXPECT_GT(live_early, live_late);
  // Final live fraction ~25%.
  EXPECT_NEAR(static_cast<double>(live_late), 51.0 * 0.25, 3.0);
  EXPECT_GT(opt.compression_ratio(), 3.0);
}

TEST(GradualPruning, RejectsBadConfig) {
  auto net = tiny_net();
  baselines::GradualPruningConfig config;
  config.final_sparsity = 1.0F;
  EXPECT_THROW(baselines::GradualMagnitudePruningOptimizer(
                   net->collect_parameters(), 0.1F, config),
               std::invalid_argument);
}

// --- per-layer budget scope ---------------------------------------------------

TEST(BudgetScope, PerLayerQuotasAreProportional) {
  auto model = nn::models::make_mnist_100_100(7);
  auto params = model->collect_parameters();
  core::DropBackConfig config;
  config.budget = 9000;
  config.scope = core::DropBackConfig::BudgetScope::kPerLayer;
  core::DropBackOptimizer opt(params, 0.1F, config);
  // One step with synthetic gradients.
  rng::Xorshift128 rng(3);
  for (auto* p : params) {
    float* g = p->var.grad().data();
    for (std::int64_t i = 0; i < p->numel(); ++i) g[i] = rng.uniform(-1, 1);
  }
  opt.step();
  // fc1 weight (78400 of 89610) must hold ~ 9000 * 78400/89610 = 7874.
  const auto& tracked = opt.tracked();
  EXPECT_NEAR(static_cast<double>(tracked.tracked_count_in(0)), 7874.0, 2.0);
  // fc3 weight (1000) gets its proportional ~100, NOT the larger share the
  // global competition gives it (Table 2's phenomenon).
  EXPECT_NEAR(static_cast<double>(tracked.tracked_count_in(4)), 100.0, 2.0);
}

TEST(BudgetScope, GlobalAndPerLayerDifferInAllocation) {
  auto run = [](core::DropBackConfig::BudgetScope scope) {
    auto model = nn::models::make_mnist_100_100(7);
    auto params = model->collect_parameters();
    core::DropBackConfig config;
    config.budget = 2000;
    config.scope = scope;
    core::DropBackOptimizer opt(params, 0.1F, config);
    for (int iter = 0; iter < 3; ++iter) {
      model->zero_grad();
      rng::Xorshift128 rng(10 + iter);
      T::Tensor x({4, 784});
      for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(0, 1);
      ag::Variable input(x);
      ag::backward(
          ag::softmax_cross_entropy(model->forward(input), {0, 1, 2, 3}));
      opt.step();
    }
    return opt.tracked().tracked_count_in(4);  // fc3 weights
  };
  const auto global_fc3 =
      run(core::DropBackConfig::BudgetScope::kGlobal);
  const auto per_layer_fc3 =
      run(core::DropBackConfig::BudgetScope::kPerLayer);
  // The global competition allocates far more of a tight budget to the
  // decision-critical last layer than the proportional quota (22 of 2000).
  EXPECT_GT(global_fc3, per_layer_fc3 * 3);
}

// --- memory hierarchy ----------------------------------------------------------

TEST(MemoryHierarchy, StateAccountingPerScheme) {
  using energy::TrainingScheme;
  EXPECT_EQ(energy::training_state_values(TrainingScheme::kDenseSgd, 1000, 0),
            1000);
  EXPECT_EQ(
      energy::training_state_values(TrainingScheme::kDenseMomentum, 1000, 0),
      2000);
  EXPECT_EQ(energy::training_state_values(TrainingScheme::kDenseAdam, 1000, 0),
            3000);
  EXPECT_EQ(energy::training_state_values(TrainingScheme::kMagnitudePruning,
                                          1000, 0),
            1000);
  EXPECT_EQ(
      energy::training_state_values(TrainingScheme::kDropBack, 1000, 100),
      200);
}

TEST(MemoryHierarchy, FitReportDetectsSpill) {
  energy::AcceleratorSpec accel;
  accel.sram_bytes = 4000;  // 1000 floats
  auto dense = energy::evaluate_fit(accel, energy::TrainingScheme::kDenseSgd,
                                    5000, 0);
  EXPECT_FALSE(dense.fits_on_chip);
  EXPECT_EQ(dense.spilled_values, 4000);
  auto dropback = energy::evaluate_fit(
      accel, energy::TrainingScheme::kDropBack, 5000, 400);
  EXPECT_TRUE(dropback.fits_on_chip);
  EXPECT_EQ(dropback.spilled_values, 0);
}

TEST(MemoryHierarchy, PaperSizeMultiplierClaim) {
  // §6: "train networks 5x-10x larger than currently possible". At the
  // paper's typical 5x-7x weight compression with 2 values per tracked
  // weight, the multiplier lands in the claimed band at ~10x-20x raw; the
  // conservative 2-value accounting gives 2.5x at 5x compression.
  energy::AcceleratorSpec accel;
  EXPECT_NEAR(energy::trainable_size_multiplier(accel, 5.0), 2.5, 1e-9);
  EXPECT_NEAR(energy::trainable_size_multiplier(accel, 10.0), 5.0, 1e-9);
  EXPECT_NEAR(energy::trainable_size_multiplier(accel, 20.0), 10.0, 1e-9);
}

TEST(MemoryHierarchy, MaxTrainableOrdersSchemes) {
  energy::AcceleratorSpec accel;
  const auto sgd = energy::evaluate_fit(
      accel, energy::TrainingScheme::kDenseSgd, 100000, 0);
  const auto adam = energy::evaluate_fit(
      accel, energy::TrainingScheme::kDenseAdam, 100000, 0);
  const auto dropback = energy::evaluate_fit(
      accel, energy::TrainingScheme::kDropBack, 100000, 10000);
  EXPECT_GT(sgd.max_trainable_weights, adam.max_trainable_weights);
  EXPECT_GT(dropback.max_trainable_weights, sgd.max_trainable_weights);
}

}  // namespace
}  // namespace dropback
