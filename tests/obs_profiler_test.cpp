// Scoped profiler tests (ISSUE 3): runtime on/off gating, nested scope
// trees, cross-thread merge semantics, child coverage, and the unified
// kernel-timing JSONL dump.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "obs/json.hpp"
#include "obs/profiler.hpp"

namespace {

using namespace dropback;

void spin_for_us(int us) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < until) {
  }
}

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::reset_profile();
    obs::set_profiling_enabled(true);
  }
  void TearDown() override {
    obs::set_profiling_enabled(false);
    obs::reset_profile();
  }
};

TEST_F(ProfilerTest, DisabledRecordsNothing) {
  obs::set_profiling_enabled(false);
  {
    DROPBACK_PROFILE_SCOPE("ghost");
    spin_for_us(10);
  }
  obs::record_timing("ghost_leaf", 1234);
  const obs::ProfileReport report = obs::collect_profile();
  EXPECT_EQ(report.find("ghost"), nullptr);
  EXPECT_EQ(report.find("ghost_leaf"), nullptr);
}

TEST_F(ProfilerTest, NestedScopesBuildPaths) {
  for (int i = 0; i < 3; ++i) {
    DROPBACK_PROFILE_SCOPE("outer");
    spin_for_us(50);
    {
      DROPBACK_PROFILE_SCOPE("inner");
      spin_for_us(20);
    }
    {
      // dbk-lint: allow(R6): duplicate on purpose — proves same-label merge
      DROPBACK_PROFILE_SCOPE("inner");  // same label merges, calls add up
      spin_for_us(20);
    }
  }
  const obs::ProfileReport report = obs::collect_profile();
  const obs::ProfileEntry* outer = report.find("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->calls, 3U);
  EXPECT_EQ(outer->depth, 0);
  const obs::ProfileEntry* inner = report.find("outer/inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->calls, 6U);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(inner->name, "inner");
  // A child's wall time is bounded by its parent's.
  EXPECT_LE(inner->total_ns, outer->total_ns);
  EXPECT_GT(inner->total_ns, 0U);
}

TEST_F(ProfilerTest, MergeAcrossThreadsCountsThreads) {
  auto work = [] {
    DROPBACK_PROFILE_SCOPE("worker");
    spin_for_us(30);
  };
  std::thread t1(work);
  std::thread t2(work);
  t1.join();
  t2.join();
  work();  // main thread too
  const obs::ProfileReport report = obs::collect_profile();
  const obs::ProfileEntry* entry = report.find("worker");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->calls, 3U);
  EXPECT_EQ(entry->threads, 3);
}

TEST_F(ProfilerTest, RecordTimingAddsLeafSample) {
  obs::record_timing("external", 5000);
  obs::record_timing("external", 7000);
  const obs::ProfileReport report = obs::collect_profile();
  const obs::ProfileEntry* entry = report.find("external");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->calls, 2U);
  EXPECT_EQ(entry->total_ns, 12000U);
}

TEST_F(ProfilerTest, ResetDropsData) {
  {
    DROPBACK_PROFILE_SCOPE("gone");
    spin_for_us(5);
  }
  ASSERT_NE(obs::collect_profile().find("gone"), nullptr);
  obs::reset_profile();
  EXPECT_EQ(obs::collect_profile().find("gone"), nullptr);
  // Recording keeps working after a reset.
  {
    DROPBACK_PROFILE_SCOPE("fresh");
    spin_for_us(5);
  }
  EXPECT_NE(obs::collect_profile().find("fresh"), nullptr);
}

TEST_F(ProfilerTest, ChildCoverageAttributesStepTime) {
  {
    DROPBACK_PROFILE_SCOPE("step");
    {
      DROPBACK_PROFILE_SCOPE("forward");
      spin_for_us(400);
    }
    {
      DROPBACK_PROFILE_SCOPE("backward");
      spin_for_us(400);
    }
    // A tiny unattributed remainder (loop overhead) is expected.
  }
  const obs::ProfileReport report = obs::collect_profile();
  const double coverage = report.child_coverage("step");
  EXPECT_GT(coverage, 0.9);
  EXPECT_LE(coverage, 1.0 + 1e-9);
  EXPECT_EQ(report.child_coverage("no_such_scope"), 0.0);
}

TEST_F(ProfilerTest, JsonlDumpUsesUnifiedKernelSchema) {
  {
    DROPBACK_PROFILE_SCOPE("step");
    DROPBACK_PROFILE_SCOPE("forward");
    spin_for_us(10);
  }
  const obs::ProfileReport report = obs::collect_profile();
  const std::string jsonl = report.to_jsonl();
  // One record per entry; each parses as the shared kernel-timing schema
  // {"name","calls","total_us","threads"} with the full path as name.
  std::size_t pos = 0;
  int records = 0;
  bool saw_nested = false;
  while (pos < jsonl.size()) {
    std::size_t end = jsonl.find('\n', pos);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    const auto rec = obs::parse_flat_object(line);
    ASSERT_EQ(rec.at("name").type, obs::JsonValue::Type::kString);
    ASSERT_EQ(rec.at("calls").type, obs::JsonValue::Type::kNumber);
    ASSERT_EQ(rec.at("total_us").type, obs::JsonValue::Type::kNumber);
    ASSERT_EQ(rec.at("threads").type, obs::JsonValue::Type::kNumber);
    if (rec.at("name").string == "step/forward") saw_nested = true;
    ++records;
  }
  EXPECT_GE(records, 2);
  EXPECT_TRUE(saw_nested);
}

TEST_F(ProfilerTest, PrettyTableListsScopes) {
  {
    DROPBACK_PROFILE_SCOPE("alpha");
    DROPBACK_PROFILE_SCOPE("beta");
    spin_for_us(10);
  }
  const std::string table = obs::collect_profile().pretty();
  EXPECT_NE(table.find("alpha"), std::string::npos) << table;
  EXPECT_NE(table.find("beta"), std::string::npos) << table;
  EXPECT_NE(table.find("scope"), std::string::npos) << table;
}

TEST_F(ProfilerTest, ToggleMidRunKeepsEarlierData) {
  {
    DROPBACK_PROFILE_SCOPE("kept");
    spin_for_us(5);
  }
  obs::set_profiling_enabled(false);
  {
    DROPBACK_PROFILE_SCOPE("dropped");
    spin_for_us(5);
  }
  obs::set_profiling_enabled(true);
  const obs::ProfileReport report = obs::collect_profile();
  EXPECT_NE(report.find("kept"), nullptr);
  EXPECT_EQ(report.find("dropped"), nullptr);
}

}  // namespace
