// Tests for the paper's uniqueness claim (§2.1): because constant-initialized
// parameters regenerate trivially, DropBack can prune layers like
// BatchNorm and Parametric ReLU "which cannot be pruned using existing
// approaches" — they participate in the same global budget as weights.
#include <gtest/gtest.h>

#include "autograd/ops.hpp"
#include "core/dropback_optimizer.hpp"
#include "core/sparse_weight_store.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "rng/xorshift.hpp"

namespace dropback {
namespace {

namespace T = dropback::tensor;
namespace ag = dropback::autograd;

/// Linear -> BN1d -> PReLU -> Linear: every parameter kind the paper names.
std::unique_ptr<nn::Sequential> bn_prelu_net(std::uint64_t seed = 1) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Linear>(6, 8, seed);
  net->emplace<nn::BatchNorm1d>(8);
  net->emplace<nn::PReLU>(0.25F);
  net->emplace<nn::Linear>(8, 3, seed + 1);
  return net;
}

void make_gradients(nn::Module& net, std::uint64_t seed) {
  rng::Xorshift128 rng(seed);
  T::Tensor x({4, 6});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-1, 1);
  ag::Variable input(x);
  ag::backward(ag::sum(ag::mul(net.forward(input), net.forward(input))));
}

TEST(PrunableLayers, BnAndPreluParamsCompeteInTheGlobalBudget) {
  auto net = bn_prelu_net();
  auto params = net->collect_parameters();
  // The parameter list includes gamma/beta (BN) and slope (PReLU), all
  // prunable with constant InitSpecs.
  int constant_params = 0;
  for (auto* p : params) {
    if (p->init.kind() == rng::InitSpec::Kind::kConstant) {
      EXPECT_TRUE(p->prunable) << p->name;
      ++constant_params;
    }
  }
  EXPECT_GE(constant_params, 5);  // 2 biases + gamma + beta + slope

  core::DropBackConfig config;
  config.budget = 10;
  core::DropBackOptimizer opt(params, 0.1F, config);
  for (int iter = 0; iter < 4; ++iter) {
    net->zero_grad();
    make_gradients(*net, 30 + iter);
    opt.step();
  }
  EXPECT_EQ(opt.live_weights(), 10);
}

TEST(PrunableLayers, UntrackedBnGammaRegeneratesToOne) {
  auto net = bn_prelu_net();
  auto params = net->collect_parameters();
  core::DropBackConfig config;
  config.budget = 10;
  core::DropBackOptimizer opt(params, 0.1F, config);
  for (int iter = 0; iter < 4; ++iter) {
    net->zero_grad();
    make_gradients(*net, 40 + iter);
    opt.step();
  }
  // Find the BN gamma parameter; untracked entries must be exactly 1.0
  // (the regenerated constant), never 0 — that is what lets DropBack prune
  // BN without killing its channels.
  const auto& index = opt.param_index();
  for (std::size_t p = 0; p < index.num_params(); ++p) {
    nn::Parameter& param = index.param(p);
    if (param.name != "gamma") continue;
    const std::uint8_t* mask = opt.tracked().mask_of(p);
    for (std::int64_t i = 0; i < param.numel(); ++i) {
      if (!mask[static_cast<std::size_t>(i)]) {
        EXPECT_FLOAT_EQ(param.var.value()[i], 1.0F);
      }
    }
  }
}

TEST(PrunableLayers, NetworkWithBnPreluTrainsUnderTightBudget) {
  // End-to-end: a net containing BN and PReLU must still fit a synthetic
  // separable task with most parameters forgotten.
  auto net = bn_prelu_net(9);
  auto params = net->collect_parameters();
  const std::int64_t total = net->num_params();
  core::DropBackConfig config;
  config.budget = total / 4;
  core::DropBackOptimizer opt(params, 0.05F, config);
  // Class = mean level of the inputs; average early vs late loss windows
  // (single-batch losses are too noisy for a point comparison).
  rng::Xorshift128 rng(5);
  double early_loss = 0.0, late_loss = 0.0;
  const int iters = 150;
  for (int iter = 0; iter < iters; ++iter) {
    T::Tensor x({8, 6});
    std::vector<std::int64_t> labels;
    for (std::int64_t b = 0; b < 8; ++b) {
      const std::int64_t cls = rng.uniform_int(3);
      labels.push_back(cls);
      for (std::int64_t f = 0; f < 6; ++f) {
        x.at({b, f}) = rng.normal(static_cast<float>(cls) - 1.0F, 0.3F);
      }
    }
    net->zero_grad();
    ag::Variable input(x);
    ag::Variable loss =
        ag::softmax_cross_entropy(net->forward(input), labels);
    if (iter < 20) early_loss += loss.value()[0];
    if (iter >= iters - 20) late_loss += loss.value()[0];
    ag::backward(loss);
    opt.step();
  }
  EXPECT_LT(late_loss, early_loss * 0.6)
      << "BN+PReLU net failed to train under DropBack";
}

TEST(PrunableLayers, SparseStoreRoundTripsConstantInitLayers) {
  auto net = bn_prelu_net();
  auto params = net->collect_parameters();
  core::DropBackConfig config;
  config.budget = 12;
  core::DropBackOptimizer opt(params, 0.1F, config);
  for (int iter = 0; iter < 3; ++iter) {
    net->zero_grad();
    make_gradients(*net, 50 + iter);
    opt.step();
  }
  auto store = core::SparseWeightStore::from_optimizer(opt);
  auto fresh = bn_prelu_net(777);
  store.apply_to(fresh->collect_parameters());
  auto fp = fresh->collect_parameters();
  for (std::size_t p = 0; p < params.size(); ++p) {
    for (std::int64_t i = 0; i < params[p]->numel(); ++i) {
      ASSERT_EQ(fp[p]->var.value()[i], params[p]->var.value()[i])
          << params[p]->name;
    }
  }
}

}  // namespace
}  // namespace dropback
