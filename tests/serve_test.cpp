// Inference-server robustness suite (docs/SERVING.md):
//   * admission control — typed rejection reasons at queue/in-flight limits;
//   * deadline shedding — queue/batch/exec stages shed expired requests
//     (proved with a ManualClock, no real sleeping);
//   * micro-batching — same-model batch formation, and the acceptance
//     criterion that served outputs are bitwise identical to the embedded
//     RegenMlp forward (examples/embedded_inference.cpp path) at 1 and N
//     server threads;
//   * LRU variant cache — hit/miss/evict behaviour and counters;
//   * shutdown — every admitted request resolves, accounting identities
//     hold.
// Concurrent submitters go through util::ThreadPool (docs/PARALLELISM.md);
// this suite never spawns raw threads.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "nn/models/lenet.hpp"
#include "obs/metrics.hpp"
#include "rng/xorshift.hpp"
#include "serve/batcher.hpp"
#include "serve/queue.hpp"
#include "serve/store_cache.hpp"
#include "util/steady_clock.hpp"
#include "util/thread_pool.hpp"

namespace dropback::serve {
namespace {

namespace T = dropback::tensor;

T::Tensor random_input(std::uint64_t seed) {
  rng::Xorshift128 rng(seed);
  T::Tensor t({1, 12});
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(-1, 1);
  return t;
}

/// A small MLP store with nontrivial tracked entries: perturb a few weights
/// away from their init so from_params records them (no training needed).
core::SparseWeightStore small_store(std::uint64_t seed) {
  nn::models::Mlp model(12, {8}, 4, seed);
  auto params = model.collect_parameters();
  rng::Xorshift128 rng(seed ^ 0x5eedF00dULL);
  for (nn::Parameter* p : params) {
    T::Tensor& v = p->var.value();
    for (int k = 0; k < 5 && k < v.numel(); ++k) {
      v[rng.next_u64() % static_cast<std::uint64_t>(v.numel())] +=
          rng.uniform(0.2F, 0.9F);
    }
  }
  return core::SparseWeightStore::from_params(params);
}

std::string variant_dir() {
  const std::string dir = ::testing::TempDir() + "serve_variants";
  (void)std::remove(dir.c_str());
  return dir;
}

void write_variant(const std::string& dir, const std::string& id,
                   std::uint64_t seed) {
  small_store(seed).save_file(dir + "/" + id + ".dbsw");
}

PendingRequest make_pending(std::uint64_t id, const std::string& model,
                            std::int64_t deadline_us) {
  PendingRequest p;
  p.request.id = id;
  p.request.model_id = model;
  p.request.input = random_input(id);
  p.request.deadline_us = deadline_us;
  p.slot = std::make_shared<ResponseSlot>();
  return p;
}

// --------------------------------------------------------------------------
// Request / ResponseSlot
// --------------------------------------------------------------------------

TEST(ServeRequest, OutcomeNamesAreStable) {
  EXPECT_STREQ(outcome_name(Outcome::kOk), "ok");
  EXPECT_STREQ(outcome_name(Outcome::kRejectedQueueFull),
               "rejected_queue_full");
  EXPECT_STREQ(outcome_name(Outcome::kShedExecDeadline),
               "shed_exec_deadline");
  EXPECT_STREQ(outcome_name(Outcome::kModelUnavailable), "model_unavailable");
  EXPECT_TRUE(is_rejection(Outcome::kRejectedInflight));
  EXPECT_FALSE(is_rejection(Outcome::kShedShutdown));
  EXPECT_TRUE(is_shed(Outcome::kShedQueueDeadline));
  EXPECT_FALSE(is_shed(Outcome::kOk));
}

TEST(ServeRequest, FirstDeliverWins) {
  ResponseSlot slot;
  EXPECT_FALSE(slot.ready());
  EXPECT_FALSE(slot.wait_us(1000));
  slot.deliver(Outcome::kOk, T::Tensor({1, 2}), "m0", false, "", 42);
  slot.deliver(Outcome::kShedExecDeadline, T::Tensor{}, "", false, "late",
               99);
  EXPECT_TRUE(slot.wait_us(1));
  EXPECT_EQ(slot.outcome(), Outcome::kOk);
  EXPECT_EQ(slot.served_model(), "m0");
  EXPECT_EQ(slot.latency_us(), 42);
}

// --------------------------------------------------------------------------
// RequestQueue admission + deadline shedding
// --------------------------------------------------------------------------

TEST(ServeQueue, AdmissionControlGivesTypedReasons) {
  util::ManualClock clock;
  RequestQueue q({/*queue_capacity=*/2, /*max_inflight=*/3}, &clock);

  EXPECT_EQ(q.admit(make_pending(1, "m", 100)), Outcome::kPending);
  EXPECT_EQ(q.admit(make_pending(2, "m", 100)), Outcome::kPending);
  EXPECT_EQ(q.admit(make_pending(3, "m", 100)), Outcome::kRejectedQueueFull);
  EXPECT_EQ(q.depth(), 2U);
  EXPECT_EQ(q.inflight(), 2U);

  // Pop both (still in flight) and admit one more: the in-flight budget
  // (3) binds before queue capacity does.
  PendingRequest out;
  std::vector<PendingRequest> expired;
  ASSERT_TRUE(q.pop(0, &out, &expired));
  ASSERT_TRUE(q.pop(0, &out, &expired));
  EXPECT_EQ(q.admit(make_pending(4, "m", 100)), Outcome::kPending);
  EXPECT_EQ(q.admit(make_pending(5, "m", 100)), Outcome::kRejectedInflight);

  q.complete();  // one resolution frees one in-flight slot
  EXPECT_EQ(q.admit(make_pending(6, "m", 100)), Outcome::kPending);

  q.shutdown();
  EXPECT_EQ(q.admit(make_pending(7, "m", 100)), Outcome::kRejectedShutdown);
  EXPECT_TRUE(expired.empty());
}

TEST(ServeQueue, PopSkimsExpiredRequests) {
  util::ManualClock clock;
  RequestQueue q({8, 16}, &clock);
  ASSERT_EQ(q.admit(make_pending(1, "m", /*deadline=*/50)), Outcome::kPending);
  ASSERT_EQ(q.admit(make_pending(2, "m", /*deadline=*/500)),
            Outcome::kPending);

  clock.advance_us(100);  // request 1 is now past its deadline
  PendingRequest out;
  std::vector<PendingRequest> expired;
  ASSERT_TRUE(q.pop(0, &out, &expired));
  EXPECT_EQ(out.request.id, 2U);
  ASSERT_EQ(expired.size(), 1U);
  EXPECT_EQ(expired[0].request.id, 1U);
}

TEST(ServeQueue, DrainReturnsEverythingQueued) {
  util::ManualClock clock;
  RequestQueue q({8, 16}, &clock);
  ASSERT_EQ(q.admit(make_pending(1, "a", 100)), Outcome::kPending);
  ASSERT_EQ(q.admit(make_pending(2, "b", 100)), Outcome::kPending);
  const auto drained = q.drain();
  ASSERT_EQ(drained.size(), 2U);
  EXPECT_EQ(q.depth(), 0U);
}

// --------------------------------------------------------------------------
// MicroBatcher
// --------------------------------------------------------------------------

TEST(ServeBatcher, FormsSameModelBatchesOnly) {
  util::ManualClock clock;
  RequestQueue q({8, 16}, &clock);
  ASSERT_EQ(q.admit(make_pending(2, "a", 100)), Outcome::kPending);
  ASSERT_EQ(q.admit(make_pending(3, "b", 100)), Outcome::kPending);
  ASSERT_EQ(q.admit(make_pending(4, "a", 100)), Outcome::kPending);

  MicroBatcher batcher({/*max_batch=*/4});
  std::vector<PendingRequest> shed;
  PendingRequest head;
  ASSERT_TRUE(q.pop(0, &head, &shed));  // id 2, model a
  const auto batch = batcher.form(std::move(head), &q, &shed);
  ASSERT_EQ(batch.size(), 2U);
  EXPECT_EQ(batch[0].request.id, 2U);
  EXPECT_EQ(batch[1].request.id, 4U);
  EXPECT_TRUE(shed.empty());
  EXPECT_EQ(q.depth(), 1U);  // model b untouched
}

TEST(ServeBatcher, RespectsMaxBatchAndShedsExpired) {
  util::ManualClock clock;
  RequestQueue q({8, 16}, &clock);
  ASSERT_EQ(q.admit(make_pending(1, "a", 1000)), Outcome::kPending);
  ASSERT_EQ(q.admit(make_pending(2, "a", 10)), Outcome::kPending);
  ASSERT_EQ(q.admit(make_pending(3, "a", 1000)), Outcome::kPending);
  ASSERT_EQ(q.admit(make_pending(4, "a", 1000)), Outcome::kPending);

  clock.advance_us(100);  // request 2 expires in the queue
  MicroBatcher batcher({/*max_batch=*/2});
  std::vector<PendingRequest> shed;
  PendingRequest head;
  ASSERT_TRUE(q.pop(0, &head, &shed));
  const auto batch = batcher.form(std::move(head), &q, &shed);
  ASSERT_EQ(batch.size(), 2U);
  EXPECT_EQ(batch[0].request.id, 1U);
  EXPECT_EQ(batch[1].request.id, 3U);
  ASSERT_EQ(shed.size(), 1U);
  EXPECT_EQ(shed[0].request.id, 2U);
  EXPECT_EQ(q.depth(), 1U);  // id 4 waits for the next batch
}

TEST(ServeBatcher, StackInputsConcatenatesRows) {
  std::vector<PendingRequest> batch;
  batch.push_back(make_pending(1, "a", 100));
  batch.push_back(make_pending(2, "a", 100));
  const T::Tensor stacked = MicroBatcher::stack_inputs(batch);
  ASSERT_EQ(stacked.shape(), (T::Shape{2, 12}));
  for (std::int64_t i = 0; i < 12; ++i) {
    EXPECT_EQ(stacked[i], batch[0].request.input[i]);
    EXPECT_EQ(stacked[12 + i], batch[1].request.input[i]);
  }
}

// --------------------------------------------------------------------------
// StoreCache: LRU + counters (fault paths live in serve_cache_fault_test)
// --------------------------------------------------------------------------

TEST(ServeCache, HitsMissesAndLruEviction) {
  obs::MetricsRegistry::global().reset();
  const std::string dir = variant_dir();
  ASSERT_EQ(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST, true);
  write_variant(dir, "m0", 10);
  write_variant(dir, "m1", 11);
  write_variant(dir, "m2", 12);

  util::ManualClock clock;
  CacheConfig config;
  config.dir = dir;
  config.capacity = 2;
  StoreCache cache(config, &clock);

  const CacheResult a = cache.get("m0");
  ASSERT_NE(a.variant, nullptr);
  EXPECT_FALSE(a.degraded);
  const CacheResult b = cache.get("m0");  // hit
  EXPECT_EQ(a.variant.get(), b.variant.get());

  ASSERT_NE(cache.get("m1").variant, nullptr);
  EXPECT_EQ(cache.resident(), 2U);
  ASSERT_NE(cache.get("m2").variant, nullptr);  // evicts LRU (m0)
  EXPECT_EQ(cache.resident(), 2U);

  auto& reg = obs::MetricsRegistry::global();
  EXPECT_EQ(reg.counter("serve.cache.hit").value(), 1U);
  EXPECT_EQ(reg.counter("serve.cache.miss").value(), 3U);
  EXPECT_EQ(reg.counter("serve.cache.evict").value(), 1U);

  // The evicted m0 reloads on demand — and an old handle stays valid.
  const CacheResult c = cache.get("m0");
  ASSERT_NE(c.variant, nullptr);
  EXPECT_NE(c.variant.get(), a.variant.get());
  EXPECT_EQ(a.variant->store, c.variant->store);
}

TEST(ServeCache, MissingModelWithoutFallbackIsUnavailable) {
  obs::MetricsRegistry::global().reset();
  const std::string dir = variant_dir();
  ASSERT_EQ(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST, true);

  util::ManualClock clock;
  CacheConfig config;
  config.dir = dir;
  config.retry_backoff_us = 10;
  StoreCache cache(config, &clock);
  const CacheResult r = cache.get("ghost");
  EXPECT_EQ(r.variant, nullptr);
  EXPECT_NE(r.error.find("ghost"), std::string::npos);
  EXPECT_TRUE(cache.is_quarantined("ghost"));
}

// --------------------------------------------------------------------------
// InferenceServer end-to-end
// --------------------------------------------------------------------------

ServerConfig small_server_config(const std::string& dir,
                                 util::ClockSource* clock = nullptr) {
  ServerConfig config;
  config.threads = 1;
  config.cache.dir = dir;
  config.cache.retry_backoff_us = 10;
  config.default_deadline_us = 5'000'000;  // generous: tests shed explicitly
  config.clock = clock;
  return config;
}

TEST(ServeServer, RejectsInvalidInputImmediately) {
  obs::MetricsRegistry::global().reset();
  const std::string dir = variant_dir();
  ASSERT_EQ(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST, true);
  write_variant(dir, "m0", 10);
  InferenceServer server(small_server_config(dir));

  const auto null_input = server.submit("m0", T::Tensor{});
  EXPECT_TRUE(null_input->ready());
  EXPECT_EQ(null_input->outcome(), Outcome::kRejectedInvalid);

  const auto batched = server.submit("m0", T::Tensor({2, 12}));
  EXPECT_EQ(batched->outcome(), Outcome::kRejectedInvalid);

  const auto no_model = server.submit("", random_input(1));
  EXPECT_EQ(no_model->outcome(), Outcome::kRejectedInvalid);
  EXPECT_EQ(server.stats().rejected_invalid, 3U);
  server.stop();
}

TEST(ServeServer, ServesAndMatchesEmbeddedForwardBitwise) {
  obs::MetricsRegistry::global().reset();
  const std::string dir = variant_dir();
  ASSERT_EQ(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST, true);
  write_variant(dir, "m0", 10);

  // Reference: the embedded-inference path (examples/embedded_inference.cpp)
  // — load the DBSW file directly and run RegenMlp on each input.
  const auto store = core::SparseWeightStore::load_file(dir + "/m0.dbsw");
  const inference::RegenMlp embedded(store);

  for (const int threads : {1, 4}) {
    ServerConfig config = small_server_config(dir);
    config.threads = threads;
    config.batch.max_batch = 4;
    InferenceServer server(config);

    constexpr int kRequests = 24;
    std::vector<std::shared_ptr<ResponseSlot>> slots;
    for (int i = 0; i < kRequests; ++i) {
      slots.push_back(server.submit("m0", random_input(100 + i)));
    }
    for (int i = 0; i < kRequests; ++i) {
      ASSERT_TRUE(slots[i]->wait_us(10'000'000)) << "request " << i;
      ASSERT_EQ(slots[i]->outcome(), Outcome::kOk)
          << "request " << i << ": " << slots[i]->error();
      EXPECT_FALSE(slots[i]->degraded());
      EXPECT_EQ(slots[i]->served_model(), "m0");
      const T::Tensor expect = embedded.forward(random_input(100 + i));
      const T::Tensor& got = slots[i]->output();
      ASSERT_EQ(got.shape(), expect.shape());
      for (std::int64_t k = 0; k < expect.numel(); ++k) {
        // Bitwise: micro-batching and thread count must not change numerics.
        EXPECT_EQ(got[k], expect[k])
            << "threads=" << threads << " request=" << i << " logit=" << k;
      }
    }
    server.stop();
  }
}

TEST(ServeServer, ConcurrentSubmittersAllResolve) {
  obs::MetricsRegistry::global().reset();
  const std::string dir = variant_dir();
  ASSERT_EQ(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST, true);
  write_variant(dir, "m0", 10);
  write_variant(dir, "m1", 11);

  ServerConfig config = small_server_config(dir);
  config.threads = 2;
  config.admission = {/*queue_capacity=*/256, /*max_inflight=*/512};
  InferenceServer server(config);

  constexpr int kPerShard = 16;
  constexpr int kShards = 4;
  std::vector<std::shared_ptr<ResponseSlot>> slots(kShards * kPerShard);
  util::ThreadPool pool(4);
  pool.run(kShards, [&](int shard) {
    for (int i = 0; i < kPerShard; ++i) {
      const int idx = shard * kPerShard + i;
      slots[idx] = server.submit(shard % 2 == 0 ? "m0" : "m1",
                                 random_input(1000 + idx));
    }
  });
  for (auto& slot : slots) {
    ASSERT_TRUE(slot->wait_us(10'000'000));
    EXPECT_EQ(slot->outcome(), Outcome::kOk) << slot->error();
  }
  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kShards * kPerShard));
  EXPECT_EQ(s.ok, s.submitted);
}

TEST(ServeServer, ShedsExpiredRequestsWithManualClock) {
  obs::MetricsRegistry::global().reset();
  const std::string dir = variant_dir();
  ASSERT_EQ(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST, true);
  write_variant(dir, "m0", 10);

  util::ManualClock clock;
  ServerConfig config = small_server_config(dir, &clock);
  config.default_deadline_us = 1000;
  // The deadline is virtual, but the worker runs in real time — advancing
  // the clock from this thread would race the worker serving the request.
  // Advance it from inside the worker instead, at the exec stage: the
  // deadline then expires *during* execution no matter who wins the
  // scheduling race, and the post-exec gate must shed the computed result.
  config.chaos_hook = [&clock](const char* stage) {
    if (std::string_view(stage) == "exec") clock.advance_us(10'000);
  };
  InferenceServer server(config);

  const auto slot = server.submit("m0", random_input(7));
  ASSERT_TRUE(slot->wait_us(10'000'000));
  EXPECT_EQ(slot->outcome(), Outcome::kShedExecDeadline)
      << outcome_name(slot->outcome());
  EXPECT_FALSE(slot->output().defined());
  server.stop();
  EXPECT_GE(server.stats().shed(), 1U);
}

TEST(ServeServer, StopResolvesEveryAdmittedRequest) {
  obs::MetricsRegistry::global().reset();
  const std::string dir = variant_dir();
  ASSERT_EQ(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST, true);
  write_variant(dir, "m0", 10);

  ServerConfig config = small_server_config(dir);
  config.admission = {/*queue_capacity=*/64, /*max_inflight=*/128};
  auto server = std::make_unique<InferenceServer>(config);
  std::vector<std::shared_ptr<ResponseSlot>> slots;
  for (int i = 0; i < 32; ++i) {
    slots.push_back(server->submit("m0", random_input(i)));
  }
  server->stop();

  for (auto& slot : slots) {
    ASSERT_TRUE(slot->ready());  // nothing may be stranded after stop()
    const Outcome o = slot->outcome();
    EXPECT_TRUE(o == Outcome::kOk || is_shed(o) || is_rejection(o))
        << outcome_name(o);
  }
  const ServerStats s = server->stats();
  EXPECT_EQ(s.submitted, 32U);
  EXPECT_EQ(s.submitted, s.admitted + s.rejected());
  EXPECT_EQ(s.admitted, s.ok + s.shed() + s.unavailable);

  // Post-stop submits are typed rejections, not crashes.
  const auto late = server->submit("m0", random_input(99));
  EXPECT_EQ(late->outcome(), Outcome::kRejectedShutdown);
  server.reset();  // double-stop via destructor must be a no-op
}

TEST(ServeServer, MissingModelFallsBackDegradedOrFailsTyped) {
  obs::MetricsRegistry::global().reset();
  const std::string dir = variant_dir();
  ASSERT_EQ(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST, true);
  write_variant(dir, "fallback", 42);

  // Without a fallback: typed kModelUnavailable.
  {
    InferenceServer server(small_server_config(dir));
    const auto slot = server.submit("ghost", random_input(1));
    ASSERT_TRUE(slot->wait_us(10'000'000));
    EXPECT_EQ(slot->outcome(), Outcome::kModelUnavailable);
    EXPECT_NE(slot->error().find("ghost"), std::string::npos);
    server.stop();
  }
  // With a fallback: kOk, flagged degraded, served by the fallback.
  {
    ServerConfig config = small_server_config(dir);
    config.cache.fallback_model = "fallback";
    InferenceServer server(config);
    const auto slot = server.submit("ghost", random_input(1));
    ASSERT_TRUE(slot->wait_us(10'000'000));
    ASSERT_EQ(slot->outcome(), Outcome::kOk) << slot->error();
    EXPECT_TRUE(slot->degraded());
    EXPECT_EQ(slot->served_model(), "fallback");
    server.stop();
    EXPECT_EQ(server.stats().degraded, 1U);
  }
}

// histogram_quantile underpins the p50/p99 the loadgen and summary report.
TEST(ServeObs, HistogramQuantileIsConservative) {
  obs::Histogram h({1, 2, 5, 10});
  EXPECT_EQ(obs::histogram_quantile(h, 0.99), 0.0);  // empty
  for (int i = 0; i < 90; ++i) h.observe(0.5);       // -> bucket < 1
  for (int i = 0; i < 9; ++i) h.observe(1.5);        // -> [1, 2)
  h.observe(100.0);                                  // -> overflow
  EXPECT_EQ(obs::histogram_quantile(h, 0.5), 1.0);
  EXPECT_EQ(obs::histogram_quantile(h, 0.95), 2.0);
  EXPECT_EQ(obs::histogram_quantile(h, 1.0), 10.0);  // overflow clamps
}

}  // namespace
}  // namespace dropback::serve
