// Edge-case coverage across the stack: degenerate batch sizes, minimal
// shapes, boundary parameters — the configurations that break naive kernel
// implementations.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/conv_ops.hpp"
#include "autograd/ops.hpp"
#include "core/dropback_optimizer.hpp"
#include "tensor/ops.hpp"
#include "data/dataloader.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/models/lenet.hpp"
#include "nn/sequential.hpp"
#include "rng/xorshift.hpp"
#include "train/trainer.hpp"

namespace dropback {
namespace {

namespace T = dropback::tensor;
namespace ag = dropback::autograd;

T::Tensor rand_tensor(T::Shape shape, std::uint64_t seed) {
  rng::Xorshift128 rng(seed);
  T::Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(-1, 1);
  return t;
}

TEST(EdgeCases, BatchSizeOneThroughWholeMlp) {
  auto model = nn::models::make_mnist_100_100(3);
  ag::Variable x(rand_tensor({1, 784}, 1));
  ag::Variable logits = model->forward(x);
  EXPECT_EQ(logits.value().shape(), (T::Shape{1, 10}));
  ag::Variable loss = ag::softmax_cross_entropy(logits, {3});
  ag::backward(loss);
  EXPECT_TRUE(model->parameters()[0]->var.has_grad());
}

TEST(EdgeCases, BatchNormBatchOfOnePixel) {
  // N=1, H=W=1: per-channel variance is exactly 0; eps must keep the
  // normalization finite.
  nn::BatchNorm2d bn(2);
  bn.set_training(true);
  ag::Variable x(rand_tensor({1, 2, 1, 1}, 2));
  ag::Variable y = bn.forward(x);
  for (std::int64_t i = 0; i < y.value().numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y.value()[i]));
  }
}

TEST(EdgeCases, ConvKernelLargerThanInputWithPadding) {
  // 5x5 kernel on a 3x3 input only works because padding extends the field.
  tensor::Conv2dSpec spec{5, 5, 1, 2};
  T::Tensor x = rand_tensor({1, 1, 3, 3}, 3);
  T::Tensor w = rand_tensor({1, 1, 5, 5}, 4);
  T::Tensor y = tensor::conv2d(x, w, T::Tensor(), spec);
  EXPECT_EQ(y.shape(), (T::Shape{1, 1, 3, 3}));
}

TEST(EdgeCases, ConvOutputOneByOne) {
  tensor::Conv2dSpec spec{3, 3, 1, 0};
  T::Tensor x = rand_tensor({2, 2, 3, 3}, 5);
  T::Tensor w = rand_tensor({4, 2, 3, 3}, 6);
  T::Tensor y = tensor::conv2d(x, w, T::Tensor(), spec);
  EXPECT_EQ(y.shape(), (T::Shape{2, 4, 1, 1}));
}

TEST(EdgeCases, SoftmaxSingleClassIsAlwaysOne) {
  T::Tensor x = rand_tensor({4, 1}, 7);
  T::Tensor p = tensor::row_softmax(x);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(p[i], 1.0F);
  // Cross entropy with one class is exactly zero.
  ag::Variable logits(x, false);
  ag::Variable loss = ag::softmax_cross_entropy(logits, {0, 0, 0, 0});
  EXPECT_NEAR(loss.value()[0], 0.0F, 1e-6F);
}

TEST(EdgeCases, MlpWithNoHiddenLayersIsLogisticRegression) {
  nn::models::Mlp model(6, {}, 3, 1);
  EXPECT_EQ(model.num_params(), 6 * 3 + 3);
  ag::Variable x(rand_tensor({2, 6}, 8));
  EXPECT_EQ(model.forward(x).value().shape(), (T::Shape{2, 3}));
}

TEST(EdgeCases, DataLoaderBatchLargerThanDataset) {
  data::SyntheticMnistOptions opt;
  opt.num_samples = 5;
  auto ds = data::make_synthetic_mnist(opt);
  data::DataLoader loader(*ds, 100, true);
  data::Batch batch;
  ASSERT_TRUE(loader.next(batch));
  EXPECT_EQ(batch.size(), 5);
  EXPECT_FALSE(loader.next(batch));
}

TEST(EdgeCases, TrainerValSetEqualsTrainSet) {
  data::SyntheticMnistOptions opt;
  opt.num_samples = 40;
  auto ds = data::make_synthetic_mnist(opt);
  auto model = nn::models::make_mnist_100_100(3);
  optim::SGD sgd(model->collect_parameters(), 0.1F);
  train::TrainConfig options;
  options.epochs = 2;
  options.batch_size = 20;
  train::Trainer trainer(*model, sgd, *ds, *ds, options);
  const auto result = trainer.run();
  EXPECT_EQ(result.history.size(), 2U);
}

TEST(EdgeCases, LinearOneByOne) {
  nn::Linear fc(1, 1, 1);
  ag::Variable x(T::Tensor::full({1, 1}, 2.0F));
  ag::Variable y = fc.forward(x);
  EXPECT_EQ(y.value().shape(), (T::Shape{1, 1}));
  EXPECT_FLOAT_EQ(y.value()[0],
                  2.0F * fc.weight().var.value()[0] +
                      fc.bias()->var.value()[0]);
}

TEST(EdgeCases, PreluWithNegativeSlopeParameter) {
  nn::PReLU prelu(-0.5F);
  ag::Variable x(T::Tensor::from_vector({2}, {-2.0F, 2.0F}));
  ag::Variable y = prelu.forward(x);
  EXPECT_FLOAT_EQ(y.value()[0], 1.0F);  // -2 * -0.5
  EXPECT_FLOAT_EQ(y.value()[1], 2.0F);
}

TEST(EdgeCases, DropBackBudgetEqualsTotalMinusOne) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Linear>(4, 6, 1);  // 30 params
  core::DropBackConfig config;
  config.budget = 29;
  core::DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  ag::Variable x(rand_tensor({2, 4}, 9));
  ag::backward(ag::sum(net->forward(x)));
  opt.step();
  EXPECT_EQ(opt.live_weights(), 29);
}

TEST(EdgeCases, ConcatSingleInputIsCopy) {
  ag::Variable a(rand_tensor({1, 2, 2, 2}, 10), true);
  ag::Variable c = ag::concat_channels({a});
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(c.value()[i], a.value()[i]);
  }
  ag::backward(ag::sum(c));
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0F);
}

TEST(EdgeCases, GlobalAvgPoolOnOnePixel) {
  T::Tensor x = rand_tensor({2, 3, 1, 1}, 11);
  T::Tensor y = tensor::global_avgpool(x);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(EdgeCases, SyntheticMnistSingleSample) {
  data::SyntheticMnistOptions opt;
  opt.num_samples = 1;
  auto ds = data::make_synthetic_mnist(opt);
  EXPECT_EQ(ds->size(), 1);
  EXPECT_EQ(ds->label(0), 0);
}

TEST(EdgeCases, NoiseFreeMnistIsClean) {
  data::SyntheticMnistOptions opt;
  opt.num_samples = 10;
  opt.noise_stddev = 0.0F;
  auto ds = data::make_synthetic_mnist(opt);
  // Noise-free images have large exactly-zero background regions.
  std::vector<float> buf(784);
  ds->copy_sample(0, buf.data());
  int zeros = 0;
  for (float v : buf) {
    if (v == 0.0F) ++zeros;
  }
  EXPECT_GT(zeros, 300);
}

TEST(EdgeCases, EvaluateOnEmptyishBatchSizes) {
  data::SyntheticMnistOptions opt;
  opt.num_samples = 7;
  auto ds = data::make_synthetic_mnist(opt);
  auto model = nn::models::make_mnist_100_100(3);
  // batch size larger than set, equal, and 1.
  const double a = train::Trainer::evaluate(*model, *ds, 100);
  const double b = train::Trainer::evaluate(*model, *ds, 7);
  const double c = train::Trainer::evaluate(*model, *ds, 1);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_DOUBLE_EQ(b, c);
}

}  // namespace
}  // namespace dropback
