#include "train/dropback_session.hpp"

#include <gtest/gtest.h>

#include "data/synthetic_mnist.hpp"
#include "nn/models/lenet.hpp"

namespace dropback::train {
namespace {

struct Task {
  std::unique_ptr<data::InMemoryDataset> train_set;
  std::unique_ptr<data::InMemoryDataset> val_set;
};

Task make_task(std::int64_t n_train = 400, std::int64_t n_val = 150) {
  data::SyntheticMnistOptions opt;
  opt.num_samples = n_train;
  opt.seed = 1;
  Task task;
  task.train_set = data::make_synthetic_mnist(opt);
  opt.num_samples = n_val;
  opt.seed = 2;
  task.val_set = data::make_synthetic_mnist(opt);
  return task;
}

DropBackSession::Options default_options() {
  DropBackSession::Options options;
  options.train.budget_schedule = optim::constant_budget(8000);
  options.train.epochs = 8;
  options.train.batch_size = 32;
  return options;
}

TEST(Session, RequiresBudgetSchedule) {
  auto model = nn::models::make_mnist_100_100(3);
  DropBackSession::Options options;
  EXPECT_THROW(DropBackSession(*model, options), std::invalid_argument);
}

TEST(Session, FitTrainsAndReportsCompression) {
  auto task = make_task();
  auto model = nn::models::make_mnist_100_100(3);
  DropBackSession session(*model, default_options());
  const auto result = session.fit(*task.train_set, *task.val_set);
  EXPECT_EQ(result.history.size(), 8U);
  EXPECT_GT(result.best_val_acc, 0.3);
  EXPECT_EQ(session.live_weights(), 8000);
  EXPECT_NEAR(session.compression_ratio(), 89610.0 / 8000.0, 1e-6);
}

TEST(Session, EvaluateMatchesTrainerEvaluate) {
  auto task = make_task(60, 60);
  auto model = nn::models::make_mnist_100_100(3);
  DropBackSession session(*model, default_options());
  EXPECT_DOUBLE_EQ(session.evaluate(*task.val_set),
                   Trainer::evaluate(*model, *task.val_set, 32));
}

TEST(Session, FreezeEpochTriggersFreeze) {
  auto task = make_task(64, 32);
  auto model = nn::models::make_mnist_100_100(3);
  auto options = default_options();
  options.train.budget_schedule = optim::constant_budget_epochs(8000, 2);
  DropBackSession session(*model, options);
  EXPECT_FALSE(session.frozen());
  session.fit(*task.train_set, *task.val_set);
  EXPECT_TRUE(session.frozen());
}

TEST(Session, ExportedStoreRoundTrips) {
  auto task = make_task();
  auto model = nn::models::make_mnist_100_100(3);
  DropBackSession session(*model, default_options());
  session.fit(*task.train_set, *task.val_set);
  const std::string path = ::testing::TempDir() + "/session_model.dbsw";
  session.export_compressed(path);
  auto loaded = core::SparseWeightStore::load_file(path);
  EXPECT_EQ(loaded.live_weights(), 8000);
  // Reload into a fresh model: identical validation accuracy.
  auto fresh = nn::models::make_mnist_100_100(444);
  loaded.apply_to(fresh->collect_parameters());
  EXPECT_DOUBLE_EQ(Trainer::evaluate(*fresh, *task.val_set, 32),
                   session.evaluate(*task.val_set));
}

TEST(Session, TrainingStateSaveLoadResumes) {
  auto task = make_task();
  const std::string path = ::testing::TempDir() + "/session_state.bin";
  double acc_direct;
  {  // Uninterrupted: 4 + 4 epochs.
    auto model = nn::models::make_mnist_100_100(3);
    DropBackSession session(*model, default_options());
    session.fit(*task.train_set, *task.val_set);
    session.fit(*task.train_set, *task.val_set);
    acc_direct = session.evaluate(*task.val_set);
  }
  double acc_resumed;
  {  // Interrupted after the first fit.
    auto model = nn::models::make_mnist_100_100(3);
    DropBackSession session(*model, default_options());
    session.fit(*task.train_set, *task.val_set);
    session.save_training_state(path);
    // "Restart" in a new session over a fresh model.
    auto model2 = nn::models::make_mnist_100_100(3);
    DropBackSession session2(*model2, default_options());
    session2.load_training_state(path);
    session2.fit(*task.train_set, *task.val_set);
    acc_resumed = session2.evaluate(*task.val_set);
  }
  EXPECT_DOUBLE_EQ(acc_direct, acc_resumed);
}

TEST(Session, EnergyTrackingAccumulates) {
  auto task = make_task(64, 32);
  auto model = nn::models::make_mnist_100_100(3);
  auto options = default_options();
  options.track_energy = true;
  options.train.epochs = 1;
  DropBackSession session(*model, options);
  session.fit(*task.train_set, *task.val_set);
  EXPECT_GT(session.energy().regens, 0U);
  EXPECT_GT(session.energy().dram_reads, 0U);
}

TEST(Session, LrScheduleApplied) {
  auto task = make_task(64, 32);
  auto model = nn::models::make_mnist_100_100(3);
  auto options = default_options();
  options.lr = 0.4F;
  options.lr_decay = 0.5F;
  options.lr_decay_epochs = 1;
  options.train.epochs = 3;
  DropBackSession session(*model, options);
  const auto result = session.fit(*task.train_set, *task.val_set);
  EXPECT_FLOAT_EQ(result.history[0].lr, 0.4F);
  EXPECT_FLOAT_EQ(result.history[2].lr, 0.1F);
}

}  // namespace
}  // namespace dropback::train
