#include "energy/energy_model.hpp"

#include <gtest/gtest.h>

namespace dropback::energy {
namespace {

TEST(EnergyConstants, PaperHeadlineRatios) {
  EnergyConstants c;
  // "accessing a 32-bit value from DRAM costs over 700x more energy than a
  // 32-bit floating-point compute operation (640pJ vs. 0.9pJ)".
  EXPECT_DOUBLE_EQ(c.dram_access_pj, 640.0);
  EXPECT_DOUBLE_EQ(c.float_op_pj, 0.9);
  EXPECT_GT(c.dram_vs_flop(), 700.0);
  EXPECT_LT(c.dram_vs_flop(), 720.0);
  // Regeneration ~1.5 pJ -> "427x less energy than a single off-chip
  // memory access".
  EXPECT_NEAR(c.regen_pj(), 1.5, 0.01);
  EXPECT_NEAR(c.dram_vs_regen(), 427.0, 2.0);
}

TEST(TrafficCounter, TotalEnergyArithmetic) {
  TrafficCounter t;
  t.dram_reads = 10;
  t.dram_writes = 5;
  t.regens = 100;
  t.float_ops = 1000;
  EnergyConstants c;
  const double expected =
      15 * 640.0 + 100 * c.regen_pj() + 1000 * 0.9;
  EXPECT_DOUBLE_EQ(t.total_pj(c), expected);
}

TEST(TrafficCounter, DenseEquivalentChargesRegensAsDram) {
  TrafficCounter t;
  t.dram_reads = 10;
  t.regens = 90;
  EnergyConstants c;
  EXPECT_DOUBLE_EQ(t.dense_equivalent_pj(c), 100 * 640.0);
  EXPECT_LT(t.total_pj(c), t.dense_equivalent_pj(c));
}

TEST(TrafficCounter, SavingsGrowWithRegenShare) {
  EnergyConstants c;
  TrafficCounter low, high;
  low.dram_reads = 90;
  low.regens = 10;
  high.dram_reads = 10;
  high.regens = 90;
  const double low_saving = low.dense_equivalent_pj(c) / low.total_pj(c);
  const double high_saving = high.dense_equivalent_pj(c) / high.total_pj(c);
  EXPECT_GT(high_saving, low_saving);
  EXPECT_GT(high_saving, 5.0);
}

TEST(TrafficCounter, ResetAndAccumulate) {
  TrafficCounter a, b;
  a.dram_reads = 3;
  a.regens = 7;
  b.dram_reads = 2;
  b.dram_writes = 4;
  a += b;
  EXPECT_EQ(a.dram_reads, 5U);
  EXPECT_EQ(a.dram_writes, 4U);
  EXPECT_EQ(a.regens, 7U);
  a.reset();
  EXPECT_EQ(a.dram_reads, 0U);
  EXPECT_DOUBLE_EQ(a.total_pj(), 0.0);
}

TEST(TrafficCounter, ReportMentionsKeyNumbers) {
  TrafficCounter t;
  t.dram_reads = 1;
  t.regens = 1;
  const std::string report = t.report();
  EXPECT_NE(report.find("DRAM"), std::string::npos);
  EXPECT_NE(report.find("regen"), std::string::npos);
  EXPECT_NE(report.find("427"), std::string::npos);
}

TEST(TrafficCounter, ZeroTrafficReportSafe) {
  TrafficCounter t;
  EXPECT_NO_FATAL_FAILURE({ const auto s = t.report(); (void)s; });
}

}  // namespace
}  // namespace dropback::energy
