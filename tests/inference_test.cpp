#include "inference/regen_forward.hpp"

#include <gtest/gtest.h>

#include "autograd/ops.hpp"
#include "nn/conv2d.hpp"
#include "nn/models/lenet.hpp"
#include "rng/xorshift.hpp"
#include "tensor/conv.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "train/trainer.hpp"

namespace dropback::inference {
namespace {

namespace T = dropback::tensor;
namespace ag = dropback::autograd;

T::Tensor random_tensor(T::Shape shape, std::uint64_t seed) {
  rng::Xorshift128 rng(seed);
  T::Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(-1, 1);
  return t;
}

/// Trains a small MLP briefly with DropBack and returns its store.
core::SparseWeightStore small_trained_store(std::int64_t budget) {
  auto model = nn::models::Mlp(12, {8}, 4, /*seed=*/5);
  auto params = model.collect_parameters();
  core::DropBackConfig config;
  config.budget = budget;
  core::DropBackOptimizer opt(params, 0.1F, config);
  for (int iter = 0; iter < 6; ++iter) {
    model.zero_grad();
    ag::Variable x(random_tensor({4, 12}, 100 + iter));
    ag::backward(ag::sum(ag::mul(model.forward(x), model.forward(x))));
    opt.step();
  }
  return core::SparseWeightStore::from_optimizer(opt);
}

TEST(RegenLinear, MatchesDenseMaterializedForward) {
  auto store = small_trained_store(30);
  RegenLinear layer(&store.record(0), &store.record(1));
  const T::Tensor x = random_tensor({5, 12}, 9);
  const T::Tensor streamed = layer.forward(x);
  // Dense reference: materialize + matmul_nt + bias.
  const T::Tensor w = store.materialize(0);
  const T::Tensor b = store.materialize(1);
  const T::Tensor dense =
      T::add_row_vector(T::matmul_nt(x, w.reshape({8, 12})), b);
  ASSERT_EQ(streamed.shape(), dense.shape());
  for (std::int64_t i = 0; i < dense.numel(); ++i) {
    EXPECT_NEAR(streamed[i], dense[i], 1e-5F) << i;
  }
}

TEST(RegenLinear, TrafficSplitsTrackedVsRegenerated) {
  auto store = small_trained_store(30);
  RegenLinear layer(&store.record(0), &store.record(1));
  energy::TrafficCounter traffic;
  layer.forward(random_tensor({1, 12}, 3), &traffic);
  const auto w_entries = store.record(0).entries.size();
  const auto b_entries = store.record(1).entries.size();
  EXPECT_EQ(traffic.dram_reads, w_entries + b_entries);
  EXPECT_EQ(traffic.dram_reads + traffic.regens,
            static_cast<std::uint64_t>(12 * 8 + 8));
  EXPECT_GT(traffic.float_ops, 0U);
}

TEST(RegenLinear, LiveFloatsIsEntryCount) {
  auto store = small_trained_store(20);
  RegenLinear layer(&store.record(0), &store.record(1));
  EXPECT_EQ(layer.live_floats(),
            static_cast<std::int64_t>(store.record(0).entries.size() +
                                      store.record(1).entries.size()));
}

TEST(RegenLinear, RejectsWrongInputWidth) {
  auto store = small_trained_store(20);
  RegenLinear layer(&store.record(0), &store.record(1));
  EXPECT_THROW(layer.forward(T::Tensor({2, 5})), std::invalid_argument);
}

TEST(RegenMlp, EndToEndMatchesMaterializedModel) {
  // Train MNIST-100-100 briefly, then compare the streaming engine against
  // the dense model on a batch of real inputs.
  auto model = nn::models::make_mnist_100_100(7);
  auto params = model->collect_parameters();
  core::DropBackConfig config;
  config.budget = 5000;
  core::DropBackOptimizer opt(params, 0.1F, config);
  for (int iter = 0; iter < 4; ++iter) {
    model->zero_grad();
    ag::Variable x(random_tensor({8, 784}, 200 + iter));
    std::vector<std::int64_t> labels(8);
    for (int i = 0; i < 8; ++i) labels[static_cast<std::size_t>(i)] = i % 10;
    ag::Variable loss =
        ag::softmax_cross_entropy(model->forward(x), labels);
    ag::backward(loss);
    opt.step();
  }
  auto store = core::SparseWeightStore::from_optimizer(opt);
  RegenMlp engine(store);
  EXPECT_EQ(engine.num_layers(), 3U);
  EXPECT_EQ(engine.dense_floats(), 89610);
  EXPECT_EQ(engine.live_floats(), 5000);

  const T::Tensor x = random_tensor({4, 784}, 77);
  const T::Tensor streamed = engine.forward(x);
  autograd::NoGradGuard no_grad;
  model->set_training(false);
  const T::Tensor dense = model->forward(ag::Variable(x)).value();
  ASSERT_EQ(streamed.shape(), dense.shape());
  for (std::int64_t i = 0; i < dense.numel(); ++i) {
    EXPECT_NEAR(streamed[i], dense[i], 1e-3F) << i;
  }
}

TEST(RegenMlp, RejectsOddRecordCounts) {
  core::SparseWeightStore empty;
  EXPECT_NO_THROW(RegenMlp engine(empty));  // zero layers is degenerate but valid shape-wise
}

TEST(RegenConv2d, MatchesDenseConvolution) {
  // Build a conv layer, capture it through from_params, and compare the
  // streaming conv against the tensor-kernel conv.
  nn::Conv2d conv(2, 3, 3, 1, 1, /*seed=*/11);
  // Perturb some weights so the store has nontrivial entries.
  conv.weight().var.value()[5] += 0.7F;
  conv.weight().var.value()[20] -= 0.4F;
  conv.bias()->var.value()[1] = 0.25F;
  auto store = core::SparseWeightStore::from_params(
      {&conv.weight(), conv.bias()});
  RegenConv2d streaming(&store.record(0), &store.record(1), conv.spec());
  const T::Tensor x = random_tensor({2, 2, 6, 6}, 13);
  const T::Tensor streamed = streaming.forward(x);
  const T::Tensor dense = T::conv2d(x, store.materialize(0),
                                    store.materialize(1), conv.spec());
  ASSERT_EQ(streamed.shape(), dense.shape());
  for (std::int64_t i = 0; i < dense.numel(); ++i) {
    EXPECT_NEAR(streamed[i], dense[i], 1e-4F) << i;
  }
}

TEST(RegenConv2d, TrafficCoversEveryWeightOnce) {
  nn::Conv2d conv(2, 3, 3, 1, 1, 11);
  auto store = core::SparseWeightStore::from_params(
      {&conv.weight(), conv.bias()});
  RegenConv2d streaming(&store.record(0), &store.record(1), conv.spec());
  energy::TrafficCounter traffic;
  streaming.forward(random_tensor({1, 2, 4, 4}, 3), &traffic);
  // All weights + biases touched exactly once (filters streamed per output
  // channel, not per pixel — the engine caches one filter row at a time).
  EXPECT_EQ(traffic.dram_reads + traffic.regens,
            static_cast<std::uint64_t>(3 * 2 * 9 + 3));
}

/// Budget sweep: streaming inference must be exact at every budget.
class RegenBudgetSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(RegenBudgetSweep, StreamedEqualsMaterialized) {
  auto store = small_trained_store(GetParam());
  RegenMlp engine(store);
  const T::Tensor x = random_tensor({3, 12}, 21);
  const T::Tensor streamed = engine.forward(x);
  // Reference via materialized tensors.
  T::Tensor h = x;
  for (std::size_t p = 0; p < store.num_params(); p += 2) {
    const auto& wshape = store.record(p).shape;
    h = T::add_row_vector(
        T::matmul_nt(h, store.materialize(p).reshape(wshape)),
        store.materialize(p + 1));
    if (p + 2 < store.num_params()) h = T::relu(h);
  }
  for (std::int64_t i = 0; i < h.numel(); ++i) {
    ASSERT_NEAR(streamed[i], h[i], 1e-4F);
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, RegenBudgetSweep,
                         ::testing::Values(1, 10, 50, 136));

}  // namespace
}  // namespace dropback::inference
