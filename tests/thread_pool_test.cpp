// Unit tests for the fixed-partition thread pool itself: shard coverage,
// degenerate ranges, exception propagation, and heavy reuse. The kernels'
// bitwise parallel-vs-serial guarantees live in parallel_equivalence_test.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "util/flags.hpp"

namespace dropback::util {
namespace {

class ThreadPoolTest : public ::testing::Test {
 protected:
  void TearDown() override { set_num_threads(1); }
};

TEST_F(ThreadPoolTest, EmptyRangeNeverInvokes) {
  set_num_threads(4);
  int calls = 0;
  parallel_for(16, 0, [&](std::int64_t, std::int64_t) { ++calls; });
  parallel_for(16, -5, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST_F(ThreadPoolTest, BelowGrainRunsInlineOnCaller) {
  set_num_threads(4);
  const auto caller = std::this_thread::get_id();
  int calls = 0;
  std::int64_t begin = -1, end = -1;
  parallel_for(100, 37, [&](std::int64_t b, std::int64_t e) {
    ++calls;
    begin = b;
    end = e;
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(begin, 0);
  EXPECT_EQ(end, 37);
}

TEST_F(ThreadPoolTest, SingleThreadPoolRunsInline) {
  set_num_threads(1);
  const auto caller = std::this_thread::get_id();
  std::int64_t covered = 0;
  parallel_for(1, 1000, [&](std::int64_t b, std::int64_t e) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    covered += e - b;
  });
  EXPECT_EQ(covered, 1000);
}

TEST_F(ThreadPoolTest, CoversEveryIndexExactlyOnceWithRaggedShards) {
  // 7 threads over ranges that do not divide evenly: every index must be
  // touched exactly once, with no gaps at the shard seams.
  set_num_threads(7);
  for (std::int64_t n : {1, 2, 6, 7, 8, 13, 97, 1000, 12345}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    for (auto& h : hits) h.store(0);
    parallel_for(1, n, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      }
    });
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "index " << i << " of " << n;
    }
  }
}

TEST_F(ThreadPoolTest, RunCoversShardsBeyondThreadCount) {
  // Static round-robin: 23 shards on a 3-thread pool.
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(23);
  for (auto& h : hits) h.store(0);
  pool.run(23, [&](int s) { hits[static_cast<std::size_t>(s)].fetch_add(1); });
  for (std::size_t s = 0; s < hits.size(); ++s) {
    ASSERT_EQ(hits[s].load(), 1) << "shard " << s;
  }
}

TEST_F(ThreadPoolTest, ExceptionPropagatesAndPoolSurvives) {
  set_num_threads(4);
  EXPECT_THROW(
      parallel_for(1, 1000,
                   [&](std::int64_t b, std::int64_t) {
                     if (b == 0) throw std::runtime_error("shard boom");
                   }),
      std::runtime_error);
  // The pool must be fully reusable after a throwing dispatch.
  std::atomic<std::int64_t> sum{0};
  parallel_for(1, 1000, [&](std::int64_t b, std::int64_t e) {
    std::int64_t local = 0;
    for (std::int64_t i = b; i < e; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 1000 * 999 / 2);
}

TEST_F(ThreadPoolTest, ExceptionFromWorkerShardPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run(4,
                        [&](int s) {
                          // Shard 1 is owned by a worker, not the caller.
                          if (s == 1) throw std::runtime_error("worker boom");
                        }),
               std::runtime_error);
}

TEST_F(ThreadPoolTest, ReuseAcrossManyDispatches) {
  set_num_threads(5);
  std::int64_t expected = 0;
  std::atomic<std::int64_t> total{0};
  for (int round = 0; round < 500; ++round) {
    const std::int64_t n = 1 + (round % 64);
    expected += n;
    parallel_for(1, n, [&](std::int64_t b, std::int64_t e) {
      total.fetch_add(e - b);
    });
  }
  EXPECT_EQ(total.load(), expected);
}

TEST_F(ThreadPoolTest, NestedParallelForRunsSeriallyWithoutDeadlock) {
  set_num_threads(4);
  std::atomic<std::int64_t> inner_total{0};
  parallel_for(1, 8, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      parallel_for(1, 10, [&](std::int64_t ib, std::int64_t ie) {
        inner_total.fetch_add(ie - ib);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 80);
}

TEST_F(ThreadPoolTest, SetNumThreadsResizesGlobalPool) {
  set_num_threads(7);
  EXPECT_EQ(num_threads(), 7);
  set_num_threads(2);
  EXPECT_EQ(num_threads(), 2);
  set_num_threads(1);
  EXPECT_EQ(num_threads(), 1);
}

TEST_F(ThreadPoolTest, ConfigureThreadsReadsFlag) {
  const char* argv[] = {"prog", "--threads", "3"};
  Flags flags(3, const_cast<char**>(argv));
  configure_threads(flags);
  EXPECT_EQ(num_threads(), 3);
}

TEST_F(ThreadPoolTest, DeterministicPartitionBoundaries) {
  // The even split must be a pure function of (n, shards): recompute the
  // boundaries a dispatch used and check contiguity and ordering.
  set_num_threads(4);
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
  std::mutex mu;
  parallel_for(1, 103, [&](std::int64_t b, std::int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(b, e);
  });
  std::sort(ranges.begin(), ranges.end());
  ASSERT_EQ(ranges.size(), 4U);
  EXPECT_EQ(ranges.front().first, 0);
  EXPECT_EQ(ranges.back().second, 103);
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i].first, ranges[i - 1].second);
  }
}

}  // namespace
}  // namespace dropback::util
