// Telemetry non-perturbation contract (ISSUE 3, extended by ISSUE 8):
// enabling --metrics-out, --profile, or span tracing must leave training
// BITWISE identical — final weights and checkpoint bytes — at 1 and 2
// threads, and tracing must leave served outputs bitwise identical too. The
// instrumentation only reads clocks and optimizer state, and this test is
// the proof: an instrumented run is memcmp-equal to a bare run, and the
// parallel-vs-serial contract from docs/PARALLELISM.md survives with
// instrumentation on.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/dropback_optimizer.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/models/lenet.hpp"
#include "obs/json.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "rng/xorshift.hpp"
#include "serve/server.hpp"
#include "train/trainer.hpp"
#include "util/atomic_file.hpp"
#include "util/thread_pool.hpp"

namespace dropback {
namespace {

struct RunArtifacts {
  std::vector<float> weights;      ///< every parameter value, flattened
  std::string checkpoint_bytes;    ///< final on-disk snapshot, verbatim
  std::string metrics_bytes;       ///< JSONL stream ("" when not requested)
};

/// One short DropBack MNIST run under `threads` threads, optionally with
/// the full telemetry stack (event stream + profiler + span tracing)
/// enabled. Everything is seeded, so two calls differ only in
/// instrumentation and thread count.
RunArtifacts run_training(int threads, bool instrument,
                          const std::string& tag, bool trace = false) {
  util::set_num_threads(threads);
  if (instrument) {
    obs::reset_profile();
    obs::set_profiling_enabled(true);
  }
  if (trace) {
    obs::reset_trace();
    obs::set_tracing_enabled(true);
  }

  data::SyntheticMnistOptions data_opt;
  data_opt.num_samples = 64;
  data_opt.seed = 1;
  auto train_set = data::make_synthetic_mnist(data_opt);
  data_opt.num_samples = 32;
  data_opt.seed = 2;
  auto val_set = data::make_synthetic_mnist(data_opt);

  auto model = nn::models::make_mnist_100_100(3);
  auto params = model->collect_parameters();
  core::DropBackConfig config;
  config.budget = 2000;
  core::DropBackOptimizer opt(params, 0.1F, config);

  train::TrainConfig options;
  options.epochs = 2;
  options.batch_size = 16;
  options.checkpoint_path = ::testing::TempDir() + "/obs_eq_" + tag + ".dbts";
  options.checkpoint_every = 3;
  if (instrument) {
    options.metrics_out = ::testing::TempDir() + "/obs_eq_" + tag + ".jsonl";
  }
  train::Trainer trainer(*model, opt, *train_set, *val_set, options);
  trainer.run();

  if (instrument) obs::set_profiling_enabled(false);
  if (trace) obs::set_tracing_enabled(false);
  util::set_num_threads(1);

  RunArtifacts out;
  for (auto* p : params) {
    const float* w = p->var.value().data();
    out.weights.insert(out.weights.end(), w, w + p->numel());
  }
  out.checkpoint_bytes = util::read_file(options.checkpoint_path);
  if (instrument) out.metrics_bytes = util::read_file(options.metrics_out);
  return out;
}

::testing::AssertionResult weights_bitwise_equal(
    const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "weight count mismatch: " << a.size() << " vs " << b.size();
  }
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a[i], &b[i], sizeof(float)) != 0) {
        return ::testing::AssertionFailure()
               << "first bit difference at weight " << i << ": " << a[i]
               << " vs " << b[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

class ObsEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::set_num_threads(1);
    obs::set_profiling_enabled(false);
    obs::reset_profile();
    obs::set_tracing_enabled(false);
    obs::reset_trace();
  }
  void TearDown() override {
    util::set_num_threads(1);
    obs::set_profiling_enabled(false);
    obs::reset_profile();
    obs::set_tracing_enabled(false);
    obs::reset_trace();
  }
};

TEST_F(ObsEquivalenceTest, InstrumentationIsBitwiseInvisible) {
  const RunArtifacts bare1 = run_training(1, false, "bare1");
  for (int threads : {1, 2}) {
    const std::string tag = "inst" + std::to_string(threads);
    const RunArtifacts inst = run_training(threads, true, tag);
    EXPECT_TRUE(weights_bitwise_equal(bare1.weights, inst.weights))
        << "instrumented @" << threads << " threads";
    EXPECT_EQ(bare1.checkpoint_bytes, inst.checkpoint_bytes)
        << "checkpoint bytes differ with instrumentation @" << threads;
    EXPECT_FALSE(inst.metrics_bytes.empty());
  }
}

TEST_F(ObsEquivalenceTest, BareParallelRunStaysBitwiseIdenticalToo) {
  // Guards the other direction: 2 uninstrumented threads still match the
  // serial reference, so the obs wiring did not break the PR-1 contract.
  const RunArtifacts bare1 = run_training(1, false, "pbare1");
  const RunArtifacts bare2 = run_training(2, false, "pbare2");
  EXPECT_TRUE(weights_bitwise_equal(bare1.weights, bare2.weights));
  EXPECT_EQ(bare1.checkpoint_bytes, bare2.checkpoint_bytes);
}

TEST_F(ObsEquivalenceTest, TracingIsBitwiseInvisibleToTraining) {
  const RunArtifacts bare1 = run_training(1, false, "tbare1");
  for (int threads : {1, 2}) {
    const std::string tag = "trace" + std::to_string(threads);
    const RunArtifacts traced =
        run_training(threads, false, tag, /*trace=*/true);
    EXPECT_TRUE(weights_bitwise_equal(bare1.weights, traced.weights))
        << "traced @" << threads << " threads";
    EXPECT_EQ(bare1.checkpoint_bytes, traced.checkpoint_bytes)
        << "checkpoint bytes differ with tracing @" << threads;
    // The run really was traced — the invisibility is not vacuous.
    EXPECT_FALSE(obs::TraceCollector::collect().spans.empty());
  }
}

/// Serves the same seeded inputs and returns every output tensor's raw
/// bytes, concatenated in request order.
std::string serve_outputs(const std::string& dir, int threads, bool trace) {
  obs::reset_trace();
  obs::set_tracing_enabled(trace);
  serve::ServerConfig config;
  config.threads = threads;
  config.batch.max_batch = 4;
  config.cache.dir = dir;
  config.default_deadline_us = 10'000'000;
  serve::InferenceServer server(config);

  constexpr int kRequests = 16;
  std::vector<std::shared_ptr<serve::ResponseSlot>> slots;
  for (int i = 0; i < kRequests; ++i) {
    rng::Xorshift128 rng(7000 + i);
    tensor::Tensor input({1, 12});
    for (std::int64_t k = 0; k < input.numel(); ++k) {
      input[k] = rng.uniform(-1, 1);
    }
    slots.push_back(server.submit("m0", input));
  }
  std::string bytes;
  for (auto& slot : slots) {
    EXPECT_TRUE(slot->wait_us(10'000'000));
    EXPECT_EQ(slot->outcome(), serve::Outcome::kOk) << slot->error();
    const tensor::Tensor& out = slot->output();
    bytes.append(reinterpret_cast<const char*>(out.data()),
                 static_cast<std::size_t>(out.numel()) * sizeof(float));
  }
  server.stop();
  obs::set_tracing_enabled(false);
  return bytes;
}

TEST_F(ObsEquivalenceTest, TracingIsBitwiseInvisibleToServing) {
  const std::string dir = ::testing::TempDir() + "obs_eq_variants";
  ::mkdir(dir.c_str(), 0755);
  {
    // A tiny MLP variant is enough; reuse the training-free store recipe
    // from serve_test: perturb a few weights so the store is nontrivial.
    nn::models::Mlp mlp(12, {8}, 4, 10);
    auto params = mlp.collect_parameters();
    rng::Xorshift128 rng(10 ^ 0x5eedF00dULL);
    for (nn::Parameter* p : params) {
      tensor::Tensor& v = p->var.value();
      for (int k = 0; k < 5 && k < v.numel(); ++k) {
        v[rng.next_u64() % static_cast<std::uint64_t>(v.numel())] +=
            rng.uniform(0.2F, 0.9F);
      }
    }
    core::SparseWeightStore::from_params(params).save_file(dir + "/m0.dbsw");
  }
  for (int threads : {1, 2}) {
    const std::string bare = serve_outputs(dir, threads, false);
    const std::string traced = serve_outputs(dir, threads, true);
    ASSERT_FALSE(bare.empty());
    EXPECT_EQ(bare, traced) << "served bytes differ with tracing @"
                            << threads << " threads";
    // And the traced pass actually recorded spans.
    EXPECT_FALSE(obs::TraceCollector::collect().spans.empty());
  }
}

TEST_F(ObsEquivalenceTest, StreamCarriesChurnAndLatency) {
  const RunArtifacts inst = run_training(1, true, "stream");
  ASSERT_FALSE(inst.metrics_bytes.empty());
  int steps = 0, summaries = 0;
  bool churn_seen = false, latency_seen = false;
  std::size_t pos = 0;
  while (pos < inst.metrics_bytes.size()) {
    std::size_t end = inst.metrics_bytes.find('\n', pos);
    if (end == std::string::npos) end = inst.metrics_bytes.size();
    const std::string line = inst.metrics_bytes.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    const auto rec = obs::parse_flat_object(line);  // throws on corruption
    const std::string& type = rec.at("type").string;
    if (type == "step") {
      ++steps;
      if (rec.at("churn_in").type == obs::JsonValue::Type::kNumber &&
          rec.at("tracked").number > 0) {
        churn_seen = true;
      }
      if (rec.at("step_ms").number > 0 &&
          rec.at("forward_ms").type == obs::JsonValue::Type::kNumber) {
        latency_seen = true;
      }
    } else if (type == "summary") {
      ++summaries;
      EXPECT_EQ(rec.at("steps").number, static_cast<double>(steps));
    }
  }
  EXPECT_EQ(steps, 8);  // 64 samples / batch 16 * 2 epochs
  EXPECT_EQ(summaries, 1);
  EXPECT_TRUE(churn_seen);
  EXPECT_TRUE(latency_seen);
}

TEST_F(ObsEquivalenceTest, ProfileAttributesTrainingRegions) {
  run_training(1, true, "profile");
  const obs::ProfileReport report = obs::collect_profile();
  ASSERT_NE(report.find("step"), nullptr);
  for (const char* region :
       {"step/forward", "step/backward", "step/optimizer_step"}) {
    EXPECT_NE(report.find(region), nullptr) << region;
  }
  EXPECT_GE(report.child_coverage("step"), 0.9);
}

}  // namespace
}  // namespace dropback
