// End-to-end tracing through the live inference server (ISSUE 8 acceptance):
// with tracing enabled, every admitted request's segment spans (queue_wait /
// batch_form / resolve / exec / deliver) tile its submit->deliver window, so
// summing them reproduces the slot's reported latency exactly — the
// "latency accounted within 1ms" criterion holds by construction. Also
// proves the export is Perfetto-shaped (parseable Chrome trace JSON), that
// detail spans (forward, cold-load) land in a request's trace, and that
// disabled tracing records nothing and stamps no slot trace ids.
// Concurrent submitters go through util::ThreadPool (docs/PARALLELISM.md).
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "nn/models/lenet.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rng/xorshift.hpp"
#include "util/steady_clock.hpp"

namespace dropback::serve {
namespace {

namespace T = dropback::tensor;

T::Tensor random_input(std::uint64_t seed) {
  rng::Xorshift128 rng(seed);
  T::Tensor t({1, 12});
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(-1, 1);
  return t;
}

core::SparseWeightStore small_store(std::uint64_t seed) {
  nn::models::Mlp model(12, {8}, 4, seed);
  auto params = model.collect_parameters();
  rng::Xorshift128 rng(seed ^ 0x5eedF00dULL);
  for (nn::Parameter* p : params) {
    T::Tensor& v = p->var.value();
    for (int k = 0; k < 5 && k < v.numel(); ++k) {
      v[rng.next_u64() % static_cast<std::uint64_t>(v.numel())] +=
          rng.uniform(0.2F, 0.9F);
    }
  }
  return core::SparseWeightStore::from_params(params);
}

std::string variant_dir() {
  const std::string dir = ::testing::TempDir() + "serve_trace_variants";
  ::mkdir(dir.c_str(), 0755);
  small_store(10).save_file(dir + "/m0.dbsw");
  return dir;
}

// The five segment names the server chains back-to-back per request; detail
// spans (forward, variant_load, ...) overlap these and are excluded from
// the tiling sum.
bool is_segment(const std::string& name) {
  static const std::set<std::string> kSegments = {
      "queue_wait", "batch_form", "resolve", "exec", "deliver"};
  return kSegments.count(name) != 0;
}

class ServeTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::global().reset();
    obs::set_trace_ring_capacity(8192);
    obs::reset_trace();
    obs::set_tracing_enabled(true);
  }
  void TearDown() override {
    obs::set_tracing_enabled(false);
    obs::set_trace_ring_capacity(4096);
    obs::reset_trace();
  }
};

TEST_F(ServeTraceTest, SegmentsAccountForEveryRequestLatencyExactly) {
  const std::string dir = variant_dir();
  ServerConfig config;
  config.threads = 2;
  config.batch.max_batch = 4;
  config.cache.dir = dir;
  config.default_deadline_us = 10'000'000;
  InferenceServer server(config);

  constexpr int kRequests = 32;
  std::vector<std::shared_ptr<ResponseSlot>> slots;
  for (int i = 0; i < kRequests; ++i) {
    slots.push_back(server.submit("m0", random_input(300 + i)));
  }
  for (auto& slot : slots) {
    ASSERT_TRUE(slot->wait_us(10'000'000));
    ASSERT_EQ(slot->outcome(), Outcome::kOk) << slot->error();
    EXPECT_NE(slot->trace_id(), 0U);
  }
  server.stop();  // quiescence: workers joined before collect()

  const obs::TraceSnapshot snap = obs::TraceCollector::collect();
  EXPECT_EQ(snap.dropped, 0U);
  const std::string json = obs::TraceCollector::export_json(snap);

  // Perfetto-loadable shape, and the reader round-trips it.
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  const std::vector<obs::SpanRecord> spans = obs::parse_chrome_trace(json);
  ASSERT_FALSE(spans.empty());

  std::map<std::uint64_t, std::int64_t> segment_sum;
  std::set<std::uint64_t> traces_with_forward;
  for (const auto& span : spans) {
    if (is_segment(span.name)) segment_sum[span.trace_id] += span.dur_us;
    if (span.name == "forward") traces_with_forward.insert(span.trace_id);
  }

  // The acceptance identity: per request, segment durations sum to the
  // slot's reported latency. Exact, not just within 1ms — the segments are
  // chained end-to-start from the submit stamp the latency derives from.
  for (int i = 0; i < kRequests; ++i) {
    const auto it = segment_sum.find(slots[i]->trace_id());
    ASSERT_NE(it, segment_sum.end()) << "request " << i << " left no spans";
    EXPECT_EQ(it->second, slots[i]->latency_us()) << "request " << i;
  }

  // Detail spans joined the right traces: at least one request's trace has
  // the kernel "forward" span, and the cold load left a variant_load span.
  EXPECT_FALSE(traces_with_forward.empty());
  bool saw_cold_load = false;
  for (const auto& span : spans) {
    if (span.name == "variant_load") saw_cold_load = true;
  }
  EXPECT_TRUE(saw_cold_load);
}

TEST_F(ServeTraceTest, ShedRequestsAreFullyAccountedToo) {
  const std::string dir = variant_dir();
  util::ManualClock clock;
  ServerConfig config;
  config.threads = 1;
  config.cache.dir = dir;
  config.clock = &clock;
  config.default_deadline_us = 100;  // everything expires in the queue
  // The worker races the advance_us below: if it pops and executes the
  // request while the manual clock still reads 0, the deadline has not
  // expired and the outcome is kOk. Gate execution on the clock having
  // moved (ManualClock is atomic) so the shed is deterministic: whichever
  // of the queue / pre-exec / post-exec deadline gates runs first sees the
  // expired deadline.
  config.chaos_hook = [&clock](const char* stage) {
    if (std::string_view(stage) == "exec") {
      while (clock.now_us() < 1'000) {
      }
    }
  };
  InferenceServer server(config);

  auto slot = server.submit("m0", random_input(1));
  clock.advance_us(1'000);  // past the deadline before any worker pops it
  ASSERT_TRUE(slot->wait_us(10'000'000));
  EXPECT_TRUE(is_shed(slot->outcome()));
  server.stop();

  // Even a shed request's spans tile submit -> deliver exactly.
  std::int64_t sum = 0;
  bool any = false;
  for (const auto& span : obs::TraceCollector::collect().spans) {
    if (span.trace_id == slot->trace_id() && is_segment(span.name)) {
      sum += span.dur_us;
      any = true;
    }
  }
  ASSERT_TRUE(any);
  EXPECT_EQ(sum, slot->latency_us());
}

TEST_F(ServeTraceTest, DisabledTracingLeavesNoTrace) {
  obs::set_tracing_enabled(false);
  const std::string dir = variant_dir();
  ServerConfig config;
  config.threads = 1;
  config.cache.dir = dir;
  InferenceServer server(config);

  auto slot = server.submit("m0", random_input(2));
  ASSERT_TRUE(slot->wait_us(10'000'000));
  ASSERT_EQ(slot->outcome(), Outcome::kOk) << slot->error();
  EXPECT_EQ(slot->trace_id(), 0U);
  server.stop();

  EXPECT_TRUE(obs::TraceCollector::collect().spans.empty());
}

}  // namespace
}  // namespace dropback::serve
