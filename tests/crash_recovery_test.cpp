// Crash-recovery suite: kill-and-resume bitwise equivalence, fault-injected
// checkpoint writes, and full-training-snapshot integrity.
//
// The contract under test (docs/ROBUSTNESS.md): a training run that is
// killed at any point and resumed from its last snapshot follows the exact
// trajectory of the uninterrupted run — bitwise, at any thread count — and
// every injected write fault leaves either a loadable previous checkpoint or
// raises a typed util::IoError at load time.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/dropback_optimizer.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/models/lenet.hpp"
#include "optim/momentum.hpp"
#include "train/dropback_session.hpp"
#include "train/trainer.hpp"
#include "train/training_checkpoint.hpp"
#include "util/atomic_file.hpp"
#include "util/container.hpp"
#include "util/fault_injection.hpp"
#include "util/io_error.hpp"

namespace dropback::train {
namespace {

struct TinyTask {
  std::unique_ptr<data::InMemoryDataset> train_set;
  std::unique_ptr<data::InMemoryDataset> val_set;
};

TinyTask make_task(std::int64_t n_train = 96, std::int64_t n_val = 32) {
  data::SyntheticMnistOptions opt;
  opt.num_samples = n_train;
  opt.seed = 1;
  TinyTask task;
  task.train_set = data::make_synthetic_mnist(opt);
  opt.num_samples = n_val;
  opt.seed = 2;
  task.val_set = data::make_synthetic_mnist(opt);
  return task;
}

/// Thrown by an after_step hook to emulate SIGKILL between two steps.
struct KillSignal {};

std::vector<float> flat_weights(const std::vector<nn::Parameter*>& params) {
  std::vector<float> all;
  for (const nn::Parameter* p : params) {
    const float* w = p->var.value().data();
    all.insert(all.end(), w, w + p->numel());
  }
  return all;
}

void expect_bitwise_equal(const std::vector<float>& a,
                          const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "weight " << i;
  }
}

void expect_history_bitwise_equal(const TrainResult& a, const TrainResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t e = 0; e < a.history.size(); ++e) {
    ASSERT_EQ(a.history[e].epoch, b.history[e].epoch);
    ASSERT_EQ(a.history[e].train_loss, b.history[e].train_loss)
        << "epoch " << e;
    ASSERT_EQ(a.history[e].train_acc, b.history[e].train_acc) << "epoch " << e;
    ASSERT_EQ(a.history[e].val_acc, b.history[e].val_acc) << "epoch " << e;
    ASSERT_EQ(a.history[e].lr, b.history[e].lr) << "epoch " << e;
  }
  ASSERT_EQ(a.best_val_acc, b.best_val_acc);
  ASSERT_EQ(a.best_epoch, b.best_epoch);
}

TrainConfig base_options(const std::string& checkpoint_path,
                          std::int64_t threads) {
  TrainConfig options;
  options.epochs = 3;
  options.batch_size = 16;
  options.checkpoint_path = checkpoint_path;
  options.checkpoint_every = 2;
  options.threads = threads;
  return options;
}

struct RunOutput {
  std::vector<float> weights;
  TrainResult result;
};

/// Uninterrupted DropBack reference run. Checkpointing stays enabled so both
/// runs do identical work (snapshot writes must not perturb the trajectory).
RunOutput reference_run(const TinyTask& task, const std::string& ckpt,
                        std::int64_t threads) {
  auto model = nn::models::make_mnist_100_100(7);
  core::DropBackConfig config;
  config.budget = 4000;
  config.freeze_after_steps = 8;
  core::DropBackOptimizer opt(model->collect_parameters(), 0.1F, config);
  Trainer trainer(*model, opt, *task.train_set, *task.val_set,
                  base_options(ckpt, threads));
  RunOutput out;
  out.result = trainer.run();
  out.weights = flat_weights(model->collect_parameters());
  return out;
}

/// Kills the run via an after_step hook at `kill_at_step`, then resumes from
/// the snapshot with a brand-new model/optimizer/trainer ("new process").
RunOutput killed_and_resumed_run(const TinyTask& task, const std::string& ckpt,
                                 std::int64_t threads,
                                 std::int64_t kill_at_step) {
  {
    auto model = nn::models::make_mnist_100_100(7);
    core::DropBackConfig config;
    config.budget = 4000;
    config.freeze_after_steps = 8;
    core::DropBackOptimizer opt(model->collect_parameters(), 0.1F, config);
    Trainer trainer(*model, opt, *task.train_set, *task.val_set,
                    base_options(ckpt, threads));
    trainer.after_step = [kill_at_step](std::int64_t step) {
      if (step == kill_at_step) throw KillSignal{};
    };
    EXPECT_THROW(trainer.run(), KillSignal);
  }
  // Fresh everything with a different init seed: the snapshot must overwrite
  // all of it, or the comparison below fails.
  auto model = nn::models::make_mnist_100_100(12345);
  core::DropBackConfig config;
  config.budget = 4000;
  config.freeze_after_steps = 8;
  core::DropBackOptimizer opt(model->collect_parameters(), 0.1F, config);
  TrainConfig options = base_options(ckpt, threads);
  options.resume = true;
  Trainer trainer(*model, opt, *task.train_set, *task.val_set, options);
  RunOutput out;
  out.result = trainer.run();
  out.weights = flat_weights(model->collect_parameters());
  return out;
}

class KillResumeSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(KillResumeSweep, BitwiseEqualToUninterruptedRun) {
  const auto [threads, kill_at_step] = GetParam();
  const auto task = make_task();
  const std::string dir = ::testing::TempDir();
  const std::string suffix =
      std::to_string(threads) + "_" + std::to_string(kill_at_step) + ".dbts";
  const std::string ref_ckpt = dir + "/ref_" + suffix;
  const std::string killed_ckpt = dir + "/killed_" + suffix;
  std::remove(ref_ckpt.c_str());
  std::remove(killed_ckpt.c_str());
  const RunOutput ref = reference_run(task, ref_ckpt, threads);
  const RunOutput resumed =
      killed_and_resumed_run(task, killed_ckpt, threads, kill_at_step);
  expect_bitwise_equal(ref.weights, resumed.weights);
  expect_history_bitwise_equal(ref.result, resumed.result);
}

// 96 samples / batch 16 = 6 steps per epoch, snapshots every 2 steps. Kill
// mid-epoch between snapshots (step 3), right on a snapshot step (4), and
// just after the epoch-0 boundary (7) — each at 1 and 2 threads.
INSTANTIATE_TEST_SUITE_P(
    Kills, KillResumeSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 2),
                       ::testing::Values<std::int64_t>(3, 4, 7)));

TEST(CrashRecovery, ResumeWithMissingFileStartsFresh) {
  const auto task = make_task();
  const std::string ckpt = ::testing::TempDir() + "/never_written.dbts";
  std::remove(ckpt.c_str());
  auto model = nn::models::make_mnist_100_100(7);
  optim::SGD opt(model->collect_parameters(), 0.1F);
  TrainConfig options = base_options(ckpt, 1);
  options.resume = true;  // nothing to resume from: same as a fresh run
  Trainer trainer(*model, opt, *task.train_set, *task.val_set, options);
  const auto result = trainer.run();
  EXPECT_EQ(result.history.size(), 3U);
}

TEST(CrashRecovery, MomentumStateSurvivesKillAndResume) {
  // Same contract with a stateful baseline optimizer: the velocity buffers
  // ride in the snapshot's optimizer section.
  const auto task = make_task();
  const std::string dir = ::testing::TempDir();
  const std::string ref_ckpt = dir + "/mom_ref.dbts";
  const std::string killed_ckpt = dir + "/mom_killed.dbts";
  std::remove(ref_ckpt.c_str());
  std::remove(killed_ckpt.c_str());

  auto run = [&](const std::string& ckpt, std::int64_t kill_at) -> RunOutput {
    auto model = nn::models::make_mnist_100_100(7);
    optim::MomentumSGD opt(model->collect_parameters(), 0.05F, 0.9F);
    Trainer trainer(*model, opt, *task.train_set, *task.val_set,
                    base_options(ckpt, 1));
    RunOutput out;
    if (kill_at < 0) {
      out.result = trainer.run();
      out.weights = flat_weights(model->collect_parameters());
      return out;
    }
    trainer.after_step = [kill_at](std::int64_t step) {
      if (step == kill_at) throw KillSignal{};
    };
    EXPECT_THROW(trainer.run(), KillSignal);
    auto model2 = nn::models::make_mnist_100_100(999);
    optim::MomentumSGD opt2(model2->collect_parameters(), 0.05F, 0.9F);
    TrainConfig options = base_options(ckpt, 1);
    options.resume = true;
    Trainer resumed(*model2, opt2, *task.train_set, *task.val_set, options);
    out.result = resumed.run();
    out.weights = flat_weights(model2->collect_parameters());
    return out;
  };
  const RunOutput ref = run(ref_ckpt, -1);
  const RunOutput resumed = run(killed_ckpt, 5);
  expect_bitwise_equal(ref.weights, resumed.weights);
  expect_history_bitwise_equal(ref.result, resumed.result);
}

// --- fault injection on the snapshot write path ----------------------------

struct SnapshotFixture {
  std::unique_ptr<nn::models::Mlp> model;
  std::unique_ptr<optim::SGD> opt;
  std::unique_ptr<data::InMemoryDataset> dataset;
  std::unique_ptr<data::DataLoader> loader;
  TrainerSnapshot snap;

  explicit SnapshotFixture(std::uint64_t seed = 7) {
    model = nn::models::make_mnist_100_100(seed);
    opt = std::make_unique<optim::SGD>(model->collect_parameters(), 0.1F);
    data::SyntheticMnistOptions data_opt;
    data_opt.num_samples = 32;
    dataset = data::make_synthetic_mnist(data_opt);
    loader = std::make_unique<data::DataLoader>(*dataset, 8, true, 42);
    snap.global_step = 11;
    snap.epoch = 2;
    snap.lr = 0.05F;
  }

  void save(const std::string& path) const {
    save_training_snapshot(path, snap, model->collect_parameters(), *opt,
                           *loader);
  }
  TrainerSnapshot load(const std::string& path) {
    return load_training_snapshot(path, model->collect_parameters(), *opt,
                                  *loader);
  }
};

class FaultKindSweep : public ::testing::TestWithParam<util::FaultKind> {};

TEST_P(FaultKindSweep, FaultedSaveLeavesLoadableStateOrTypedError) {
  const util::FaultKind kind = GetParam();
  SnapshotFixture fix;
  const std::string path = ::testing::TempDir() + "/faulted_" +
                           std::to_string(static_cast<int>(kind)) + ".dbts";
  std::remove(path.c_str());
  fix.save(path);  // good snapshot at step 11

  fix.snap.global_step = 23;
  util::arm_fault({kind, 64});
  switch (kind) {
    case util::FaultKind::kShortWrite:
    case util::FaultKind::kEnospc:
      // Clean abort: typed error, previous snapshot untouched.
      EXPECT_THROW(fix.save(path), util::IoError);
      break;
    case util::FaultKind::kCrash:
      // Hard kill mid-write: escapes as SimulatedCrash (never IoError, so
      // production retry loops cannot swallow it); previous file intact.
      EXPECT_THROW(fix.save(path), util::SimulatedCrash);
      break;
    case util::FaultKind::kFlipByte: {
      // The write "succeeds" but the bytes rot in flight: the container CRC
      // turns the silent corruption into a typed load error.
      fix.save(path);
      EXPECT_THROW(fix.load(path), util::IoError);
      util::disarm_fault();
      return;  // rename landed, so the previous snapshot is gone by design
    }
    case util::FaultKind::kNone:
    case util::FaultKind::kShortRead:
    case util::FaultKind::kReadError:
    case util::FaultKind::kStall:
      break;  // read-side kinds never fire on the save path
  }
  util::disarm_fault();
  const TrainerSnapshot recovered = fix.load(path);
  EXPECT_EQ(recovered.global_step, 11);
  EXPECT_EQ(recovered.epoch, 2);
}

INSTANTIATE_TEST_SUITE_P(Faults, FaultKindSweep,
                         ::testing::Values(util::FaultKind::kShortWrite,
                                           util::FaultKind::kEnospc,
                                           util::FaultKind::kCrash,
                                           util::FaultKind::kFlipByte));

TEST(CrashRecovery, CrashDuringCheckpointLeavesPreviousSnapshotAndResumes) {
  // Arm a crash that fires during one of the trainer's own snapshot writes:
  // the run dies mid-write, the previous snapshot survives, and resuming
  // from it still reproduces the uninterrupted run bitwise.
  const auto task = make_task();
  const std::string dir = ::testing::TempDir();
  const std::string ref_ckpt = dir + "/crashwrite_ref.dbts";
  const std::string ckpt = dir + "/crashwrite.dbts";
  std::remove(ref_ckpt.c_str());
  std::remove(ckpt.c_str());
  const RunOutput ref = reference_run(task, ref_ckpt, 1);
  {
    auto model = nn::models::make_mnist_100_100(7);
    core::DropBackConfig config;
    config.budget = 4000;
    config.freeze_after_steps = 8;
    core::DropBackOptimizer opt(model->collect_parameters(), 0.1F, config);
    Trainer trainer(*model, opt, *task.train_set, *task.val_set,
                    base_options(ckpt, 1));
    trainer.after_step = [](std::int64_t step) {
      // Snapshots land at steps 2, 4, 6, ... — arm after step 5 so the
      // step-6 write dies mid-file.
      if (step == 5) util::arm_fault({util::FaultKind::kCrash, 96});
    };
    EXPECT_THROW(trainer.run(), util::SimulatedCrash);
  }
  {
    // What is on disk is the intact step-4 snapshot, not step-6 debris.
    auto probe_model = nn::models::make_mnist_100_100(7);
    core::DropBackConfig probe_config;
    probe_config.budget = 4000;
    probe_config.freeze_after_steps = 8;
    core::DropBackOptimizer probe_opt(probe_model->collect_parameters(), 0.1F,
                                      probe_config);
    data::DataLoader probe_loader(*task.train_set, 16, true, 0xDA7A);
    const TrainerSnapshot snap = load_training_snapshot(
        ckpt, probe_model->collect_parameters(), probe_opt, probe_loader);
    EXPECT_EQ(snap.global_step, 4);
  }
  auto model = nn::models::make_mnist_100_100(321);
  core::DropBackConfig config;
  config.budget = 4000;
  config.freeze_after_steps = 8;
  core::DropBackOptimizer opt(model->collect_parameters(), 0.1F, config);
  TrainConfig options = base_options(ckpt, 1);
  options.resume = true;
  Trainer trainer(*model, opt, *task.train_set, *task.val_set, options);
  const TrainResult result = trainer.run();
  expect_bitwise_equal(ref.weights, flat_weights(model->collect_parameters()));
  expect_history_bitwise_equal(ref.result, result);
}

TEST(CrashRecovery, SnapshotRejectsModelMismatch) {
  SnapshotFixture small;
  const std::string path = ::testing::TempDir() + "/mismatch.dbts";
  std::remove(path.c_str());
  small.save(path);
  auto lenet = nn::models::make_lenet_300_100(3);
  optim::SGD opt(lenet->collect_parameters(), 0.1F);
  data::SyntheticMnistOptions data_opt;
  data_opt.num_samples = 32;
  auto dataset = data::make_synthetic_mnist(data_opt);
  data::DataLoader loader(*dataset, 8, true, 42);
  EXPECT_THROW(
      load_training_snapshot(path, lenet->collect_parameters(), opt, loader),
      util::IoError);
}

TEST(CrashRecovery, SnapshotRejectsLoaderMismatch) {
  SnapshotFixture fix;
  const std::string path = ::testing::TempDir() + "/loader_mismatch.dbts";
  std::remove(path.c_str());
  fix.save(path);
  // Same model, different batch size: the loader section must refuse.
  data::DataLoader other(*fix.dataset, 16, true, 42);
  EXPECT_THROW(load_training_snapshot(path, fix.model->collect_parameters(),
                                      *fix.opt, other),
               util::IoError);
}

TEST(CrashRecovery, SnapshotWithLegacyV1LoaderSectionStillResumes) {
  // Pre-prefetch builds wrote the loader section in the unversioned "DBDL"
  // layout (no epoch counter). A snapshot carrying that layout must still
  // load into the new loader: same position, epoch restored as 0.
  SnapshotFixture fix;
  const std::string path = ::testing::TempDir() + "/legacy_loader.dbts";
  std::remove(path.c_str());
  fix.save(path);

  // Rewrite the snapshot, replacing only the loader section with
  // hand-written v1 bytes: magic, size, batch, shuffle, RNG state, cursor,
  // order — exactly the seed repo's format.
  const std::string original = util::read_file(path);
  std::istringstream in(original, std::ios::binary);
  const auto reader = util::ContainerReader::read_from(in, "DBTS");
  util::ContainerWriter writer("DBTS");
  std::vector<std::int64_t> order(32);
  for (std::int64_t i = 0; i < 32; ++i) order[static_cast<std::size_t>(i)] =
      31 - i;  // reversed, so resume order is observable
  for (std::size_t i = 0; i < reader.num_sections(); ++i) {
    std::ostream& out = writer.add_section(reader.section_name(i));
    if (reader.section_name(i) != "loader") {
      out << reader.section_bytes(i);
      continue;
    }
    const auto put = [&out](const auto& v) {
      out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    out.write("DBDL", 4);
    put(std::int64_t{32});  // dataset size
    put(std::int64_t{8});   // batch size
    put(std::uint8_t{1});   // shuffle
    rng::Xorshift128 rng(123);
    const rng::Xorshift128::State rs = rng.state();
    put(rs.x);
    put(rs.y);
    put(rs.z);
    put(rs.w);
    put(std::uint8_t{0});
    put(0.0F);
    put(std::int64_t{16});  // cursor: two of four batches consumed
    for (const std::int64_t idx : order) put(idx);
  }
  util::atomic_write_file(path,
                          [&](std::ostream& out) { writer.write_to(out); });

  // Load into a loader built with prefetch enabled — the migration target.
  data::DataLoaderOptions loader_options;
  loader_options.batch_size = 8;
  loader_options.shuffle = true;
  loader_options.seed = 42;
  loader_options.prefetch_batches = 1;
  data::DataLoader loader(*fix.dataset, loader_options);
  const TrainerSnapshot snap = load_training_snapshot(
      path, fix.model->collect_parameters(), *fix.opt, loader);
  EXPECT_EQ(snap.global_step, 11);
  EXPECT_EQ(snap.epoch, 2);
  EXPECT_EQ(loader.epoch(), 0);  // v1 predates the epoch counter

  // The run resumes at order[16] = 15, 14, ... — the old order and cursor.
  data::Batch batch;
  ASSERT_TRUE(loader.next(batch));
  ASSERT_EQ(batch.size(), 8);
  for (std::int64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(batch.labels[static_cast<std::size_t>(i)],
              fix.dataset->label(15 - i));
  }
  std::int64_t remaining = batch.size();
  while (loader.next(batch)) remaining += batch.size();
  EXPECT_EQ(remaining, 16);
}

TEST(CrashRecovery, SessionTrainingStateSurvivesEnospc) {
  const auto task = make_task(32, 16);
  auto model = nn::models::make_mnist_100_100(5);
  DropBackSession::Options options;
  options.train.budget_schedule = optim::constant_budget(2000);
  options.train.epochs = 1;
  options.train.batch_size = 16;
  DropBackSession session(*model, options);
  session.fit(*task.train_set, *task.val_set);
  const std::string path = ::testing::TempDir() + "/session_state.dbss";
  std::remove(path.c_str());
  session.save_training_state(path);

  util::arm_fault({util::FaultKind::kEnospc, 32});
  EXPECT_THROW(session.save_training_state(path), util::IoError);
  util::disarm_fault();
  // The earlier state file is still there and still loads.
  session.load_training_state(path);
}

TEST(CrashRecovery, FaultSpecParsing) {
  const util::FaultSpec spec = util::parse_fault_spec("crash:128");
  EXPECT_EQ(spec.kind, util::FaultKind::kCrash);
  EXPECT_EQ(spec.at_byte, 128);
  EXPECT_THROW(util::parse_fault_spec("melt:1"), std::invalid_argument);
  EXPECT_THROW(util::parse_fault_spec("crash"), std::invalid_argument);
  EXPECT_THROW(util::parse_fault_spec("crash:-3"), std::invalid_argument);
  EXPECT_THROW(util::parse_fault_spec("crash:12x"), std::invalid_argument);
}

}  // namespace
}  // namespace dropback::train
