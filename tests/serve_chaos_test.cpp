// Chaos test for the inference server (the tentpole acceptance test,
// docs/SERVING.md): sustain ~2x the measured service capacity for a fixed
// window while read faults fire continuously and a permanently corrupt
// variant is in rotation, then prove:
//   * zero crashes — every submitted request resolves with a typed Outcome
//     (the process surviving IS the headline assertion; under
//     -DDROPBACK_SANITIZE=thread this test also gates on TSan findings);
//   * bounded p99 — every kOk was delivered within its deadline (strict
//     deadline semantics), so the ok-latency p99 is bounded by the deadline
//     plus a small delivery-window slack;
//   * accurate accounting — submitted == admitted + rejected and
//     admitted == ok + shed + unavailable hold exactly; shed/degraded/
//     quarantined show up in both the metrics registry and the JSONL
//     event stream.
// Single-threaded driver: the overload, fault re-arming, and result checks
// all run on the main thread (no raw threads; the server owns its workers).
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "nn/models/lenet.hpp"
#include "obs/event_stream.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "rng/xorshift.hpp"
#include "serve/server.hpp"
#include "util/atomic_file.hpp"
#include "util/fault_injection.hpp"
#include "util/steady_clock.hpp"

namespace dropback::serve {
namespace {

namespace T = dropback::tensor;

T::Tensor random_input(std::uint64_t seed) {
  rng::Xorshift128 rng(seed);
  T::Tensor t({1, 12});
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(-1, 1);
  return t;
}

core::SparseWeightStore small_store(std::uint64_t seed) {
  nn::models::Mlp model(12, {8}, 4, seed);
  auto params = model.collect_parameters();
  rng::Xorshift128 rng(seed * 977 + 1);
  for (nn::Parameter* p : params) {
    T::Tensor& v = p->var.value();
    for (int k = 0; k < 5 && k < v.numel(); ++k) {
      v[rng.next_u64() % static_cast<std::uint64_t>(v.numel())] +=
          rng.uniform(0.2F, 0.9F);
    }
  }
  return core::SparseWeightStore::from_params(params);
}

TEST(ServeChaos, TwoXOverloadWithFaultsNoCrashBoundedP99) {
  obs::MetricsRegistry::global().reset();
  const std::string dir = ::testing::TempDir() + "serve_chaos";
  ASSERT_TRUE(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST);
  const std::vector<std::string> models = {"m0", "m1", "m2", "m3"};
  for (std::size_t i = 0; i < models.size(); ++i) {
    small_store(50 + i).save_file(dir + "/" + models[i] + ".dbsw");
  }
  small_store(99).save_file(dir + "/fallback.dbsw");
  // One variant is corrupt for the whole run: every request for it rides
  // the quarantine -> fallback ladder and must come back degraded.
  {
    std::string bytes = util::read_file(dir + "/m3.dbsw");
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^
                                                0xFF);
    util::atomic_write_file(
        dir + "/m3.dbsw",
        [&](std::ostream& out) { out << bytes; });
  }

  constexpr std::int64_t kDeadlineUs = 50'000;
  auto events_sink = std::make_unique<obs::MemorySink>();
  obs::MemorySink* events = events_sink.get();
  obs::EventStream stream(std::move(events_sink));

  ServerConfig config;
  config.threads = 3;
  config.admission = {/*queue_capacity=*/48, /*max_inflight=*/64};
  config.batch.max_batch = 4;
  config.cache.dir = dir;
  config.cache.capacity = 2;  // < variant count: constant reload pressure
  config.cache.max_load_attempts = 2;
  config.cache.retry_backoff_us = 200;
  config.cache.quarantine_us = 20'000;
  config.cache.fallback_model = "fallback";
  config.default_deadline_us = kDeadlineUs;
  config.events = &stream;
  // The MLP forward is sub-microsecond, far too fast for an open-loop
  // driver on one thread to outrun three workers. The chaos hook gives
  // every batch execution a real, measurable cost so "2x the measured
  // service rate" is genuine sustained overload, not noise.
  util::ClockSource& clock = util::steady_clock_source();
  config.chaos_hook = [&clock](const char* stage) {
    if (std::string_view(stage) == "exec") clock.sleep_us(3'000);
  };
  InferenceServer server(config);

  // Phase A — measure pipelined service capacity: submit a burst that
  // keeps all workers busy, then divide the drain time across it. (A
  // serial closed loop would measure latency, not throughput, and "2x"
  // of that would still be under capacity.)
  constexpr int kProbe = 40;  // < queue_capacity: the probe is never shaped
  const std::int64_t probe_start = clock.now_us();
  {
    std::vector<std::shared_ptr<ResponseSlot>> probe;
    for (int i = 0; i < kProbe; ++i) {
      // Generous explicit deadline: the probe measures capacity and must
      // stay clean even on a sanitizer-slowed or loaded CI box.
      probe.push_back(
          server.submit(models[i % 3], random_input(i), 5'000'000));
    }
    for (const auto& slot : probe) ASSERT_TRUE(slot->wait_us(5'000'000));
    for (const auto& slot : probe) {
      ASSERT_EQ(slot->outcome(), Outcome::kOk) << outcome_name(
          slot->outcome());
    }
  }
  const std::int64_t per_request_us =
      std::max<std::int64_t>(1, (clock.now_us() - probe_start) / kProbe);

  // Phase B — open-loop overload at 2x measured capacity for a fixed
  // window, re-arming a rotating read fault throughout. Fire-and-forget:
  // slots are kept and checked after the storm.
  //
  // The probe can be inflated on a sanitizer-slowed or co-loaded host
  // (instrumented locks, cold variant loads), and pacing at half of an
  // inflated measurement sits below true capacity — the storm then never
  // sheds or rejects anything. The chaos hook bounds true service time
  // from below: 3ms per batch of <=4 across 3 workers is 250us/request,
  // so clamping the gap to half that floor keeps the offered load a
  // genuine overload no matter what the probe measured.
  const std::int64_t submit_gap_us =
      std::min<std::int64_t>(per_request_us / 2, 125);  // 2x offered load
  constexpr std::int64_t kStormUs = 400'000;
  std::vector<std::shared_ptr<ResponseSlot>> slots;
  const util::FaultSpec kFaults[] = {
      {util::FaultKind::kReadError, 0},
      {util::FaultKind::kShortRead, 32},
      {util::FaultKind::kStall, 1},
  };
  // Pace against absolute due-times: sleep_us oversleeps by tens of
  // microseconds per call, and naive sleep-per-iteration pacing would eat
  // the entire overload margin. Falling behind schedule self-corrects by
  // submitting back-to-back until caught up.
  const std::int64_t storm_start = clock.now_us();
  std::int64_t next_due_us = storm_start;
  for (std::uint64_t i = 0; clock.now_us() - storm_start < kStormUs; ++i) {
    const std::int64_t now = clock.now_us();
    if (now < next_due_us) clock.sleep_us(next_due_us - now);
    if (i % 16 == 0) util::arm_fault(kFaults[(i / 16) % 3]);
    slots.push_back(
        server.submit(models[i % models.size()], random_input(1000 + i)));
    next_due_us += submit_gap_us;
  }
  util::disarm_fault();

  // Zero crashes / zero stranded slots: everything resolves.
  for (std::size_t i = 0; i < slots.size(); ++i) {
    ASSERT_TRUE(slots[i]->wait_us(10'000'000)) << "request " << i;
    ASSERT_NE(slots[i]->outcome(), Outcome::kPending);
  }
  server.stop();

  // Accounting identities, exact.
  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(slots.size()) +
                             static_cast<std::uint64_t>(kProbe));
  EXPECT_EQ(s.submitted, s.admitted + s.rejected());
  EXPECT_EQ(s.admitted, s.ok + s.shed() + s.unavailable);

  // The overload and the corrupt variant actually bit: the robustness
  // machinery engaged (load was shaped and/or shed) and degraded serving
  // happened. m3 requests can never be clean-ok.
  EXPECT_GT(s.ok, 0U);
  EXPECT_GT(s.degraded, 0U);
  EXPECT_GT(s.rejected() + s.shed(), 0U);
  auto& reg = obs::MetricsRegistry::global();
  EXPECT_GE(reg.counter("serve.cache.quarantine").value(), 1U);

  // Bounded p99: strict deadline semantics make every kOk latency at most
  // deadline + the deliver window; assert with generous slack for CI noise.
  std::vector<std::int64_t> ok_latencies;
  for (const auto& slot : slots) {
    if (slot->outcome() == Outcome::kOk) {
      ok_latencies.push_back(slot->latency_us());
    }
  }
  if (!ok_latencies.empty()) {
    std::sort(ok_latencies.begin(), ok_latencies.end());
    const std::int64_t p99 =
        ok_latencies[ok_latencies.size() * 99 / 100];
    EXPECT_LE(p99, kDeadlineUs + 25'000);
  }

  // Telemetry joined up: the summary event totals match the registry and
  // incident lines parse as flat JSON with typed outcomes.
  stream.flush();
  ASSERT_FALSE(events->lines().empty());
  const auto summary = obs::parse_flat_object(events->lines().back());
  ASSERT_EQ(summary.at("type").string, "serve_summary");
  EXPECT_EQ(static_cast<std::uint64_t>(summary.at("submitted").number),
            s.submitted);
  EXPECT_EQ(static_cast<std::uint64_t>(summary.at("shed").number), s.shed());
  EXPECT_EQ(static_cast<std::uint64_t>(summary.at("degraded").number),
            s.degraded);
  EXPECT_GE(summary.at("quarantined").number, 1.0);
  bool saw_incident = false;
  for (const auto& line : events->lines()) {
    const auto record = obs::parse_flat_object(line);
    if (record.at("type").string == "serve_incident") {
      saw_incident = true;
      EXPECT_FALSE(record.at("outcome").string.empty());
    }
  }
  EXPECT_TRUE(saw_incident);

  // The metrics snapshot carries the serve counters for scrapers.
  EXPECT_NE(reg.snapshot_json().find("serve.submitted"), std::string::npos);
}

}  // namespace
}  // namespace dropback::serve
