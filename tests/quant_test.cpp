#include "quant/quantized_store.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "autograd/ops.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "rng/xorshift.hpp"

namespace dropback::quant {
namespace {

namespace T = dropback::tensor;
namespace ag = dropback::autograd;

core::SparseWeightStore trained_store(std::int64_t budget = 20) {
  nn::Sequential net;
  net.emplace<nn::Linear>(6, 8, 1);
  net.emplace<nn::Linear>(8, 4, 2);
  auto params = net.collect_parameters();
  core::DropBackConfig config;
  config.budget = budget;
  core::DropBackOptimizer opt(params, 0.1F, config);
  rng::Xorshift128 rng(3);
  for (int iter = 0; iter < 5; ++iter) {
    net.zero_grad();
    T::Tensor x({3, 6});
    for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-1, 1);
    ag::Variable input(x);
    ag::backward(ag::sum(ag::mul(net.forward(input), net.forward(input))));
    opt.step();
  }
  return core::SparseWeightStore::from_optimizer(opt);
}

TEST(QuantizedStore, PreservesStructure) {
  auto store = trained_store();
  auto q = QuantizedSparseStore::quantize(store, 8);
  EXPECT_EQ(q.num_params(), store.num_params());
  EXPECT_EQ(q.live_weights(), store.live_weights());
  EXPECT_EQ(q.dense_weights(), store.dense_weights());
  EXPECT_EQ(q.bits(), 8);
}

TEST(QuantizedStore, Int8ErrorBoundedByHalfStep) {
  auto store = trained_store();
  auto q = QuantizedSparseStore::quantize(store, 8);
  // Max error of symmetric quantization is scale/2 per record; take the
  // largest scale as the bound.
  float max_scale = 0.0F;
  for (std::size_t p = 0; p < q.num_params(); ++p) {
    max_scale = std::max(max_scale, q.record(p).scale);
  }
  EXPECT_LE(q.max_abs_error(store), max_scale * 0.5F + 1e-7F);
}

TEST(QuantizedStore, LowerBitsCoarserError) {
  auto store = trained_store();
  const double err8 =
      QuantizedSparseStore::quantize(store, 8).max_abs_error(store);
  const double err4 =
      QuantizedSparseStore::quantize(store, 4).max_abs_error(store);
  const double err2 =
      QuantizedSparseStore::quantize(store, 2).max_abs_error(store);
  EXPECT_LE(err8, err4 + 1e-9);
  EXPECT_LE(err4, err2 + 1e-9);
}

TEST(QuantizedStore, MaterializeOverlaysDequantizedEntries) {
  auto store = trained_store();
  auto q = QuantizedSparseStore::quantize(store, 8);
  for (std::size_t p = 0; p < q.num_params(); ++p) {
    const T::Tensor original = store.materialize(p);
    const T::Tensor dequant = q.materialize(p);
    ASSERT_EQ(original.shape(), dequant.shape());
    const auto& rec = q.record(p);
    // Untracked positions are bit-identical (regenerated, not quantized).
    std::size_t e = 0;
    for (std::int64_t i = 0; i < original.numel(); ++i) {
      const bool tracked =
          e < rec.entries.size() &&
          static_cast<std::int64_t>(rec.entries[e].first) == i;
      if (tracked) {
        EXPECT_NEAR(dequant[i], original[i], rec.scale * 0.5F + 1e-6F);
        ++e;
      } else {
        EXPECT_EQ(dequant[i], original[i]);
      }
    }
  }
}

TEST(QuantizedStore, BytesSmallerThanFloatStore) {
  auto store = trained_store(30);
  auto q = QuantizedSparseStore::quantize(store, 8);
  EXPECT_LT(q.bytes(), store.bytes());
  EXPECT_GT(q.compression_ratio_bytes(), 1.0);
}

TEST(QuantizedStore, SaveLoadRoundTrip) {
  auto store = trained_store();
  auto q = QuantizedSparseStore::quantize(store, 6);
  std::stringstream ss;
  q.save(ss);
  auto loaded = QuantizedSparseStore::load(ss);
  EXPECT_TRUE(q == loaded);
  EXPECT_EQ(loaded.bits(), 6);
}

TEST(QuantizedStore, LoadRejectsGarbage) {
  std::stringstream ss;
  ss << "garbage data here";
  EXPECT_THROW(QuantizedSparseStore::load(ss), std::runtime_error);
}

TEST(QuantizedStore, RejectsBadBitWidths) {
  auto store = trained_store();
  EXPECT_THROW(QuantizedSparseStore::quantize(store, 1),
               std::invalid_argument);
  EXPECT_THROW(QuantizedSparseStore::quantize(store, 9),
               std::invalid_argument);
}

TEST(QuantizedStore, ApplyToLoadsModel) {
  auto store = trained_store();
  auto q = QuantizedSparseStore::quantize(store, 8);
  nn::Sequential net;
  net.emplace<nn::Linear>(6, 8, 99);
  net.emplace<nn::Linear>(8, 4, 98);
  auto params = net.collect_parameters();
  q.apply_to(params);
  const T::Tensor expected = q.materialize(0);
  for (std::int64_t i = 0; i < expected.numel(); ++i) {
    EXPECT_EQ(params[0]->var.value()[i], expected[i]);
  }
}

TEST(QuantizedStore, ZeroEntriesQuantizeSafely) {
  // A fresh (untrained) model captured via from_params has zero entries;
  // quantization must not divide by zero.
  nn::Sequential net;
  net.emplace<nn::Linear>(4, 4, 1);
  auto store = core::SparseWeightStore::from_params(net.collect_parameters());
  EXPECT_EQ(store.live_weights(), 0);
  auto q = QuantizedSparseStore::quantize(store, 8);
  EXPECT_EQ(q.live_weights(), 0);
  EXPECT_NO_THROW(q.materialize(0));
}

/// Bit-width sweep: round-trip plus monotone byte size.
class BitSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitSweep, RoundTripAndBytes) {
  auto store = trained_store();
  auto q = QuantizedSparseStore::quantize(store, GetParam());
  std::stringstream ss;
  q.save(ss);
  EXPECT_TRUE(QuantizedSparseStore::load(ss) == q);
}

INSTANTIATE_TEST_SUITE_P(Bits, BitSweep, ::testing::Values(2, 3, 4, 6, 8));

}  // namespace
}  // namespace dropback::quant
