// Parallel-vs-serial bitwise equivalence for every parallelized hot path.
//
// The determinism contract (docs/PARALLELISM.md): for ANY thread count the
// parallel kernels produce output bitwise identical to --threads 1. Each
// test computes a serial reference, then recomputes under 2 and 7 threads
// (7 deliberately odd and larger than most shard counts, so ragged
// partitions and idle workers are both exercised) and compares with memcmp
// — not EXPECT_FLOAT_EQ — so even a single reassociated addition fails.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "core/accumulated_gradients.hpp"
#include "core/dropback_optimizer.hpp"
#include "core/sparse_backward.hpp"
#include "core/tracked_set.hpp"
#include "data/dataloader.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/linear.hpp"
#include "nn/models/lenet.hpp"
#include "nn/sequential.hpp"
#include "optim/sgd.hpp"
#include "rng/xorshift.hpp"
#include "tensor/conv.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "train/trainer.hpp"
#include "util/atomic_file.hpp"
#include "util/thread_pool.hpp"

namespace dropback {
namespace {

namespace T = dropback::tensor;

const int kThreadCounts[] = {2, 7};
const float kZero = 0.0F;

class ParallelEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override { util::set_num_threads(1); }
  void TearDown() override { util::set_num_threads(1); }
};

T::Tensor random_tensor(const T::Shape& shape, std::uint64_t seed) {
  T::Tensor t(shape);
  rng::Xorshift128 rng(seed);
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(-2, 2);
  return t;
}

::testing::AssertionResult bitwise_equal(const T::Tensor& a,
                                         const T::Tensor& b) {
  if (a.numel() != b.numel()) {
    return ::testing::AssertionFailure() << "numel mismatch";
  }
  if (std::memcmp(a.data(), b.data(),
                  static_cast<std::size_t>(a.numel()) * sizeof(float)) != 0) {
    for (std::int64_t i = 0; i < a.numel(); ++i) {
      if (std::memcmp(&a.data()[i], &b.data()[i], sizeof(float)) != 0) {
        return ::testing::AssertionFailure()
               << "first bit difference at flat index " << i << ": "
               << a.data()[i] << " vs " << b.data()[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

TEST_F(ParallelEquivalenceTest, MatmulAllShapes) {
  // Odd shapes including m=1 / n=1 degenerate panels, plus sizes that
  // exercise the ikj kernel, the blocked kernel, and the parallel gate.
  const std::vector<std::array<std::int64_t, 3>> shapes = {
      {1, 1, 1},    {1, 5, 3},     {7, 5, 1},      {17, 13, 29},
      {64, 64, 64}, {129, 65, 33}, {96, 700, 512}, {3, 1024, 300},
  };
  for (const auto& [m, k, n] : shapes) {
    const T::Tensor a = random_tensor({m, k}, 11 * static_cast<unsigned>(m));
    const T::Tensor b = random_tensor({k, n}, 13 * static_cast<unsigned>(n));
    const T::Tensor bt = T::transpose2d(b);
    const T::Tensor ref = T::matmul(a, b);
    const T::Tensor ref_nt = T::matmul_nt(a, bt);
    const T::Tensor at = T::transpose2d(a);
    const T::Tensor ref_tn = T::matmul_tn(at, b);
    for (int threads : kThreadCounts) {
      util::set_num_threads(threads);
      EXPECT_TRUE(bitwise_equal(ref, T::matmul(a, b)))
          << "matmul " << m << "x" << k << "x" << n << " @" << threads;
      EXPECT_TRUE(bitwise_equal(ref_nt, T::matmul_nt(a, bt)))
          << "matmul_nt " << m << "x" << k << "x" << n << " @" << threads;
      EXPECT_TRUE(bitwise_equal(ref_tn, T::matmul_tn(at, b)))
          << "matmul_tn " << m << "x" << k << "x" << n << " @" << threads;
      util::set_num_threads(1);
    }
  }
}

TEST_F(ParallelEquivalenceTest, Conv2dForwardBackward) {
  struct Case {
    std::int64_t n, cin, hw, cout, kernel, stride, padding;
  };
  const std::vector<Case> cases = {
      {1, 1, 5, 1, 3, 1, 1},   // minimal
      {3, 5, 9, 4, 3, 2, 0},   // odd channels, strided, no padding
      {4, 8, 16, 16, 3, 1, 1}, // large enough to shard im2col + matmuls
  };
  for (const auto& c : cases) {
    const T::Tensor x = random_tensor({c.n, c.cin, c.hw, c.hw}, 21);
    const T::Tensor w =
        random_tensor({c.cout, c.cin, c.kernel, c.kernel}, 22);
    const T::Tensor b = random_tensor({c.cout}, 23);
    const T::Conv2dSpec spec{c.kernel, c.kernel, c.stride, c.padding};
    const T::Tensor ref_y = T::conv2d(x, w, b, spec);
    const T::Tensor gy = random_tensor(ref_y.shape(), 24);
    const T::Conv2dGrads ref_g = T::conv2d_backward(x, w, gy, spec, true);
    for (int threads : kThreadCounts) {
      util::set_num_threads(threads);
      EXPECT_TRUE(bitwise_equal(ref_y, T::conv2d(x, w, b, spec)))
          << "conv2d fwd @" << threads;
      const T::Conv2dGrads g = T::conv2d_backward(x, w, gy, spec, true);
      EXPECT_TRUE(bitwise_equal(ref_g.grad_weight, g.grad_weight))
          << "conv2d dW @" << threads;
      EXPECT_TRUE(bitwise_equal(ref_g.grad_input, g.grad_input))
          << "conv2d dX @" << threads;
      EXPECT_TRUE(bitwise_equal(ref_g.grad_bias, g.grad_bias))
          << "conv2d db @" << threads;
      util::set_num_threads(1);
    }
  }
}

TEST_F(ParallelEquivalenceTest, ElementwiseAndRowKernels) {
  // 100003 elements: prime, so every shard boundary is ragged.
  const T::Tensor a = random_tensor({100003}, 31);
  const T::Tensor b = random_tensor({100003}, 32);
  const T::Tensor m2 = random_tensor({257, 389}, 33);
  const T::Tensor rowv = random_tensor({389}, 34);
  const T::Tensor nchw = random_tensor({6, 13, 17, 17}, 35);
  const T::Tensor cvec = random_tensor({13}, 36);

  const T::Tensor r_add = T::add(a, b), r_mul = T::mul(a, b);
  const T::Tensor r_exp = T::exp(a), r_relu = T::relu(a);
  const T::Tensor r_sig = T::sigmoid(a);
  const T::Tensor r_rowadd = T::add_row_vector(m2, rowv);
  const T::Tensor r_sm = T::row_softmax(m2);
  const T::Tensor r_lse = T::row_logsumexp(m2);
  const T::Tensor r_srows = T::sum_rows(m2), r_scols = T::sum_cols(m2);
  const T::Tensor r_tr = T::transpose2d(m2);
  const T::Tensor r_cm = T::channel_mean(nchw);
  const T::Tensor r_cv = T::channel_var(nchw, r_cm);
  const T::Tensor r_caff = T::channel_affine(nchw, r_cm, cvec, cvec);
  const T::Tensor r_cmul = T::mul_per_channel(nchw, cvec);

  for (int threads : kThreadCounts) {
    util::set_num_threads(threads);
    EXPECT_TRUE(bitwise_equal(r_add, T::add(a, b))) << "add @" << threads;
    EXPECT_TRUE(bitwise_equal(r_mul, T::mul(a, b))) << "mul @" << threads;
    EXPECT_TRUE(bitwise_equal(r_exp, T::exp(a))) << "exp @" << threads;
    EXPECT_TRUE(bitwise_equal(r_relu, T::relu(a))) << "relu @" << threads;
    EXPECT_TRUE(bitwise_equal(r_sig, T::sigmoid(a)))
        << "sigmoid @" << threads;
    EXPECT_TRUE(bitwise_equal(r_rowadd, T::add_row_vector(m2, rowv)))
        << "add_row_vector @" << threads;
    EXPECT_TRUE(bitwise_equal(r_sm, T::row_softmax(m2)))
        << "row_softmax @" << threads;
    EXPECT_TRUE(bitwise_equal(r_lse, T::row_logsumexp(m2)))
        << "row_logsumexp @" << threads;
    EXPECT_TRUE(bitwise_equal(r_srows, T::sum_rows(m2)))
        << "sum_rows @" << threads;
    EXPECT_TRUE(bitwise_equal(r_scols, T::sum_cols(m2)))
        << "sum_cols @" << threads;
    EXPECT_TRUE(bitwise_equal(r_tr, T::transpose2d(m2)))
        << "transpose2d @" << threads;
    EXPECT_TRUE(bitwise_equal(r_cm, T::channel_mean(nchw)))
        << "channel_mean @" << threads;
    EXPECT_TRUE(bitwise_equal(r_cv, T::channel_var(nchw, r_cm)))
        << "channel_var @" << threads;
    EXPECT_TRUE(bitwise_equal(r_caff, T::channel_affine(nchw, r_cm, cvec,
                                                        cvec)))
        << "channel_affine @" << threads;
    EXPECT_TRUE(bitwise_equal(r_cmul, T::mul_per_channel(nchw, cvec)))
        << "mul_per_channel @" << threads;
    util::set_num_threads(1);
  }
}

TEST_F(ParallelEquivalenceTest, AccumulatedGradientScores) {
  // The 89.6k-parameter paper MLP: big enough that compute_scores shards.
  auto model = nn::models::make_mnist_100_100(7);
  auto params = model->collect_parameters();
  rng::Xorshift128 rng(41);
  for (auto* p : params) {
    float* g = p->var.grad().data();
    for (std::int64_t i = 0; i < p->numel(); ++i) g[i] = rng.uniform(-1, 1);
  }
  core::ParamIndex index(params);
  std::vector<float> ref;
  core::compute_scores(index, 0.1F, ref);
  for (int threads : kThreadCounts) {
    util::set_num_threads(threads);
    std::vector<float> scores;
    core::compute_scores(index, 0.1F, scores);
    ASSERT_EQ(scores.size(), ref.size());
    EXPECT_EQ(std::memcmp(scores.data(), ref.data(),
                          ref.size() * sizeof(float)),
              0)
        << "compute_scores @" << threads;
    util::set_num_threads(1);
  }
}

/// Runs `steps` DropBack steps on a fresh copy of the paper MLP and returns
/// every weight value, so whole-optimizer trajectories can be compared.
std::vector<float> dropback_trajectory(int steps) {
  auto model = nn::models::make_mnist_100_100(7);
  auto params = model->collect_parameters();
  core::DropBackConfig config;
  config.budget = 20000;
  core::DropBackOptimizer opt(params, 0.1F, config);
  rng::Xorshift128 rng(42);
  for (int s = 0; s < steps; ++s) {
    for (auto* p : params) {
      float* g = p->var.grad().data();
      for (std::int64_t i = 0; i < p->numel(); ++i) g[i] = rng.uniform(-1, 1);
    }
    opt.step();
  }
  std::vector<float> weights;
  for (auto* p : params) {
    const float* w = p->var.value().data();
    weights.insert(weights.end(), w, w + p->numel());
  }
  return weights;
}

TEST_F(ParallelEquivalenceTest, DropBackUpdateAndSelection) {
  const std::vector<float> ref = dropback_trajectory(3);
  for (int threads : kThreadCounts) {
    util::set_num_threads(threads);
    const std::vector<float> got = dropback_trajectory(3);
    ASSERT_EQ(got.size(), ref.size());
    EXPECT_EQ(
        std::memcmp(got.data(), ref.data(), ref.size() * sizeof(float)), 0)
        << "DropBack trajectory @" << threads;
    util::set_num_threads(1);
  }
}

/// Flattens every per-param mask of `set` into one vector.
std::vector<std::uint8_t> flatten_masks(const core::TrackedSet& set,
                                        const core::ParamIndex& index) {
  std::vector<std::uint8_t> flat;
  for (std::size_t p = 0; p < index.num_params(); ++p) {
    const std::uint8_t* m = set.mask_of(p);
    flat.insert(flat.end(), m, m + index.param(p).numel());
  }
  return flat;
}

TEST_F(ParallelEquivalenceTest, TrackedSetSelectLargeAndTieHeavy) {
  // 500x400 linear + bias = 200400 weights: above the parallel-select gate.
  nn::Sequential net;
  net.emplace<nn::Linear>(400, 500, 1);
  core::ParamIndex index(net.collect_parameters());
  ASSERT_GE(index.total(), 1 << 15);

  rng::Xorshift128 rng(51);
  std::vector<float> random_scores(static_cast<std::size_t>(index.total()));
  for (auto& s : random_scores) s = rng.uniform();
  // Tie-heavy: every score is one of 4 values, so thousands of weights sit
  // exactly at the selection threshold.
  std::vector<float> tied_scores(static_cast<std::size_t>(index.total()));
  for (auto& s : tied_scores) {
    s = 0.25F * static_cast<float>(rng.next_u32() % 4);
  }

  for (const auto* scores : {&random_scores, &tied_scores}) {
    for (std::int64_t k : {std::int64_t{1}, std::int64_t{5000},
                           std::int64_t{123457}}) {
      core::TrackedSet ref_set(index);
      ref_set.select(*scores, k, core::SelectionStrategy::kFullSort);
      const auto ref_mask = flatten_masks(ref_set, index);
      const float ref_lambda = ref_set.last_lambda();
      for (int threads : kThreadCounts) {
        util::set_num_threads(threads);
        core::TrackedSet set(index);
        set.select(*scores, k, core::SelectionStrategy::kFullSort);
        EXPECT_EQ(flatten_masks(set, index), ref_mask)
            << "select k=" << k << " @" << threads;
        EXPECT_EQ(set.last_lambda(), ref_lambda)
            << "lambda k=" << k << " @" << threads;
        util::set_num_threads(1);
      }
    }
  }
}

/// A scattered 10x-compression mask over a [out, in] weight matrix.
std::vector<std::uint8_t> scattered_mask(std::int64_t out, std::int64_t in) {
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(out * in), 0);
  const std::size_t k = mask.size() / 10;
  for (std::size_t i = 0; i < k; ++i) {
    mask[(i * 2654435761U) % mask.size()] = 1;
  }
  return mask;
}

TEST_F(ParallelEquivalenceTest, SparseBackwardKernels) {
  // Frozen-phase sparse backward: coordinate extraction, dW gathering, and
  // the sparse update all shard by tracked-coordinate ranges and must stay
  // bitwise identical to serial.
  const std::int64_t out = 300, in = 400, batch = 24;
  const auto mask = scattered_mask(out, in);
  const T::Tensor x = random_tensor({batch, in}, 61);
  const T::Tensor gy = random_tensor({batch, out}, 62);
  const T::Tensor w0 = random_tensor({out, in}, 63);

  const auto ref_coords = core::tracked_coords(mask.data(), out, in);
  ASSERT_GT(ref_coords.size(), 10000U);
  const auto ref_grads = core::sparse_linear_grad_w(x, gy, ref_coords);
  T::Tensor ref_w = w0;
  core::apply_sparse_update(ref_w, ref_coords, ref_grads, 0.01F);

  for (int threads : kThreadCounts) {
    util::set_num_threads(threads);
    const auto coords = core::tracked_coords(mask.data(), out, in);
    ASSERT_EQ(coords.size(), ref_coords.size()) << "@" << threads;
    EXPECT_EQ(std::memcmp(coords.data(), ref_coords.data(),
                          coords.size() * sizeof(core::TrackedCoord)),
              0)
        << "tracked_coords order @" << threads;
    const auto grads = core::sparse_linear_grad_w(x, gy, coords);
    ASSERT_EQ(grads.size(), ref_grads.size());
    EXPECT_EQ(std::memcmp(grads.data(), ref_grads.data(),
                          grads.size() * sizeof(float)),
              0)
        << "sparse_linear_grad_w @" << threads;
    T::Tensor w = w0;
    core::apply_sparse_update(w, coords, grads, 0.01F);
    EXPECT_TRUE(bitwise_equal(ref_w, w))
        << "apply_sparse_update @" << threads;
    util::set_num_threads(1);
  }
}

TEST_F(ParallelEquivalenceTest, FrozenPhaseUntrackedWeightsSeeNoTraffic) {
  // After the freeze the sparse path must not touch untracked weights at
  // all: across a multi-step frozen loop their bits never change, and a
  // dense scatter of the sparse gradients is exactly 0.0f off-mask.
  const std::int64_t out = 64, in = 96, batch = 8;
  const auto mask = scattered_mask(out, in);
  const auto coords = core::tracked_coords(mask.data(), out, in);
  const T::Tensor w0 = random_tensor({out, in}, 71);

  for (int threads : {1, 2, 7}) {
    util::set_num_threads(threads);
    T::Tensor w = w0;
    for (int step = 0; step < 5; ++step) {
      const T::Tensor x =
          random_tensor({batch, in}, 80 + static_cast<unsigned>(step));
      const T::Tensor gy =
          random_tensor({batch, out}, 90 + static_cast<unsigned>(step));
      const auto grads = core::sparse_linear_grad_w(x, gy, coords);

      T::Tensor dense_scatter({out, in});
      for (std::size_t c = 0; c < coords.size(); ++c) {
        dense_scatter[coords[c].out * in + coords[c].in] = grads[c];
      }
      for (std::int64_t i = 0; i < out * in; ++i) {
        if (!mask[static_cast<std::size_t>(i)]) {
          ASSERT_EQ(std::memcmp(&dense_scatter.data()[i], &kZero,
                                sizeof(float)),
                    0)
              << "gradient traffic to untracked weight " << i << " @"
              << threads;
        }
      }
      core::apply_sparse_update(w, coords, grads, 0.05F);
    }
    for (std::int64_t i = 0; i < out * in; ++i) {
      if (!mask[static_cast<std::size_t>(i)]) {
        ASSERT_EQ(std::memcmp(&w.data()[i], &w0.data()[i], sizeof(float)), 0)
            << "untracked weight " << i << " changed @" << threads;
      }
    }
    util::set_num_threads(1);
  }
}

TEST_F(ParallelEquivalenceTest, DataLoaderThreadsAndPrefetch) {
  // Batch assembly shards per sample and the transform streams key on the
  // dataset index, so batches are bitwise identical across thread counts
  // and prefetch settings.
  data::SyntheticMnistOptions opt;
  opt.num_samples = 45;
  auto ds = data::make_synthetic_mnist(opt);

  const auto run = [&](std::int64_t prefetch) {
    data::DataLoaderOptions options;
    options.batch_size = 8;
    options.shuffle = true;
    options.seed = 17;
    options.prefetch_batches = prefetch;
    options.transform = data::uniform_noise_transform(0.2F);
    data::DataLoader loader(*ds, options);
    std::vector<float> pixels;
    std::vector<std::int64_t> labels;
    for (int epoch = 0; epoch < 2; ++epoch) {
      if (epoch > 0) loader.start_epoch();
      data::Batch batch;
      while (loader.next(batch)) {
        pixels.insert(pixels.end(), batch.images.data(),
                      batch.images.data() + batch.images.numel());
        labels.insert(labels.end(), batch.labels.begin(),
                      batch.labels.end());
      }
    }
    return std::make_pair(pixels, labels);
  };

  const auto ref = run(/*prefetch=*/0);
  for (int threads : kThreadCounts) {
    for (std::int64_t prefetch : {std::int64_t{0}, std::int64_t{1}}) {
      util::set_num_threads(threads);
      const auto got = run(prefetch);
      ASSERT_EQ(got.second, ref.second)
          << "labels @" << threads << " prefetch " << prefetch;
      ASSERT_EQ(got.first.size(), ref.first.size());
      EXPECT_EQ(std::memcmp(got.first.data(), ref.first.data(),
                            ref.first.size() * sizeof(float)),
                0)
          << "pixels @" << threads << " prefetch " << prefetch;
      util::set_num_threads(1);
    }
  }
}

/// One full Trainer run; returns the final weights and the bytes of the
/// training checkpoint it wrote.
std::pair<std::vector<float>, std::string> trainer_run(
    const data::Dataset& train_set, const data::Dataset& val_set,
    std::int64_t prefetch, const std::string& checkpoint_path) {
  auto model = nn::models::make_mnist_100_100(7);
  auto params = model->collect_parameters();
  optim::SGD optimizer(params, 0.05F);
  train::TrainConfig config = train::TrainConfig{}
                                  .with_epochs(2)
                                  .with_batch_size(16)
                                  .with_loader_seed(29)
                                  .with_shuffle(true)
                                  .with_prefetch(prefetch)
                                  .with_checkpoint(checkpoint_path, 2);
  config.transform = data::uniform_noise_transform(0.05F);
  config.verbose = false;
  train::Trainer trainer(*model, optimizer, train_set, val_set, config);
  trainer.run();
  std::vector<float> weights;
  for (auto* p : params) {
    const float* w = p->var.value().data();
    weights.insert(weights.end(), w, w + p->numel());
  }
  return {std::move(weights), util::read_file(checkpoint_path)};
}

TEST_F(ParallelEquivalenceTest, TrainerEndToEndWithPrefetchAndThreads) {
  // The whole pipeline — prefetching loader, parallel kernels, checkpoint
  // writer — produces bitwise-identical final weights AND bitwise-identical
  // checkpoint files for every thread count, with prefetch on or off.
  data::SyntheticMnistOptions opt;
  opt.num_samples = 48;
  auto train_set = data::make_synthetic_mnist(opt);
  opt.num_samples = 16;
  opt.seed = 3;
  auto val_set = data::make_synthetic_mnist(opt);

  const std::string dir = ::testing::TempDir();
  const auto ref = trainer_run(*train_set, *val_set, /*prefetch=*/0,
                               dir + "/equiv_ref.dbts");
  for (int threads : {1, 2, 7}) {
    util::set_num_threads(threads);
    const auto got = trainer_run(*train_set, *val_set, /*prefetch=*/1,
                                 dir + "/equiv_t" + std::to_string(threads) +
                                     ".dbts");
    ASSERT_EQ(got.first.size(), ref.first.size());
    EXPECT_EQ(std::memcmp(got.first.data(), ref.first.data(),
                          ref.first.size() * sizeof(float)),
              0)
        << "final weights @" << threads << " threads, prefetch on";
    EXPECT_EQ(got.second, ref.second)
        << "checkpoint bytes @" << threads << " threads, prefetch on";
    util::set_num_threads(1);
  }
}

}  // namespace
}  // namespace dropback
