// Parallel-vs-serial bitwise equivalence for every parallelized hot path.
//
// The determinism contract (docs/PARALLELISM.md): for ANY thread count the
// parallel kernels produce output bitwise identical to --threads 1. Each
// test computes a serial reference, then recomputes under 2 and 7 threads
// (7 deliberately odd and larger than most shard counts, so ragged
// partitions and idle workers are both exercised) and compares with memcmp
// — not EXPECT_FLOAT_EQ — so even a single reassociated addition fails.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "core/accumulated_gradients.hpp"
#include "core/dropback_optimizer.hpp"
#include "core/tracked_set.hpp"
#include "nn/linear.hpp"
#include "nn/models/lenet.hpp"
#include "nn/sequential.hpp"
#include "rng/xorshift.hpp"
#include "tensor/conv.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "util/thread_pool.hpp"

namespace dropback {
namespace {

namespace T = dropback::tensor;

const int kThreadCounts[] = {2, 7};

class ParallelEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override { util::set_num_threads(1); }
  void TearDown() override { util::set_num_threads(1); }
};

T::Tensor random_tensor(const T::Shape& shape, std::uint64_t seed) {
  T::Tensor t(shape);
  rng::Xorshift128 rng(seed);
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(-2, 2);
  return t;
}

::testing::AssertionResult bitwise_equal(const T::Tensor& a,
                                         const T::Tensor& b) {
  if (a.numel() != b.numel()) {
    return ::testing::AssertionFailure() << "numel mismatch";
  }
  if (std::memcmp(a.data(), b.data(),
                  static_cast<std::size_t>(a.numel()) * sizeof(float)) != 0) {
    for (std::int64_t i = 0; i < a.numel(); ++i) {
      if (std::memcmp(&a.data()[i], &b.data()[i], sizeof(float)) != 0) {
        return ::testing::AssertionFailure()
               << "first bit difference at flat index " << i << ": "
               << a.data()[i] << " vs " << b.data()[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

TEST_F(ParallelEquivalenceTest, MatmulAllShapes) {
  // Odd shapes including m=1 / n=1 degenerate panels, plus sizes that
  // exercise the ikj kernel, the blocked kernel, and the parallel gate.
  const std::vector<std::array<std::int64_t, 3>> shapes = {
      {1, 1, 1},    {1, 5, 3},     {7, 5, 1},      {17, 13, 29},
      {64, 64, 64}, {129, 65, 33}, {96, 700, 512}, {3, 1024, 300},
  };
  for (const auto& [m, k, n] : shapes) {
    const T::Tensor a = random_tensor({m, k}, 11 * static_cast<unsigned>(m));
    const T::Tensor b = random_tensor({k, n}, 13 * static_cast<unsigned>(n));
    const T::Tensor bt = T::transpose2d(b);
    const T::Tensor ref = T::matmul(a, b);
    const T::Tensor ref_nt = T::matmul_nt(a, bt);
    const T::Tensor at = T::transpose2d(a);
    const T::Tensor ref_tn = T::matmul_tn(at, b);
    for (int threads : kThreadCounts) {
      util::set_num_threads(threads);
      EXPECT_TRUE(bitwise_equal(ref, T::matmul(a, b)))
          << "matmul " << m << "x" << k << "x" << n << " @" << threads;
      EXPECT_TRUE(bitwise_equal(ref_nt, T::matmul_nt(a, bt)))
          << "matmul_nt " << m << "x" << k << "x" << n << " @" << threads;
      EXPECT_TRUE(bitwise_equal(ref_tn, T::matmul_tn(at, b)))
          << "matmul_tn " << m << "x" << k << "x" << n << " @" << threads;
      util::set_num_threads(1);
    }
  }
}

TEST_F(ParallelEquivalenceTest, Conv2dForwardBackward) {
  struct Case {
    std::int64_t n, cin, hw, cout, kernel, stride, padding;
  };
  const std::vector<Case> cases = {
      {1, 1, 5, 1, 3, 1, 1},   // minimal
      {3, 5, 9, 4, 3, 2, 0},   // odd channels, strided, no padding
      {4, 8, 16, 16, 3, 1, 1}, // large enough to shard im2col + matmuls
  };
  for (const auto& c : cases) {
    const T::Tensor x = random_tensor({c.n, c.cin, c.hw, c.hw}, 21);
    const T::Tensor w =
        random_tensor({c.cout, c.cin, c.kernel, c.kernel}, 22);
    const T::Tensor b = random_tensor({c.cout}, 23);
    const T::Conv2dSpec spec{c.kernel, c.kernel, c.stride, c.padding};
    const T::Tensor ref_y = T::conv2d(x, w, b, spec);
    const T::Tensor gy = random_tensor(ref_y.shape(), 24);
    const T::Conv2dGrads ref_g = T::conv2d_backward(x, w, gy, spec, true);
    for (int threads : kThreadCounts) {
      util::set_num_threads(threads);
      EXPECT_TRUE(bitwise_equal(ref_y, T::conv2d(x, w, b, spec)))
          << "conv2d fwd @" << threads;
      const T::Conv2dGrads g = T::conv2d_backward(x, w, gy, spec, true);
      EXPECT_TRUE(bitwise_equal(ref_g.grad_weight, g.grad_weight))
          << "conv2d dW @" << threads;
      EXPECT_TRUE(bitwise_equal(ref_g.grad_input, g.grad_input))
          << "conv2d dX @" << threads;
      EXPECT_TRUE(bitwise_equal(ref_g.grad_bias, g.grad_bias))
          << "conv2d db @" << threads;
      util::set_num_threads(1);
    }
  }
}

TEST_F(ParallelEquivalenceTest, ElementwiseAndRowKernels) {
  // 100003 elements: prime, so every shard boundary is ragged.
  const T::Tensor a = random_tensor({100003}, 31);
  const T::Tensor b = random_tensor({100003}, 32);
  const T::Tensor m2 = random_tensor({257, 389}, 33);
  const T::Tensor rowv = random_tensor({389}, 34);
  const T::Tensor nchw = random_tensor({6, 13, 17, 17}, 35);
  const T::Tensor cvec = random_tensor({13}, 36);

  const T::Tensor r_add = T::add(a, b), r_mul = T::mul(a, b);
  const T::Tensor r_exp = T::exp(a), r_relu = T::relu(a);
  const T::Tensor r_sig = T::sigmoid(a);
  const T::Tensor r_rowadd = T::add_row_vector(m2, rowv);
  const T::Tensor r_sm = T::row_softmax(m2);
  const T::Tensor r_lse = T::row_logsumexp(m2);
  const T::Tensor r_srows = T::sum_rows(m2), r_scols = T::sum_cols(m2);
  const T::Tensor r_tr = T::transpose2d(m2);
  const T::Tensor r_cm = T::channel_mean(nchw);
  const T::Tensor r_cv = T::channel_var(nchw, r_cm);
  const T::Tensor r_caff = T::channel_affine(nchw, r_cm, cvec, cvec);
  const T::Tensor r_cmul = T::mul_per_channel(nchw, cvec);

  for (int threads : kThreadCounts) {
    util::set_num_threads(threads);
    EXPECT_TRUE(bitwise_equal(r_add, T::add(a, b))) << "add @" << threads;
    EXPECT_TRUE(bitwise_equal(r_mul, T::mul(a, b))) << "mul @" << threads;
    EXPECT_TRUE(bitwise_equal(r_exp, T::exp(a))) << "exp @" << threads;
    EXPECT_TRUE(bitwise_equal(r_relu, T::relu(a))) << "relu @" << threads;
    EXPECT_TRUE(bitwise_equal(r_sig, T::sigmoid(a)))
        << "sigmoid @" << threads;
    EXPECT_TRUE(bitwise_equal(r_rowadd, T::add_row_vector(m2, rowv)))
        << "add_row_vector @" << threads;
    EXPECT_TRUE(bitwise_equal(r_sm, T::row_softmax(m2)))
        << "row_softmax @" << threads;
    EXPECT_TRUE(bitwise_equal(r_lse, T::row_logsumexp(m2)))
        << "row_logsumexp @" << threads;
    EXPECT_TRUE(bitwise_equal(r_srows, T::sum_rows(m2)))
        << "sum_rows @" << threads;
    EXPECT_TRUE(bitwise_equal(r_scols, T::sum_cols(m2)))
        << "sum_cols @" << threads;
    EXPECT_TRUE(bitwise_equal(r_tr, T::transpose2d(m2)))
        << "transpose2d @" << threads;
    EXPECT_TRUE(bitwise_equal(r_cm, T::channel_mean(nchw)))
        << "channel_mean @" << threads;
    EXPECT_TRUE(bitwise_equal(r_cv, T::channel_var(nchw, r_cm)))
        << "channel_var @" << threads;
    EXPECT_TRUE(bitwise_equal(r_caff, T::channel_affine(nchw, r_cm, cvec,
                                                        cvec)))
        << "channel_affine @" << threads;
    EXPECT_TRUE(bitwise_equal(r_cmul, T::mul_per_channel(nchw, cvec)))
        << "mul_per_channel @" << threads;
    util::set_num_threads(1);
  }
}

TEST_F(ParallelEquivalenceTest, AccumulatedGradientScores) {
  // The 89.6k-parameter paper MLP: big enough that compute_scores shards.
  auto model = nn::models::make_mnist_100_100(7);
  auto params = model->collect_parameters();
  rng::Xorshift128 rng(41);
  for (auto* p : params) {
    float* g = p->var.grad().data();
    for (std::int64_t i = 0; i < p->numel(); ++i) g[i] = rng.uniform(-1, 1);
  }
  core::ParamIndex index(params);
  std::vector<float> ref;
  core::compute_scores(index, 0.1F, ref);
  for (int threads : kThreadCounts) {
    util::set_num_threads(threads);
    std::vector<float> scores;
    core::compute_scores(index, 0.1F, scores);
    ASSERT_EQ(scores.size(), ref.size());
    EXPECT_EQ(std::memcmp(scores.data(), ref.data(),
                          ref.size() * sizeof(float)),
              0)
        << "compute_scores @" << threads;
    util::set_num_threads(1);
  }
}

/// Runs `steps` DropBack steps on a fresh copy of the paper MLP and returns
/// every weight value, so whole-optimizer trajectories can be compared.
std::vector<float> dropback_trajectory(int steps) {
  auto model = nn::models::make_mnist_100_100(7);
  auto params = model->collect_parameters();
  core::DropBackConfig config;
  config.budget = 20000;
  core::DropBackOptimizer opt(params, 0.1F, config);
  rng::Xorshift128 rng(42);
  for (int s = 0; s < steps; ++s) {
    for (auto* p : params) {
      float* g = p->var.grad().data();
      for (std::int64_t i = 0; i < p->numel(); ++i) g[i] = rng.uniform(-1, 1);
    }
    opt.step();
  }
  std::vector<float> weights;
  for (auto* p : params) {
    const float* w = p->var.value().data();
    weights.insert(weights.end(), w, w + p->numel());
  }
  return weights;
}

TEST_F(ParallelEquivalenceTest, DropBackUpdateAndSelection) {
  const std::vector<float> ref = dropback_trajectory(3);
  for (int threads : kThreadCounts) {
    util::set_num_threads(threads);
    const std::vector<float> got = dropback_trajectory(3);
    ASSERT_EQ(got.size(), ref.size());
    EXPECT_EQ(
        std::memcmp(got.data(), ref.data(), ref.size() * sizeof(float)), 0)
        << "DropBack trajectory @" << threads;
    util::set_num_threads(1);
  }
}

/// Flattens every per-param mask of `set` into one vector.
std::vector<std::uint8_t> flatten_masks(const core::TrackedSet& set,
                                        const core::ParamIndex& index) {
  std::vector<std::uint8_t> flat;
  for (std::size_t p = 0; p < index.num_params(); ++p) {
    const std::uint8_t* m = set.mask_of(p);
    flat.insert(flat.end(), m, m + index.param(p).numel());
  }
  return flat;
}

TEST_F(ParallelEquivalenceTest, TrackedSetSelectLargeAndTieHeavy) {
  // 500x400 linear + bias = 200400 weights: above the parallel-select gate.
  nn::Sequential net;
  net.emplace<nn::Linear>(400, 500, 1);
  core::ParamIndex index(net.collect_parameters());
  ASSERT_GE(index.total(), 1 << 15);

  rng::Xorshift128 rng(51);
  std::vector<float> random_scores(static_cast<std::size_t>(index.total()));
  for (auto& s : random_scores) s = rng.uniform();
  // Tie-heavy: every score is one of 4 values, so thousands of weights sit
  // exactly at the selection threshold.
  std::vector<float> tied_scores(static_cast<std::size_t>(index.total()));
  for (auto& s : tied_scores) {
    s = 0.25F * static_cast<float>(rng.next_u32() % 4);
  }

  for (const auto* scores : {&random_scores, &tied_scores}) {
    for (std::int64_t k : {std::int64_t{1}, std::int64_t{5000},
                           std::int64_t{123457}}) {
      core::TrackedSet ref_set(index);
      ref_set.select(*scores, k, core::SelectionStrategy::kFullSort);
      const auto ref_mask = flatten_masks(ref_set, index);
      const float ref_lambda = ref_set.last_lambda();
      for (int threads : kThreadCounts) {
        util::set_num_threads(threads);
        core::TrackedSet set(index);
        set.select(*scores, k, core::SelectionStrategy::kFullSort);
        EXPECT_EQ(flatten_masks(set, index), ref_mask)
            << "select k=" << k << " @" << threads;
        EXPECT_EQ(set.last_lambda(), ref_lambda)
            << "lambda k=" << k << " @" << threads;
        util::set_num_threads(1);
      }
    }
  }
}

}  // namespace
}  // namespace dropback
