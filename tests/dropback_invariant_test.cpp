// Deeper DropBack invariants: determinism of whole training trajectories,
// consistency between the live optimizer state and the exported store, and
// the exact semantics of the update rule.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.hpp"
#include "core/dropback_optimizer.hpp"
#include "core/sparse_weight_store.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/models/lenet.hpp"
#include "nn/sequential.hpp"
#include "nn/linear.hpp"
#include "rng/xorshift.hpp"
#include "train/trainer.hpp"

namespace dropback {
namespace {

namespace T = dropback::tensor;
namespace ag = dropback::autograd;

std::unique_ptr<nn::Sequential> tiny_net(std::uint64_t seed = 1) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Linear>(4, 6, seed);
  net->emplace<nn::Linear>(6, 3, seed + 1);
  return net;
}

void make_gradients(nn::Module& net, std::uint64_t seed) {
  rng::Xorshift128 rng(seed);
  T::Tensor x({2, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-1, 1);
  ag::Variable input(x);
  ag::backward(ag::sum(ag::mul(net.forward(input), net.forward(input))));
}

TEST(DropBackInvariants, WholeTrajectoryIsDeterministic) {
  // Two runs with identical seeds produce bit-identical weights, masks, and
  // exported stores — the property an accelerator depends on, since the
  // regenerated weights must agree between training and deployment.
  auto run = [] {
    auto net = tiny_net(5);
    auto params = net->collect_parameters();
    core::DropBackConfig config;
    config.budget = 12;
    config.freeze_after_steps = 4;
    auto opt = std::make_unique<core::DropBackOptimizer>(params, 0.2F,
                                                         config);
    for (int iter = 0; iter < 8; ++iter) {
      net->zero_grad();
      make_gradients(*net, 70 + iter);
      opt->step();
    }
    return core::SparseWeightStore::from_optimizer(*opt);
  };
  EXPECT_TRUE(run() == run());
}

TEST(DropBackInvariants, TrackedWeightsEqualCandidateUpdates) {
  // After a step, each tracked weight equals exactly w_prev - lr * g — the
  // masked update rule applied verbatim.
  auto net = tiny_net();
  auto params = net->collect_parameters();
  core::DropBackConfig config;
  config.budget = 10;
  core::DropBackOptimizer opt(params, 0.3F, config);
  // Snapshot pre-step weights and gradients.
  make_gradients(*net, 5);
  std::vector<std::vector<float>> w_before, g;
  for (auto* p : params) {
    const float* w = p->var.value().data();
    const float* grad = p->var.grad().data();
    w_before.emplace_back(w, w + p->numel());
    g.emplace_back(grad, grad + p->numel());
  }
  opt.step();
  const auto& index = opt.param_index();
  for (std::size_t p = 0; p < index.num_params(); ++p) {
    nn::Parameter& param = index.param(p);
    const std::uint8_t* mask = opt.tracked().mask_of(p);
    for (std::int64_t i = 0; i < param.numel(); ++i) {
      if (mask[static_cast<std::size_t>(i)]) {
        EXPECT_FLOAT_EQ(
            param.var.value()[i],
            w_before[p][static_cast<std::size_t>(i)] -
                0.3F * g[p][static_cast<std::size_t>(i)]);
      }
    }
  }
}

TEST(DropBackInvariants, SelectionPicksMaximalScoreSet) {
  // The tracked set after a step must have no untracked weight whose score
  // strictly exceeds a tracked weight's score (the defining top-k property).
  auto net = tiny_net();
  auto params = net->collect_parameters();
  core::DropBackConfig config;
  config.budget = 15;
  core::DropBackOptimizer opt(params, 0.1F, config);
  for (int iter = 0; iter < 3; ++iter) {
    net->zero_grad();
    make_gradients(*net, 80 + iter);
    opt.step();
  }
  // Recompute post-hoc scores = |w - w0| (weights already updated, lr=0).
  const auto& index = opt.param_index();
  std::vector<float> scores;
  core::compute_scores(index, 0.0F, scores);
  float min_tracked = 1e30F;
  float max_untracked = -1.0F;
  for (std::int64_t gidx = 0; gidx < index.total(); ++gidx) {
    if (opt.tracked().is_tracked(gidx)) {
      min_tracked =
          std::min(min_tracked, scores[static_cast<std::size_t>(gidx)]);
    } else {
      max_untracked =
          std::max(max_untracked, scores[static_cast<std::size_t>(gidx)]);
    }
  }
  EXPECT_GE(min_tracked, max_untracked);
}

TEST(DropBackInvariants, StoreMatchesLiveMasksExactly) {
  auto net = tiny_net();
  auto params = net->collect_parameters();
  core::DropBackConfig config;
  config.budget = 9;
  core::DropBackOptimizer opt(params, 0.1F, config);
  for (int iter = 0; iter < 3; ++iter) {
    net->zero_grad();
    make_gradients(*net, 90 + iter);
    opt.step();
  }
  auto store = core::SparseWeightStore::from_optimizer(opt);
  const auto& index = opt.param_index();
  for (std::size_t p = 0; p < index.num_params(); ++p) {
    const auto& rec = store.record(p);
    const std::uint8_t* mask = opt.tracked().mask_of(p);
    std::size_t e = 0;
    for (std::int64_t i = 0; i < index.param(p).numel(); ++i) {
      const bool tracked = mask[static_cast<std::size_t>(i)] != 0;
      const bool stored =
          e < rec.entries.size() &&
          static_cast<std::int64_t>(rec.entries[e].first) == i;
      EXPECT_EQ(tracked, stored) << rec.name << "[" << i << "]";
      if (stored) ++e;
    }
  }
}

TEST(DropBackInvariants, FrozenTrainingSkipsUntrackedScoring) {
  // Once frozen, untracked weights stay at init even if their gradients
  // become huge — "U = {}" in Algorithm 1.
  auto net = tiny_net();
  auto params = net->collect_parameters();
  core::DropBackConfig config;
  config.budget = 8;
  config.freeze_after_steps = 1;
  core::DropBackOptimizer opt(params, 0.1F, config);
  net->zero_grad();
  make_gradients(*net, 7);
  opt.step();
  ASSERT_TRUE(opt.frozen());
  // Forge enormous gradients for everything.
  for (auto* p : params) {
    p->var.grad().fill_(1000.0F);
  }
  opt.step();
  const auto& index = opt.param_index();
  for (std::size_t p = 0; p < index.num_params(); ++p) {
    nn::Parameter& param = index.param(p);
    const std::uint8_t* mask = opt.tracked().mask_of(p);
    for (std::int64_t i = 0; i < param.numel(); ++i) {
      if (!mask[static_cast<std::size_t>(i)]) {
        EXPECT_EQ(param.var.value()[i],
                  param.init.value_at(static_cast<std::uint64_t>(i)));
      }
    }
  }
}

TEST(DropBackInvariants, TrainingWithRealDataIsDeterministic) {
  // End-to-end: two identical mini-trainings on synthetic data produce the
  // same validation accuracy and the same store.
  auto run = [] {
    data::SyntheticMnistOptions data_opt;
    data_opt.num_samples = 100;
    auto train_set = data::make_synthetic_mnist(data_opt);
    data_opt.seed = 2;
    auto val_set = data::make_synthetic_mnist(data_opt);
    auto model = nn::models::make_mnist_100_100(7);
    core::DropBackConfig config;
    config.budget = 4000;
    auto opt = std::make_unique<core::DropBackOptimizer>(
        model->collect_parameters(), 0.1F, config);
    train::TrainConfig options;
    options.epochs = 2;
    options.batch_size = 25;
    train::Trainer trainer(*model, *opt, *train_set, *val_set, options);
    const auto result = trainer.run();
    return std::make_pair(result.best_val_acc,
                          core::SparseWeightStore::from_optimizer(*opt));
  };
  const auto [acc_a, store_a] = run();
  const auto [acc_b, store_b] = run();
  EXPECT_DOUBLE_EQ(acc_a, acc_b);
  EXPECT_TRUE(store_a == store_b);
}

TEST(DropBackInvariants, BudgetOneStillRuns) {
  // Degenerate extreme: a single tracked weight.
  auto net = tiny_net();
  core::DropBackConfig config;
  config.budget = 1;
  core::DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  net->zero_grad();
  make_gradients(*net, 3);
  opt.step();
  EXPECT_EQ(opt.live_weights(), 1);
  EXPECT_NEAR(opt.compression_ratio(), 51.0, 1e-9);
}

TEST(DropBackInvariants, GradFreeStepLeavesTrackedUnchanged) {
  // step() without gradients must not move tracked weights (and untracked
  // stay regenerated).
  auto net = tiny_net();
  auto params = net->collect_parameters();
  core::DropBackConfig config;
  config.budget = 10;
  core::DropBackOptimizer opt(params, 0.1F, config);
  net->zero_grad();
  make_gradients(*net, 3);
  opt.step();
  std::vector<std::vector<float>> before;
  for (auto* p : params) {
    const float* w = p->var.value().data();
    before.emplace_back(w, w + p->numel());
  }
  net->zero_grad();  // no gradients at all
  opt.step();
  for (std::size_t p = 0; p < params.size(); ++p) {
    for (std::int64_t i = 0; i < params[p]->numel(); ++i) {
      EXPECT_EQ(params[p]->var.value()[i],
                before[p][static_cast<std::size_t>(i)]);
    }
  }
}

}  // namespace
}  // namespace dropback
