#include "analysis/sparsity_report.hpp"

#include <gtest/gtest.h>

#include "autograd/ops.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "rng/xorshift.hpp"
#include "util/timer.hpp"

namespace dropback::analysis {
namespace {

namespace T = dropback::tensor;
namespace ag = dropback::autograd;

std::unique_ptr<nn::Sequential> tiny_net() {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Linear>(4, 6, 1);
  net->emplace<nn::Linear>(6, 3, 2);
  return net;
}

void step_once(nn::Sequential& net, core::DropBackOptimizer& opt) {
  rng::Xorshift128 rng(3);
  T::Tensor x({2, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-1, 1);
  ag::Variable input(x);
  ag::backward(ag::sum(ag::mul(net.forward(input), net.forward(input))));
  opt.step();
}

TEST(SparsityReport, FromOptimizerSumsToBudget) {
  auto net = tiny_net();
  core::DropBackConfig config;
  config.budget = 13;
  core::DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  step_once(*net, opt);
  const auto report = sparsity_report(opt);
  EXPECT_EQ(report.layers.size(), 4U);
  EXPECT_EQ(report.total_dense, 51);
  EXPECT_EQ(report.total_tracked, 13);
  EXPECT_NEAR(report.total_compression(), 51.0 / 13.0, 1e-9);
  double share_sum = 0.0;
  for (std::size_t i = 0; i < report.layers.size(); ++i) {
    share_sum += report.budget_share(i);
  }
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
}

TEST(SparsityReport, OptimizerAndStoreAgree) {
  auto net = tiny_net();
  core::DropBackConfig config;
  config.budget = 9;
  core::DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  step_once(*net, opt);
  const auto from_opt = sparsity_report(opt);
  const auto from_store =
      sparsity_report(core::SparseWeightStore::from_optimizer(opt));
  ASSERT_EQ(from_opt.layers.size(), from_store.layers.size());
  for (std::size_t i = 0; i < from_opt.layers.size(); ++i) {
    EXPECT_EQ(from_opt.layers[i].tracked, from_store.layers[i].tracked);
    EXPECT_EQ(from_opt.layers[i].dense, from_store.layers[i].dense);
  }
}

TEST(SparsityReport, UntrainedOptimizerIsAllTracked) {
  auto net = tiny_net();
  core::DropBackConfig config;
  config.budget = 9;
  core::DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  const auto report = sparsity_report(opt);
  EXPECT_EQ(report.total_tracked, 51);
  EXPECT_NEAR(report.total_compression(), 1.0, 1e-9);
}

TEST(SparsityReport, RenderIncludesTotalsRow) {
  auto net = tiny_net();
  core::DropBackConfig config;
  config.budget = 9;
  core::DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  step_once(*net, opt);
  const std::string rendered = sparsity_report(opt).render();
  EXPECT_NE(rendered.find("Total"), std::string::npos);
  EXPECT_NE(rendered.find("budget share"), std::string::npos);
}

TEST(TimerTest, MeasuresElapsedTime) {
  util::Timer timer;
  // Busy-wait a tiny amount of real work.
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + 1e-9;
  EXPECT_GT(timer.elapsed_seconds(), 0.0);
  EXPECT_GE(timer.elapsed_us(), 0);
  const double before = timer.elapsed_ms();
  timer.reset();
  EXPECT_LE(timer.elapsed_ms(), before + 1.0);
}

}  // namespace
}  // namespace dropback::analysis
