// Composite-graph gradient checks: numerical verification through realistic
// multi-op subgraphs (conv+BN+pool stacks, residual adds, dense concats) —
// the interaction cases single-op gradchecks cannot cover. Also covers the
// LeNet-5 model.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/conv_ops.hpp"
#include "autograd/ops.hpp"
#include "gradcheck.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "core/dropback_optimizer.hpp"
#include "nn/models/lenet.hpp"
#include "tensor/ops.hpp"

namespace dropback::autograd {
namespace {

namespace T = dropback::tensor;
using dropback::testing::expect_gradients_close;
using dropback::testing::random_tensor;

class CompositeGradTest : public ::testing::Test {
 protected:
  rng::Xorshift128 rng_{321};
};

TEST_F(CompositeGradTest, ConvBnReluPoolChain) {
  Variable x(random_tensor({2, 2, 4, 4}, rng_), true);
  Variable w(random_tensor({3, 2, 3, 3}, rng_), true);
  Variable gamma(T::Tensor::from_vector({3}, {1.1F, 0.9F, 1.3F}), true);
  Variable beta(T::Tensor::from_vector({3}, {0.1F, -0.1F, 0.0F}), true);
  tensor::Conv2dSpec spec{3, 3, 1, 1};
  expect_gradients_close(
      [&] {
        T::Tensor rm = T::Tensor::zeros({3});
        T::Tensor rv = T::Tensor::ones({3});
        Variable h = conv2d(x, w, Variable(), spec);
        h = batch_norm2d(h, gamma, beta, rm, rv, true, 0.1F, 1e-5F);
        h = relu(h);
        h = avgpool2d(h, 2, 2);
        return sum(mul(h, h));
      },
      {x, w, gamma, beta}, 1e-2F, 0.1F, 1e-2F);
}

TEST_F(CompositeGradTest, ResidualBlockGradient) {
  // h = relu(conv(x)) + x  (the WRN skip pattern).
  Variable x(random_tensor({1, 2, 4, 4}, rng_), true);
  Variable w(random_tensor({2, 2, 3, 3}, rng_), true);
  tensor::Conv2dSpec spec{3, 3, 1, 1};
  expect_gradients_close(
      [&] {
        Variable h = relu(conv2d(x, w, Variable(), spec));
        h = add(h, x);
        return sum(mul(h, h));
      },
      {x, w}, 1e-2F, 8e-2F, 8e-3F);
}

TEST_F(CompositeGradTest, DenseConcatGradient) {
  // h1 = conv(x); h = concat(x, h1); y = conv(h)  (the DenseNet pattern).
  Variable x(random_tensor({1, 2, 4, 4}, rng_), true);
  Variable w1(random_tensor({2, 2, 3, 3}, rng_), true);
  Variable w2(random_tensor({1, 4, 3, 3}, rng_), true);
  tensor::Conv2dSpec spec{3, 3, 1, 1};
  expect_gradients_close(
      [&] {
        Variable h1 = conv2d(x, w1, Variable(), spec);
        Variable h = concat_channels({x, h1});
        Variable y = conv2d(h, w2, Variable(), spec);
        return sum(mul(y, y));
      },
      {x, w1, w2}, 1e-2F, 0.1F, 1e-2F);
}

TEST_F(CompositeGradTest, CrossEntropyThroughMlpStack) {
  Variable x(random_tensor({3, 5}, rng_), true);
  Variable w1(random_tensor({4, 5}, rng_), true);
  Variable b1(random_tensor({4}, rng_), true);
  Variable w2(random_tensor({3, 4}, rng_), true);
  const std::vector<std::int64_t> labels{0, 2, 1};
  expect_gradients_close(
      [&] {
        Variable h = relu(linear(x, w1, b1));
        Variable logits = linear(h, w2, Variable());
        return softmax_cross_entropy(logits, labels);
      },
      {x, w1, b1, w2});
}

TEST_F(CompositeGradTest, SharedWeightAcrossTwoBranches) {
  // The same weight used in two branches must receive summed gradients.
  Variable x(random_tensor({2, 3}, rng_), true);
  Variable w(random_tensor({3, 3}, rng_), true);
  expect_gradients_close(
      [&] {
        Variable a = linear(x, w, Variable());
        Variable b = linear(mul_scalar(x, 2.0F), w, Variable());
        return sum(mul(add(a, b), add(a, b)));
      },
      {x, w});
}

TEST_F(CompositeGradTest, DropoutMaskIsConstantThroughBackward) {
  // With a fixed mask (train-mode dropout applied via mul_mask), gradients
  // are exactly masked.
  Variable x(random_tensor({6}, rng_), true);
  T::Tensor mask = T::Tensor::from_vector({6}, {2, 0, 2, 0, 2, 0});
  Variable y = mul_mask(x, mask);
  backward(sum(y));
  for (std::int64_t i = 0; i < 6; ++i) {
    EXPECT_FLOAT_EQ(x.grad()[i], mask[i]);
  }
}

// --- LeNet-5 -----------------------------------------------------------------

TEST(LeNet5Model, ForwardShapeAndParamCount) {
  auto model = nn::models::make_lenet5(3);
  rng::Xorshift128 rng(1);
  autograd::Variable x(dropback::testing::random_tensor({2, 1, 28, 28}, rng));
  EXPECT_EQ(model->forward(x).value().shape(), (T::Shape{2, 10}));
  // conv1 6*1*25+6=156; conv2 16*6*25+16=2416; fc 400*120+120 + 120*84+84 +
  // 84*10+10 = 48120 + 10164 + 850 = 61666.
  EXPECT_EQ(model->num_params(), 156 + 2416 + 48120 + 10164 + 850);
}

TEST(LeNet5Model, BackwardReachesAllParams) {
  auto model = nn::models::make_lenet5(3);
  rng::Xorshift128 rng(2);
  autograd::Variable x(dropback::testing::random_tensor({1, 1, 28, 28}, rng));
  backward(sum(model->forward(x)));
  for (auto* p : model->parameters()) {
    EXPECT_TRUE(p->var.has_grad()) << p->name;
  }
}

TEST(LeNet5Model, TrainsUnderDropBack) {
  auto model = nn::models::make_lenet5(3);
  auto params = model->collect_parameters();
  dropback::core::DropBackConfig config;
  config.budget = model->num_params() / 5;
  dropback::core::DropBackOptimizer opt(params, 0.05F, config);
  rng::Xorshift128 rng(4);
  double first_loss = 0.0, last_loss = 0.0;
  for (int iter = 0; iter < 20; ++iter) {
    model->zero_grad();
    T::Tensor x({4, 1, 28, 28});
    std::vector<std::int64_t> labels;
    for (int b = 0; b < 4; ++b) {
      const std::int64_t cls = rng.uniform_int(2);
      labels.push_back(cls);
      for (std::int64_t p = 0; p < 784; ++p) {
        x[b * 784 + p] = rng.normal(static_cast<float>(cls), 0.3F);
      }
    }
    Variable input(x);
    Variable loss = softmax_cross_entropy(model->forward(input), labels);
    if (iter == 0) first_loss = loss.value()[0];
    last_loss = loss.value()[0];
    backward(loss);
    opt.step();
  }
  EXPECT_LT(last_loss, first_loss);
  EXPECT_EQ(opt.live_weights(), config.budget);
}

}  // namespace
}  // namespace dropback::autograd
