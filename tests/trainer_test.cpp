#include "train/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "autograd/ops.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/linear.hpp"
#include "nn/models/lenet.hpp"
#include "nn/sequential.hpp"
#include "optim/lr_schedule.hpp"

namespace dropback::train {
namespace {

namespace ag = dropback::autograd;

struct TinyTask {
  std::unique_ptr<data::InMemoryDataset> train_set;
  std::unique_ptr<data::InMemoryDataset> val_set;
};

TinyTask make_task(std::int64_t n_train = 200, std::int64_t n_val = 100) {
  data::SyntheticMnistOptions opt;
  opt.num_samples = n_train;
  opt.seed = 1;
  TinyTask task;
  task.train_set = data::make_synthetic_mnist(opt);
  opt.num_samples = n_val;
  opt.seed = 2;
  task.val_set = data::make_synthetic_mnist(opt);
  return task;
}

TEST(TrainerTest, LossDecreasesAndAccuracyRises) {
  auto task = make_task();
  auto model = nn::models::make_mnist_100_100(3);
  optim::SGD opt(model->collect_parameters(), 0.1F);
  TrainConfig options;
  options.epochs = 12;
  options.batch_size = 32;
  Trainer trainer(*model, opt, *task.train_set, *task.val_set, options);
  const auto result = trainer.run();
  ASSERT_EQ(result.history.size(), 12U);
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss);
  EXPECT_GT(result.best_val_acc, 0.5);
  EXPECT_GE(result.best_epoch, 0);
}

TEST(TrainerTest, EvaluateMatchesManualAccuracy) {
  auto task = make_task(50, 50);
  auto model = nn::models::make_mnist_100_100(3);
  const double acc = Trainer::evaluate(*model, *task.val_set, 16);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
  // Deterministic: same model, same data, same answer.
  EXPECT_DOUBLE_EQ(acc, Trainer::evaluate(*model, *task.val_set, 7));
}

TEST(TrainerTest, EvaluateRestoresTrainingMode) {
  auto task = make_task(20, 20);
  auto model = nn::models::make_mnist_100_100(3);
  model->set_training(true);
  Trainer::evaluate(*model, *task.val_set, 10);
  EXPECT_TRUE(model->training());
}

TEST(TrainerTest, ScheduleDrivesLearningRate) {
  auto task = make_task(40, 20);
  auto model = nn::models::make_mnist_100_100(4);
  optim::SGD opt(model->collect_parameters(), 1.0F);
  optim::StepDecay schedule(0.4F, 0.5F, 1);  // halve every epoch
  TrainConfig options;
  options.epochs = 3;
  options.schedule = &schedule;
  Trainer trainer(*model, opt, *task.train_set, *task.val_set, options);
  const auto result = trainer.run();
  EXPECT_FLOAT_EQ(result.history[0].lr, 0.4F);
  EXPECT_FLOAT_EQ(result.history[1].lr, 0.2F);
  EXPECT_FLOAT_EQ(result.history[2].lr, 0.1F);
}

TEST(TrainerTest, EarlyStoppingByPatience) {
  auto task = make_task(40, 20);
  auto model = nn::models::make_mnist_100_100(4);
  // lr = tiny: validation accuracy will not improve, so patience triggers.
  optim::SGD opt(model->collect_parameters(), 1e-8F);
  TrainConfig options;
  options.epochs = 50;
  options.patience = 2;
  Trainer trainer(*model, opt, *task.train_set, *task.val_set, options);
  const auto result = trainer.run();
  EXPECT_LT(result.history.size(), 10U);
}

TEST(TrainerTest, HooksFireInOrder) {
  auto task = make_task(32, 16);
  auto model = nn::models::make_mnist_100_100(5);
  optim::SGD opt(model->collect_parameters(), 0.05F);
  TrainConfig options;
  options.epochs = 1;
  options.batch_size = 16;
  Trainer trainer(*model, opt, *task.train_set, *task.val_set, options);
  int loss_calls = 0, backward_calls = 0, step_calls = 0, epoch_calls = 0;
  trainer.loss_transform = [&](const ag::Variable& loss) {
    ++loss_calls;
    return loss;
  };
  trainer.after_backward = [&] { ++backward_calls; };
  trainer.after_step = [&](std::int64_t) { ++step_calls; };
  trainer.on_epoch_end = [&](const EpochStats&) { ++epoch_calls; };
  trainer.run();
  EXPECT_EQ(loss_calls, 2);  // 32 samples / batch 16
  EXPECT_EQ(backward_calls, 2);
  EXPECT_EQ(step_calls, 2);
  EXPECT_EQ(epoch_calls, 1);
  EXPECT_EQ(trainer.global_step(), 2);
}

TEST(TrainerTest, LossTransformChangesOptimizedObjective) {
  auto task = make_task(32, 16);
  auto model = nn::models::make_mnist_100_100(6);
  auto params = model->collect_parameters();
  optim::SGD opt(params, 0.1F);
  TrainConfig options;
  options.epochs = 1;
  Trainer trainer(*model, opt, *task.train_set, *task.val_set, options);
  // Scale loss to zero: no parameter should move.
  trainer.loss_transform = [](const ag::Variable& loss) {
    return ag::mul_scalar(loss, 0.0F);
  };
  const float before = params[0]->var.value()[0];
  trainer.run();
  EXPECT_FLOAT_EQ(params[0]->var.value()[0], before);
}

// --- early-stopping edge cases --------------------------------------------

TEST(EarlyStopperTest, PatienceZeroStopsAtFirstStaleEpoch) {
  EarlyStopper stopper(0);
  EXPECT_TRUE(stopper.observe(0, 0.5));
  EXPECT_FALSE(stopper.should_stop());  // improving epochs never stop it
  EXPECT_TRUE(stopper.observe(1, 0.6));
  EXPECT_FALSE(stopper.should_stop());
  EXPECT_FALSE(stopper.observe(2, 0.6));  // tie = stale
  EXPECT_TRUE(stopper.should_stop());
}

TEST(EarlyStopperTest, TieDoesNotCountAsImprovement) {
  EarlyStopper stopper(5);
  stopper.observe(0, 0.5);
  EXPECT_FALSE(stopper.observe(1, 0.5));
  EXPECT_EQ(stopper.stale_epochs(), 1);
  EXPECT_EQ(stopper.best_epoch(), 0);
}

TEST(EarlyStopperTest, LateImprovementResetsStaleness) {
  EarlyStopper stopper(1);
  stopper.observe(0, 0.5);
  stopper.observe(1, 0.4);
  EXPECT_FALSE(stopper.should_stop());  // stale 1 is not > patience 1
  EXPECT_TRUE(stopper.observe(2, 0.6));
  EXPECT_EQ(stopper.stale_epochs(), 0);
  EXPECT_EQ(stopper.best_epoch(), 2);
  EXPECT_DOUBLE_EQ(stopper.best_val_acc(), 0.6);
  EXPECT_FALSE(stopper.should_stop());
}

TEST(EarlyStopperTest, NegativePatienceNeverStops) {
  EarlyStopper stopper(-1);
  for (int e = 0; e < 20; ++e) stopper.observe(e, 0.1);
  EXPECT_FALSE(stopper.should_stop());
}

TEST(TrainerTest, PatienceZeroStopsAfterSecondEpoch) {
  auto task = make_task(40, 20);
  auto model = nn::models::make_mnist_100_100(4);
  // lr = tiny: accuracy is flat, so epoch 1 ties epoch 0 and patience 0
  // stops immediately after it.
  optim::SGD opt(model->collect_parameters(), 1e-8F);
  TrainConfig options;
  options.epochs = 50;
  options.patience = 0;
  Trainer trainer(*model, opt, *task.train_set, *task.val_set, options);
  const auto result = trainer.run();
  EXPECT_EQ(result.history.size(), 2U);
  EXPECT_EQ(result.best_epoch, 0);
}

TEST(TrainerTest, FinalEpochImprovementIsRecorded) {
  auto task = make_task(200, 100);
  auto model = nn::models::make_mnist_100_100(3);
  optim::SGD opt(model->collect_parameters(), 0.1F);
  TrainConfig options;
  options.epochs = 6;
  options.patience = 10;  // wider than the run: no early stop possible
  Trainer trainer(*model, opt, *task.train_set, *task.val_set, options);
  const auto result = trainer.run();
  ASSERT_EQ(result.history.size(), 6U);
  // Wherever the best epoch lands, it must carry exactly the best accuracy.
  EXPECT_DOUBLE_EQ(result.history[static_cast<std::size_t>(result.best_epoch)]
                       .val_acc,
                   result.best_val_acc);
}

// --- numeric-anomaly policies ---------------------------------------------

TEST(TrainerTest, AnomalyThrowPolicyRaisesOnNanLoss) {
  auto task = make_task(32, 16);
  auto model = nn::models::make_mnist_100_100(5);
  optim::SGD opt(model->collect_parameters(), 0.05F);
  TrainConfig options;
  options.epochs = 1;
  options.batch_size = 16;
  options.anomaly_policy = AnomalyPolicy::kThrow;
  Trainer trainer(*model, opt, *task.train_set, *task.val_set, options);
  trainer.loss_transform = [](const ag::Variable& loss) {
    return ag::mul_scalar(loss, std::numeric_limits<float>::quiet_NaN());
  };
  EXPECT_THROW(trainer.run(), AnomalyError);
}

TEST(TrainerTest, AnomalySkipPolicyDropsPoisonedBatches) {
  auto task = make_task(48, 16);
  auto model = nn::models::make_mnist_100_100(5);
  optim::SGD opt(model->collect_parameters(), 0.05F);
  TrainConfig options;
  options.epochs = 1;
  options.batch_size = 16;
  options.anomaly_policy = AnomalyPolicy::kSkipStep;
  Trainer trainer(*model, opt, *task.train_set, *task.val_set, options);
  // Poison a gradient (not the loss) on the second batch only, exercising
  // the per-parameter gradient scan.
  int batch_no = 0;
  auto params = model->collect_parameters();
  trainer.after_backward = [&] {
    if (++batch_no == 2) {
      params[0]->var.grad()[0] = std::numeric_limits<float>::infinity();
    }
  };
  const auto result = trainer.run();
  EXPECT_EQ(result.anomalies, 1);
  EXPECT_EQ(result.skipped_steps, 1);
  EXPECT_FALSE(result.rolled_back);
  EXPECT_EQ(trainer.global_step(), 2);  // 3 batches, 1 skipped
  ASSERT_EQ(result.history.size(), 1U);
}

TEST(TrainerTest, AnomalyRollbackPolicyRestoresLastSnapshot) {
  auto task = make_task(48, 16);
  auto model = nn::models::make_mnist_100_100(5);
  optim::SGD opt(model->collect_parameters(), 0.05F);
  TrainConfig options;
  options.epochs = 1;
  options.batch_size = 16;
  options.anomaly_policy = AnomalyPolicy::kRollback;
  options.checkpoint_path = ::testing::TempDir() + "/anomaly_rollback.dbts";
  options.checkpoint_every = 1;  // snapshot after every step
  Trainer trainer(*model, opt, *task.train_set, *task.val_set, options);
  auto params = model->collect_parameters();
  std::vector<float> initial(params[0]->var.value().data(),
                             params[0]->var.value().data() +
                                 params[0]->numel());
  int batch_no = 0;
  trainer.after_backward = [&] {
    if (++batch_no == 3) {
      params[0]->var.grad()[0] = std::numeric_limits<float>::quiet_NaN();
    }
  };
  const auto result = trainer.run();
  EXPECT_TRUE(result.rolled_back);
  EXPECT_EQ(result.anomalies, 1);
  EXPECT_EQ(trainer.global_step(), 2);
  // Weights came back from the post-step-2 snapshot: finite everywhere and
  // no longer the initialization.
  bool moved = false;
  for (std::int64_t i = 0; i < params[0]->numel(); ++i) {
    ASSERT_TRUE(std::isfinite(params[0]->var.value()[i]));
    if (params[0]->var.value()[i] != initial[static_cast<std::size_t>(i)]) {
      moved = true;
    }
  }
  EXPECT_TRUE(moved);
}

TEST(TrainerTest, AnomalyRollbackWithoutSnapshotThrows) {
  auto task = make_task(32, 16);
  auto model = nn::models::make_mnist_100_100(5);
  optim::SGD opt(model->collect_parameters(), 0.05F);
  TrainConfig options;
  options.epochs = 1;
  options.batch_size = 16;
  options.anomaly_policy = AnomalyPolicy::kRollback;
  Trainer trainer(*model, opt, *task.train_set, *task.val_set, options);
  trainer.loss_transform = [](const ag::Variable& loss) {
    return ag::mul_scalar(loss, std::numeric_limits<float>::quiet_NaN());
  };
  EXPECT_THROW(trainer.run(), AnomalyError);
}

TEST(TrainerTest, ParseAnomalyPolicy) {
  EXPECT_EQ(parse_anomaly_policy("off"), AnomalyPolicy::kOff);
  EXPECT_EQ(parse_anomaly_policy("throw"), AnomalyPolicy::kThrow);
  EXPECT_EQ(parse_anomaly_policy("skip"), AnomalyPolicy::kSkipStep);
  EXPECT_EQ(parse_anomaly_policy("rollback"), AnomalyPolicy::kRollback);
  EXPECT_THROW(parse_anomaly_policy("explode"), std::invalid_argument);
}

TEST(TrainerTest, RejectsBadOptions) {
  auto task = make_task(10, 10);
  auto model = nn::models::make_mnist_100_100(3);
  optim::SGD opt(model->collect_parameters(), 0.1F);
  TrainConfig options;
  options.epochs = 0;
  EXPECT_THROW(
      Trainer(*model, opt, *task.train_set, *task.val_set, options),
      std::invalid_argument);
}

}  // namespace
}  // namespace dropback::train
