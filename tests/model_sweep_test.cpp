// Parameterized sweeps over the model zoo's scaling knobs, plus
// deterministic-mode gradient checks for the variational-dropout layers.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.hpp"
#include "baselines/variational_dropout.hpp"
#include "gradcheck.hpp"
#include "nn/models/densenet.hpp"
#include "nn/models/vgg_s.hpp"
#include "nn/models/wrn.hpp"
#include "rng/xorshift.hpp"

namespace dropback {
namespace {

namespace T = dropback::tensor;
namespace ag = dropback::autograd;
using dropback::testing::random_tensor;

/// VGG-S width sweep: forward shape holds and params grow monotonically.
class VggWidthSweep : public ::testing::TestWithParam<float> {};

TEST_P(VggWidthSweep, ForwardShapeHolds) {
  nn::models::VggSOptions opt;
  opt.width_mult = GetParam();
  auto net = nn::models::make_vgg_s(opt);
  net->set_training(false);
  rng::Xorshift128 rng(1);
  ag::Variable x(random_tensor({1, 3, 32, 32}, rng));
  EXPECT_EQ(net->forward(x).value().shape(), (T::Shape{1, 10}));
}

INSTANTIATE_TEST_SUITE_P(Widths, VggWidthSweep,
                         ::testing::Values(0.02F, 0.05F, 0.1F, 0.2F));

TEST(VggWidthMonotonic, ParamsGrowWithWidth) {
  std::int64_t prev = 0;
  for (float width : {0.02F, 0.05F, 0.1F, 0.2F}) {
    nn::models::VggSOptions opt;
    opt.width_mult = width;
    const auto n = nn::models::make_vgg_s(opt)->num_params();
    EXPECT_GT(n, prev);
    prev = n;
  }
}

/// WRN depth sweep: every valid 6n+4 depth builds and runs.
class WrnDepthSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(WrnDepthSweep, BuildsAndRuns) {
  nn::models::WideResNetOptions opt;
  opt.depth = GetParam();
  opt.width = 1;
  auto net = nn::models::make_wrn(opt);
  net->set_training(true);
  rng::Xorshift128 rng(2);
  ag::Variable x(random_tensor({1, 3, 16, 16}, rng));
  EXPECT_EQ(net->forward(x).value().shape(), (T::Shape{1, 10}));
}

INSTANTIATE_TEST_SUITE_P(Depths, WrnDepthSweep,
                         ::testing::Values(10, 16, 22, 28));

/// DenseNet sweep over (growth, layers_per_block).
class DenseNetSweep
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {
};

TEST_P(DenseNetSweep, BuildsAndRuns) {
  const auto [growth, layers] = GetParam();
  nn::models::DenseNetOptions opt;
  opt.growth_rate = growth;
  opt.layers_per_block = layers;
  auto net = nn::models::make_densenet(opt);
  net->set_training(true);
  rng::Xorshift128 rng(3);
  ag::Variable x(random_tensor({1, 3, 16, 16}, rng));
  EXPECT_EQ(net->forward(x).value().shape(), (T::Shape{1, 10}));
}

INSTANTIATE_TEST_SUITE_P(Configs, DenseNetSweep,
                         ::testing::Values(std::make_pair(2LL, 2LL),
                                           std::make_pair(4LL, 3LL),
                                           std::make_pair(8LL, 2LL),
                                           std::make_pair(6LL, 4LL)));

// --- VD gradient checks -------------------------------------------------------

TEST(VdGradcheck, EvalModeLinearGradientIsExact) {
  // Deterministic (eval) path: masked-theta linear — numerically checkable.
  baselines::VdLinear layer(4, 3, 7);
  layer.set_training(false);
  rng::Xorshift128 rng(4);
  ag::Variable x(random_tensor({2, 4}, rng), true);
  dropback::testing::expect_gradients_close(
      [&] {
        ag::Variable y = layer.forward(x);
        return ag::sum(ag::mul(y, y));
      },
      {x});
}

TEST(VdGradcheck, KlGradientMatchesNumerical) {
  // The KL is a deterministic function of theta and log_sigma2.
  baselines::VdLinear layer(3, 2, 9);
  dropback::testing::expect_gradients_close(
      [&] { return layer.kl(); },
      {layer.theta().var, layer.log_sigma2().var}, 1e-2F, 8e-2F, 8e-3F);
}

TEST(VdGradcheck, KlFromLogAlphaGradient) {
  rng::Xorshift128 rng(5);
  ag::Variable log_alpha(random_tensor({6}, rng, -4.0F, 4.0F), true);
  dropback::testing::expect_gradients_close(
      [&] { return baselines::vd_kl_from_log_alpha(log_alpha); },
      {log_alpha});
}

TEST(VdGradcheck, TrainingModeMeanPathGradientFlows) {
  // With sigma ~ 0, the stochastic path collapses to the mean path;
  // gradients to theta approach the deterministic linear's.
  baselines::VdLinear layer(4, 3, 11);
  layer.log_sigma2().var.value().fill_(-30.0F);  // sigma ~ 0
  layer.set_training(true);
  rng::Xorshift128 rng(6);
  T::Tensor x = random_tensor({2, 4}, rng);
  ag::Variable input(x);
  ag::Variable y = layer.forward(input);
  ag::backward(ag::sum(y));
  ASSERT_TRUE(layer.theta().var.has_grad());
  // Expected gradient of sum(x.theta^T + b) wrt theta is sum_b x[b][i] at
  // every output row.
  for (std::int64_t o = 0; o < 3; ++o) {
    for (std::int64_t i = 0; i < 4; ++i) {
      const float expected = x.at({0, i}) + x.at({1, i});
      EXPECT_NEAR(layer.theta().var.grad().at({o, i}), expected, 1e-3F);
    }
  }
}

}  // namespace
}  // namespace dropback
