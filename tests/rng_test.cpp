#include "rng/xorshift.hpp"

#include <gtest/gtest.h>

#include "rng/init_spec.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace dropback::rng {
namespace {

TEST(Xorshift128, DeterministicForSameSeed) {
  Xorshift128 a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Xorshift128, DifferentSeedsDiverge) {
  Xorshift128 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Xorshift128, ZeroSeedIsValid) {
  Xorshift128 a(0);
  // Degenerate all-zero state would yield an endless zero stream.
  std::set<std::uint32_t> values;
  for (int i = 0; i < 100; ++i) values.insert(a.next_u32());
  EXPECT_GT(values.size(), 90U);
}

TEST(Xorshift128, UniformInUnitInterval) {
  Xorshift128 rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const float u = rng.uniform();
    ASSERT_GE(u, 0.0F);
    ASSERT_LT(u, 1.0F);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Xorshift128, UniformRangeRespectsBounds) {
  Xorshift128 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-3.0F, 5.0F);
    ASSERT_GE(v, -3.0F);
    ASSERT_LT(v, 5.0F);
  }
}

TEST(Xorshift128, UniformIntStaysBelowBound) {
  Xorshift128 rng(11);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 50000; ++i) {
    const std::uint32_t v = rng.uniform_int(10);
    ASSERT_LT(v, 10U);
    ++histogram[v];
  }
  // All buckets roughly uniform (5000 +- 10%).
  for (int count : histogram) {
    EXPECT_GT(count, 4400);
    EXPECT_LT(count, 5600);
  }
}

TEST(Xorshift128, NormalMomentsMatchStandardNormal) {
  Xorshift128 rng(13);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Xorshift128, NormalWithMeanAndStddev) {
  Xorshift128 rng(17);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0F, 0.5F);
    sum += x;
    sum_sq += (x - 3.0) * (x - 3.0);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 0.25, 0.01);
}

TEST(Splitmix64, IsDeterministicAndMixing) {
  EXPECT_EQ(splitmix64(1), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
  // Sequential inputs produce well-spread outputs.
  std::set<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 1000; ++i) out.insert(splitmix64(i));
  EXPECT_EQ(out.size(), 1000U);
}

// --- indexed (counter-based) regeneration --------------------------------

TEST(IndexedRegen, PureFunctionOfSeedAndIndex) {
  for (std::uint64_t seed : {0ULL, 1ULL, 0xDEADBEEFULL}) {
    for (std::uint64_t idx : {0ULL, 1ULL, 77ULL, 1000000ULL}) {
      EXPECT_EQ(indexed_u32(seed, idx), indexed_u32(seed, idx));
      EXPECT_EQ(indexed_normal_fast(seed, idx),
                indexed_normal_fast(seed, idx));
    }
  }
}

TEST(IndexedRegen, OrderIndependent) {
  // Access in forward order, then reverse order: identical values. This is
  // the property that lets DropBack regenerate untracked weights at any
  // time without storing them.
  const std::uint64_t seed = 99;
  std::vector<float> forward, backward;
  for (std::uint64_t i = 0; i < 500; ++i) {
    forward.push_back(indexed_normal_fast(seed, i));
  }
  for (std::uint64_t i = 500; i-- > 0;) {
    backward.push_back(indexed_normal_fast(seed, i));
  }
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);
}

TEST(IndexedRegen, DifferentSeedsDecorrelated) {
  int same = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (indexed_u32(1, i) == indexed_u32(2, i)) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(IndexedRegen, AdjacentIndicesDecorrelated) {
  // Correlation between consecutive draws should be tiny.
  const int n = 20000;
  double sum_x = 0, sum_y = 0, sum_xx = 0, sum_yy = 0, sum_xy = 0;
  for (int i = 0; i < n; ++i) {
    const double x = indexed_normal_fast(5, static_cast<std::uint64_t>(i));
    const double y =
        indexed_normal_fast(5, static_cast<std::uint64_t>(i) + 1);
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_yy += y * y;
    sum_xy += x * y;
  }
  const double cov = sum_xy / n - (sum_x / n) * (sum_y / n);
  const double vx = sum_xx / n - (sum_x / n) * (sum_x / n);
  const double vy = sum_yy / n - (sum_y / n) * (sum_y / n);
  EXPECT_LT(std::fabs(cov / std::sqrt(vx * vy)), 0.03);
}

TEST(IndexedRegen, FastNormalMomentsApproximatelyStandard) {
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = indexed_normal_fast(3, static_cast<std::uint64_t>(i));
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(IndexedRegen, FastNormalBoundedByCltRange) {
  // CLT over 4 bytes cannot exceed (1020-510)/147.8 ~ 3.451 sigma.
  for (int i = 0; i < 100000; ++i) {
    const float x = indexed_normal_fast(1, static_cast<std::uint64_t>(i));
    ASSERT_LT(std::fabs(x), 3.46F);
  }
}

TEST(IndexedRegen, BoxMullerMomentsStandard) {
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x =
        indexed_normal_boxmuller(3, static_cast<std::uint64_t>(i));
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(IndexedRegen, UniformInUnitInterval) {
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const float u = indexed_uniform(10, static_cast<std::uint64_t>(i));
    ASSERT_GE(u, 0.0F);
    ASSERT_LT(u, 1.0F);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(IndexedRegen, CostConstantsMatchPaperClaim) {
  // The 427x figure rests on the regen path being ~6 int + 1 float ops.
  EXPECT_EQ(kRegenIntOps, 6);
  EXPECT_EQ(kRegenFloatOps, 1);
}

/// Property sweep: the fast-normal histogram should be symmetric around 0
/// for any seed.
class IndexedSymmetryTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexedSymmetryTest, HistogramSymmetricAroundZero) {
  const std::uint64_t seed = GetParam();
  int pos = 0, neg = 0;
  for (int i = 0; i < 40000; ++i) {
    const float x = indexed_normal_fast(seed, static_cast<std::uint64_t>(i));
    if (x > 0.0F) ++pos;
    if (x < 0.0F) ++neg;
  }
  EXPECT_NEAR(static_cast<double>(pos) / (pos + neg), 0.5, 0.015);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexedSymmetryTest,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 1234567ULL,
                                           0xFFFFFFFFFFFFULL));

// --- batched multi-lane regen (docs/SIMD.md) ------------------------------
//
// InitSpec::fill / fill_range run on the SIMD regen kernel of the active
// dispatch target. The contract is bitwise: fill(n)[i] == value_at(i) for
// every i, every n (sub-lane sizes, exact vector multiples, ragged tails),
// and every window start — EXPECT_EQ on floats, never a tolerance.

TEST(InitSpecBatched, FillMatchesValueAtForEverySmallSize) {
  const InitSpec spec = InitSpec::scaled_normal(0.05F, 99);
  for (std::size_t n = 0; n <= 67; ++n) {
    std::vector<float> got(n, -1.0F);
    spec.fill(got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], spec.value_at(i)) << "n=" << n << " i=" << i;
    }
  }
}

TEST(InitSpecBatched, FillRangeMatchesValueAtAtArbitraryOffsets) {
  const InitSpec spec = InitSpec::scaled_normal(1.5F, 7);
  // Window starts straddling every lane-alignment class, plus one beyond
  // 2^32 so the 64-bit index path is exercised end to end.
  const std::uint64_t firsts[] = {0,  1,  3,  4,  7,   8,          15,
                                  16, 17, 63, 64, 511, 1000000007, (1ULL << 33) + 11};
  for (const std::uint64_t first : firsts) {
    std::vector<float> got(37, 0.0F);
    spec.fill_range(first, got.data(), got.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], spec.value_at(first + i))
          << "first=" << first << " i=" << i;
    }
  }
}

TEST(InitSpecBatched, FillRangeIsAWindowOfFill) {
  // Regeneration is a pure function of (spec, index): a window computed in
  // isolation equals the same slice of a from-zero fill.
  const InitSpec spec = InitSpec::scaled_normal(0.1F, 1234);
  std::vector<float> whole(96);
  spec.fill(whole.data(), whole.size());
  for (const std::size_t first : {std::size_t{0}, std::size_t{5},
                                  std::size_t{32}, std::size_t{65}}) {
    std::vector<float> window(whole.size() - first);
    spec.fill_range(first, window.data(), window.size());
    for (std::size_t i = 0; i < window.size(); ++i) {
      EXPECT_EQ(window[i], whole[first + i]) << "first=" << first;
    }
  }
}

TEST(InitSpecBatched, ConstantSpecFillsExactValue) {
  const InitSpec spec = InitSpec::constant(0.25F);
  std::vector<float> got(19, 0.0F);
  spec.fill_range(1000, got.data(), got.size());
  for (const float v : got) EXPECT_EQ(v, 0.25F);
}

TEST(InitSpecBatched, ZeroSizeFillIsANoop) {
  const InitSpec spec = InitSpec::scaled_normal(1.0F, 3);
  float sentinel = 42.0F;
  spec.fill(&sentinel, 0);
  spec.fill_range(17, &sentinel, 0);
  EXPECT_EQ(sentinel, 42.0F);
}

}  // namespace
}  // namespace dropback::rng
