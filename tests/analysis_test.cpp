#include <gtest/gtest.h>

#include <cmath>

#include "analysis/diffusion.hpp"
#include "analysis/kde.hpp"
#include "analysis/pca.hpp"
#include "analysis/set_stability.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "rng/xorshift.hpp"

namespace dropback::analysis {
namespace {

namespace T = dropback::tensor;

TEST(Diffusion, ZeroAtConstruction) {
  nn::Linear fc(5, 5, 1);
  DiffusionTracker tracker(fc.parameters());
  EXPECT_DOUBLE_EQ(tracker.distance(), 0.0);
}

TEST(Diffusion, TracksL2OfWeightChange) {
  nn::Linear fc(2, 1, 1, /*bias=*/false);
  DiffusionTracker tracker(fc.parameters());
  fc.weight().var.value()[0] += 3.0F;
  fc.weight().var.value()[1] -= 4.0F;
  EXPECT_NEAR(tracker.distance(), 5.0, 1e-5);
}

TEST(Diffusion, RecordBuildsSeries) {
  nn::Linear fc(3, 3, 1);
  DiffusionTracker tracker(fc.parameters());
  tracker.record(0);
  fc.weight().var.value()[0] += 1.0F;
  tracker.record(10);
  ASSERT_EQ(tracker.series().size(), 2U);
  EXPECT_EQ(tracker.series()[0].iteration, 0);
  EXPECT_DOUBLE_EQ(tracker.series()[0].distance, 0.0);
  EXPECT_NEAR(tracker.series()[1].distance, 1.0, 1e-6);
}

TEST(Diffusion, MagnitudePruningStartsWithLargeDistance) {
  // The Figure-5 contrast: zeroing weights at init immediately moves far
  // from w0, while DropBack regeneration keeps the distance at 0.
  nn::Linear fc(30, 30, 3);
  DiffusionTracker tracker(fc.parameters());
  // Zero 80% of weights (what magnitude pruning does at init).
  auto& w = fc.weight().var.value();
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    if (i % 5 != 0) w[i] = 0.0F;
  }
  EXPECT_GT(tracker.distance(), 1.0);
}

TEST(Kde, IntegratesToApproximatelyOne) {
  rng::Xorshift128 rng(1);
  std::vector<float> samples;
  for (int i = 0; i < 2000; ++i) samples.push_back(rng.normal());
  const auto grid = linspace(-6.0, 6.0, 601);
  const auto density = gaussian_kde(samples, grid);
  double integral = 0.0;
  for (std::size_t i = 1; i < grid.size(); ++i) {
    integral += 0.5 * (density[i] + density[i - 1]) * (grid[i] - grid[i - 1]);
  }
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(Kde, PeaksAtSampleMode) {
  std::vector<float> samples(500, 2.0F);
  for (int i = 0; i < 50; ++i) samples.push_back(-3.0F);
  const auto grid = linspace(-5.0, 5.0, 101);
  const auto density = gaussian_kde(samples, grid, 0.3);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < density.size(); ++i) {
    if (density[i] > density[peak]) peak = i;
  }
  EXPECT_NEAR(grid[peak], 2.0, 0.2);
}

TEST(Kde, SilvermanBandwidthPositiveAndScales) {
  rng::Xorshift128 rng(2);
  std::vector<float> narrow, wide;
  for (int i = 0; i < 500; ++i) {
    const float z = rng.normal();
    narrow.push_back(0.1F * z);
    wide.push_back(10.0F * z);
  }
  const double bn = silverman_bandwidth(narrow);
  const double bw = silverman_bandwidth(wide);
  EXPECT_GT(bn, 0.0);
  EXPECT_NEAR(bw / bn, 100.0, 5.0);
}

TEST(Kde, LinspaceEndpoints) {
  const auto g = linspace(-1.0, 1.0, 5);
  ASSERT_EQ(g.size(), 5U);
  EXPECT_DOUBLE_EQ(g.front(), -1.0);
  EXPECT_DOUBLE_EQ(g.back(), 1.0);
  EXPECT_DOUBLE_EQ(g[2], 0.0);
}

TEST(SetStability, FirstUpdateFillsBudget) {
  nn::Linear fc(10, 10, 1);
  TopKMembershipTracker tracker(fc.parameters(), 20);
  // Perturb some weights so scores are nonzero.
  for (std::int64_t i = 0; i < 30; ++i) {
    fc.weight().var.value()[i] += 0.01F * static_cast<float>(i + 1);
  }
  EXPECT_EQ(tracker.update(0), 20);
}

TEST(SetStability, StableWeightsProduceZeroChurn) {
  nn::Linear fc(10, 10, 1);
  TopKMembershipTracker tracker(fc.parameters(), 10);
  for (std::int64_t i = 0; i < 15; ++i) {
    fc.weight().var.value()[i] += 0.1F * static_cast<float>(i + 1);
  }
  tracker.update(0);
  // No weight movement -> the same set is selected.
  EXPECT_EQ(tracker.update(1), 0);
  ASSERT_EQ(tracker.series().size(), 2U);
  EXPECT_EQ(tracker.series()[1].swapped, 0);
}

TEST(SetStability, GrowingOutsiderEntersSet) {
  nn::Linear fc(10, 10, 1);
  TopKMembershipTracker tracker(fc.parameters(), 5);
  for (std::int64_t i = 0; i < 5; ++i) {
    fc.weight().var.value()[i] += 1.0F;
  }
  tracker.update(0);
  // A previously-untouched weight moves a lot.
  fc.weight().var.value()[50] += 10.0F;
  EXPECT_EQ(tracker.update(1), 1);
}

TEST(JacobiEigen, DiagonalizesKnownMatrix) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  std::vector<double> a{2, 1, 1, 2};
  std::vector<double> vals, vecs;
  jacobi_eigen(a, 2, vals, vecs);
  ASSERT_EQ(vals.size(), 2U);
  EXPECT_NEAR(vals[0], 3.0, 1e-9);
  EXPECT_NEAR(vals[1], 1.0, 1e-9);
  // Leading eigenvector ~ (1,1)/sqrt(2).
  EXPECT_NEAR(std::fabs(vecs[0 * 2 + 0]), 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(std::fabs(vecs[1 * 2 + 0]), 1.0 / std::sqrt(2.0), 1e-6);
}

TEST(JacobiEigen, IdentityStaysIdentity) {
  std::vector<double> a{1, 0, 0, 0, 1, 0, 0, 0, 1};
  std::vector<double> vals, vecs;
  jacobi_eigen(a, 3, vals, vecs);
  for (double v : vals) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(PcaProject, RecoversLineStructure) {
  // Points along a 1-D line embedded in 8-D: first component captures all
  // variance, the others are ~0.
  std::vector<std::vector<float>> rows;
  for (int t = 0; t < 20; ++t) {
    std::vector<float> row(8);
    for (int d = 0; d < 8; ++d) {
      row[d] = static_cast<float>(t) * (d + 1) * 0.1F;
    }
    rows.push_back(row);
  }
  const auto proj = pca_project(rows, 3);
  ASSERT_EQ(proj.size(), 20U);
  // Monotone along PC1.
  for (std::size_t i = 1; i < proj.size(); ++i) {
    EXPECT_NE(proj[i][0], proj[i - 1][0]);
  }
  // PC2/PC3 carry (almost) nothing.
  for (const auto& p : proj) {
    EXPECT_NEAR(p[1], 0.0, 1e-3);
    EXPECT_NEAR(p[2], 0.0, 1e-3);
  }
}

TEST(PcaProject, PreservesPairwiseDistancesForPlane) {
  // Points in a 2-D plane: PCA to 3 components is an isometry of the plane.
  rng::Xorshift128 rng(5);
  std::vector<std::vector<float>> rows;
  std::vector<std::pair<float, float>> coords;
  for (int t = 0; t < 15; ++t) {
    const float u = rng.uniform(-1, 1), v = rng.uniform(-1, 1);
    coords.emplace_back(u, v);
    std::vector<float> row(10);
    for (int d = 0; d < 10; ++d) {
      row[d] = u * 0.3F * (d + 1) + v * ((d % 3) - 1.0F);
    }
    rows.push_back(row);
  }
  const auto proj = pca_project(rows, 3);
  // Check one representative pair distance in original vs projected space.
  auto dist_orig = [&](int i, int j) {
    double acc = 0.0;
    for (int d = 0; d < 10; ++d) {
      acc += (rows[i][d] - rows[j][d]) * (rows[i][d] - rows[j][d]);
    }
    return std::sqrt(acc);
  };
  auto dist_proj = [&](int i, int j) {
    double acc = 0.0;
    for (int d = 0; d < 3; ++d) {
      acc += (proj[i][d] - proj[j][d]) * (proj[i][d] - proj[j][d]);
    }
    return std::sqrt(acc);
  };
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(dist_proj(i, i + 5), dist_orig(i, i + 5),
                0.02 * dist_orig(i, i + 5) + 1e-6);
  }
}

TEST(TrajectoryRecorderTest, SubsamplesAndSnapshots) {
  nn::Sequential net;
  net.emplace<nn::Linear>(20, 20, 1);  // 420 params
  TrajectoryRecorder rec(net.parameters(), 64);
  EXPECT_LE(rec.dim(), 64U);
  EXPECT_GT(rec.dim(), 0U);
  rec.snapshot();
  net.parameters()[0]->var.value()[0] += 1.0F;
  rec.snapshot();
  EXPECT_EQ(rec.num_snapshots(), 2U);
  // First coordinate is weight 0 (stride sampling from index 0).
  EXPECT_NE(rec.snapshots()[0][0], rec.snapshots()[1][0]);
}

TEST(TrajectoryRecorderTest, SmallModelUsesAllCoords) {
  nn::Linear fc(3, 3, 1, false);  // 9 params < max_coords
  TrajectoryRecorder rec(fc.parameters(), 64);
  EXPECT_EQ(rec.dim(), 9U);
}

}  // namespace
}  // namespace dropback::analysis
