#include "tensor/matmul.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "rng/xorshift.hpp"
#include "tensor/ops.hpp"

namespace dropback::tensor {
namespace {

Tensor rand_tensor(Shape shape, std::uint64_t seed) {
  rng::Xorshift128 rng(seed);
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(-1.0F, 1.0F);
  return t;
}

/// Naive triple-loop reference.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t l = 0; l < k; ++l) {
        acc += a.at({i, l}) * b.at({l, j});
      }
      c.at({i, j}) = static_cast<float>(acc);
    }
  }
  return c;
}

void expect_close(const Tensor& a, const Tensor& b, float tol = 1e-4F) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << "at flat index " << i;
  }
}

TEST(Matmul, KnownSmallCase) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_vector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at({0, 0}), 58.0F);
  EXPECT_FLOAT_EQ(c.at({0, 1}), 64.0F);
  EXPECT_FLOAT_EQ(c.at({1, 0}), 139.0F);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 154.0F);
}

TEST(Matmul, IdentityIsNeutral) {
  Tensor a = rand_tensor({4, 4}, 1);
  Tensor eye({4, 4});
  for (std::int64_t i = 0; i < 4; ++i) eye.at({i, i}) = 1.0F;
  expect_close(matmul(a, eye), a);
  expect_close(matmul(eye, a), a);
}

TEST(Matmul, InnerDimMismatchThrows) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({4, 2})), std::invalid_argument);
  EXPECT_THROW(matmul(Tensor({6}), Tensor({6, 1})), std::invalid_argument);
}

TEST(Matmul, SkipsZeroRowsCorrectly) {
  // The kernel short-circuits zero entries of A; result must still be exact.
  Tensor a = Tensor::from_vector({2, 3}, {0, 2, 0, 1, 0, 3});
  Tensor b = rand_tensor({3, 4}, 2);
  expect_close(matmul(a, b), naive_matmul(a, b));
}

TEST(MatmulTn, MatchesExplicitTranspose) {
  Tensor a = rand_tensor({5, 3}, 3);  // interpreted as A^T with A [3, 5]
  Tensor b = rand_tensor({5, 4}, 4);
  expect_close(matmul_tn(a, b), naive_matmul(transpose2d(a), b));
}

TEST(MatmulNt, MatchesExplicitTranspose) {
  Tensor a = rand_tensor({5, 3}, 5);
  Tensor b = rand_tensor({4, 3}, 6);
  expect_close(matmul_nt(a, b), naive_matmul(a, transpose2d(b)));
}

TEST(MatmulTn, DimChecks) {
  EXPECT_THROW(matmul_tn(Tensor({5, 3}), Tensor({4, 4})),
               std::invalid_argument);
}

TEST(MatmulNt, DimChecks) {
  EXPECT_THROW(matmul_nt(Tensor({5, 3}), Tensor({4, 4})),
               std::invalid_argument);
}

TEST(Matmul, BlockedPathAgreesWithSmallKernel) {
  // k*n above the L2 threshold dispatches the cache-blocked kernel; verify
  // it produces the same result as the naive reference on a sub-slice.
  Tensor a = rand_tensor({8, 600}, 30);
  Tensor b = rand_tensor({600, 512}, 31);  // k*n = 307200 > 262144
  Tensor c = matmul(a, b);
  // Spot-check 50 entries against the naive dot product.
  rng::Xorshift128 rng(32);
  for (int t = 0; t < 50; ++t) {
    const std::int64_t i = rng.uniform_int(8);
    const std::int64_t j = rng.uniform_int(512);
    double acc = 0.0;
    for (std::int64_t l = 0; l < 600; ++l) {
      acc += a.at({i, l}) * b.at({l, j});
    }
    EXPECT_NEAR(c.at({i, j}), acc, 1e-3) << i << "," << j;
  }
}

/// Shape sweep: all three kernels agree with the naive reference.
class MatmulSweep : public ::testing::TestWithParam<
                        std::tuple<std::int64_t, std::int64_t, std::int64_t>> {
};

TEST_P(MatmulSweep, AgreesWithNaive) {
  const auto [m, k, n] = GetParam();
  Tensor a = rand_tensor({m, k}, 10 + m);
  Tensor b = rand_tensor({k, n}, 20 + n);
  expect_close(matmul(a, b), naive_matmul(a, b));
  // Aᵀ path.
  Tensor at = transpose2d(a);
  expect_close(matmul_tn(at, b), naive_matmul(a, b));
  // Bᵀ path.
  Tensor bt = transpose2d(b);
  expect_close(matmul_nt(a, bt), naive_matmul(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 1),
                      std::make_tuple(3, 1, 5), std::make_tuple(8, 8, 8),
                      std::make_tuple(5, 13, 7), std::make_tuple(16, 3, 32),
                      std::make_tuple(2, 64, 2), std::make_tuple(31, 17, 9)));

}  // namespace
}  // namespace dropback::tensor
