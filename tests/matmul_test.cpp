#include "tensor/matmul.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "rng/xorshift.hpp"
#include "tensor/ops.hpp"

namespace dropback::tensor {
namespace {

Tensor rand_tensor(Shape shape, std::uint64_t seed) {
  rng::Xorshift128 rng(seed);
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(-1.0F, 1.0F);
  return t;
}

/// Naive triple-loop reference.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t l = 0; l < k; ++l) {
        acc += a.at({i, l}) * b.at({l, j});
      }
      c.at({i, j}) = static_cast<float>(acc);
    }
  }
  return c;
}

void expect_close(const Tensor& a, const Tensor& b, float tol = 1e-4F) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << "at flat index " << i;
  }
}

TEST(Matmul, KnownSmallCase) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_vector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at({0, 0}), 58.0F);
  EXPECT_FLOAT_EQ(c.at({0, 1}), 64.0F);
  EXPECT_FLOAT_EQ(c.at({1, 0}), 139.0F);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 154.0F);
}

TEST(Matmul, IdentityIsNeutral) {
  Tensor a = rand_tensor({4, 4}, 1);
  Tensor eye({4, 4});
  for (std::int64_t i = 0; i < 4; ++i) eye.at({i, i}) = 1.0F;
  expect_close(matmul(a, eye), a);
  expect_close(matmul(eye, a), a);
}

TEST(Matmul, InnerDimMismatchThrows) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({4, 2})), std::invalid_argument);
  EXPECT_THROW(matmul(Tensor({6}), Tensor({6, 1})), std::invalid_argument);
}

TEST(Matmul, SkipsZeroRowsCorrectly) {
  // The kernel short-circuits zero entries of A; result must still be exact.
  Tensor a = Tensor::from_vector({2, 3}, {0, 2, 0, 1, 0, 3});
  Tensor b = rand_tensor({3, 4}, 2);
  expect_close(matmul(a, b), naive_matmul(a, b));
}

TEST(MatmulTn, MatchesExplicitTranspose) {
  Tensor a = rand_tensor({5, 3}, 3);  // interpreted as A^T with A [3, 5]
  Tensor b = rand_tensor({5, 4}, 4);
  expect_close(matmul_tn(a, b), naive_matmul(transpose2d(a), b));
}

TEST(MatmulNt, MatchesExplicitTranspose) {
  Tensor a = rand_tensor({5, 3}, 5);
  Tensor b = rand_tensor({4, 3}, 6);
  expect_close(matmul_nt(a, b), naive_matmul(a, transpose2d(b)));
}

TEST(MatmulTn, DimChecks) {
  EXPECT_THROW(matmul_tn(Tensor({5, 3}), Tensor({4, 4})),
               std::invalid_argument);
}

TEST(MatmulNt, DimChecks) {
  EXPECT_THROW(matmul_nt(Tensor({5, 3}), Tensor({4, 4})),
               std::invalid_argument);
}

TEST(Matmul, BlockedPathAgreesWithSmallKernel) {
  // k*n above the L2 threshold dispatches the cache-blocked kernel; verify
  // it produces the same result as the naive reference on a sub-slice.
  Tensor a = rand_tensor({8, 600}, 30);
  Tensor b = rand_tensor({600, 512}, 31);  // k*n = 307200 > 262144
  Tensor c = matmul(a, b);
  // Spot-check 50 entries against the naive dot product.
  rng::Xorshift128 rng(32);
  for (int t = 0; t < 50; ++t) {
    const std::int64_t i = rng.uniform_int(8);
    const std::int64_t j = rng.uniform_int(512);
    double acc = 0.0;
    for (std::int64_t l = 0; l < 600; ++l) {
      acc += a.at({i, l}) * b.at({l, j});
    }
    EXPECT_NEAR(c.at({i, j}), acc, 1e-3) << i << "," << j;
  }
}

/// Shape sweep: all three kernels agree with the naive reference.
class MatmulSweep : public ::testing::TestWithParam<
                        std::tuple<std::int64_t, std::int64_t, std::int64_t>> {
};

TEST_P(MatmulSweep, AgreesWithNaive) {
  const auto [m, k, n] = GetParam();
  Tensor a = rand_tensor({m, k}, 10 + m);
  Tensor b = rand_tensor({k, n}, 20 + n);
  expect_close(matmul(a, b), naive_matmul(a, b));
  // Aᵀ path.
  Tensor at = transpose2d(a);
  expect_close(matmul_tn(at, b), naive_matmul(a, b));
  // Bᵀ path.
  Tensor bt = transpose2d(b);
  expect_close(matmul_nt(a, bt), naive_matmul(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 1),
                      std::make_tuple(3, 1, 5), std::make_tuple(8, 8, 8),
                      std::make_tuple(5, 13, 7), std::make_tuple(16, 3, 32),
                      std::make_tuple(2, 64, 2), std::make_tuple(31, 17, 9)));

// Edge shapes for the SIMD kernels (docs/SIMD.md): sizes below one vector
// lane for every backend width (n in 1..3 < SSE4's 4, n in 5..7 < AVX2's 8,
// n in 9..15 < AVX-512's 16), ragged tails just past each width, and odd
// everything. The packed matmul_nt microkernel additionally sees n % 4
// remainder columns handled by the scalar dot tail.
INSTANTIATE_TEST_SUITE_P(
    SimdEdgeShapes, MatmulSweep,
    ::testing::Values(std::make_tuple(1, 1, 2), std::make_tuple(1, 1, 3),
                      std::make_tuple(4, 3, 5), std::make_tuple(3, 5, 6),
                      std::make_tuple(2, 9, 7), std::make_tuple(5, 4, 9),
                      std::make_tuple(7, 6, 11), std::make_tuple(3, 2, 13),
                      std::make_tuple(6, 8, 15), std::make_tuple(4, 16, 17),
                      std::make_tuple(9, 11, 19), std::make_tuple(33, 29, 37),
                      std::make_tuple(5, 127, 3), std::make_tuple(4, 1, 16)));

TEST(Matmul, ZeroSizeOperands) {
  // Empty dimensions must round-trip without touching any kernel lane.
  const Tensor c1 = matmul(Tensor({0, 3}), Tensor({3, 4}));
  EXPECT_EQ(c1.shape(), Shape({0, 4}));
  const Tensor c2 = matmul(Tensor({2, 0}), Tensor({0, 5}));
  ASSERT_EQ(c2.shape(), Shape({2, 5}));
  for (std::int64_t i = 0; i < c2.numel(); ++i) EXPECT_EQ(c2[i], 0.0F);
  const Tensor c3 = matmul(Tensor({3, 4}), Tensor({4, 0}));
  EXPECT_EQ(c3.shape(), Shape({3, 0}));
  EXPECT_EQ(matmul_nt(Tensor({0, 3}), Tensor({2, 3})).shape(), Shape({0, 2}));
  EXPECT_EQ(matmul_nt(Tensor({2, 3}), Tensor({0, 3})).shape(), Shape({2, 0}));
  EXPECT_EQ(matmul_tn(Tensor({3, 0}), Tensor({3, 2})).shape(), Shape({0, 2}));
}

/// The exact per-output semantic of matmul_nt: float product (rounded to
/// float) accumulated into a double, l ascending, one final rounding to
/// float. The packed 4-wide microkernel must reproduce this bit for bit —
/// EXPECT_EQ on floats, not EXPECT_NEAR.
float exact_nt_dot(const Tensor& a, const Tensor& b, std::int64_t i,
                   std::int64_t j) {
  const std::int64_t k = a.size(1);
  double acc = 0.0;
  for (std::int64_t l = 0; l < k; ++l) {
    acc += static_cast<double>(a.at({i, l}) * b.at({j, l}));
  }
  return static_cast<float>(acc);
}

TEST(MatmulNt, PackedMicrokernelIsBitwiseExact) {
  // m >= 4 and n >= 4 engages the packed-panel path; n = 4q + r leaves r
  // columns on the scalar dot tail. Both halves must match the reference
  // semantic exactly on the active dispatch target.
  for (const auto& [m, k, n] :
       std::vector<std::array<std::int64_t, 3>>{{4, 4, 4},
                                                {5, 3, 6},
                                                {7, 17, 9},
                                                {4, 1, 5},
                                                {9, 33, 13}}) {
    const Tensor a = rand_tensor({m, k}, 100 + k);
    const Tensor b = rand_tensor({n, k}, 200 + n);
    const Tensor c = matmul_nt(a, b);
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        EXPECT_EQ(c.at({i, j}), exact_nt_dot(a, b, i, j))
            << m << "x" << k << "x" << n << " at " << i << "," << j;
      }
    }
  }
}

TEST(MatmulTn, StridedColumnAccessMatchesContiguous) {
  // matmul_tn reads A^T columns with stride m — the one non-contiguous
  // access pattern in the matmul family. It must agree bitwise with the
  // contiguous-operand product of the explicitly transposed matrix.
  const Tensor at = rand_tensor({13, 7}, 300);  // A is [7, 13] conceptually
  const Tensor b = rand_tensor({13, 5}, 301);
  const Tensor via_strided = matmul_tn(at, b);
  const Tensor via_copy = matmul(transpose2d(at), b);
  ASSERT_EQ(via_strided.shape(), via_copy.shape());
  for (std::int64_t i = 0; i < via_strided.numel(); ++i) {
    EXPECT_EQ(via_strided[i], via_copy[i]) << "flat " << i;
  }
}

}  // namespace
}  // namespace dropback::tensor
