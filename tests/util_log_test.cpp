// util::log thread-safety and formatting (ISSUE 3 satellite): concurrent
// loggers must never interleave mid-line, the optional timestamp prefix and
// JSON format must render exactly as documented, and both default to off so
// historical output stays stable.
#include <gtest/gtest.h>

#include <iostream>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "util/log.hpp"

namespace {

using namespace dropback;

/// Redirects std::clog (the info/debug sink) into a buffer for the test.
class ClogCapture {
 public:
  ClogCapture() : old_(std::clog.rdbuf(buffer_.rdbuf())) {}
  ~ClogCapture() { std::clog.rdbuf(old_); }
  std::string str() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class UtilLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::set_log_level(util::LogLevel::kDebug);
    util::set_log_format(util::LogFormat::kText);
    util::set_log_timestamps(false);
  }
  void TearDown() override {
    util::set_log_level(util::LogLevel::kInfo);
    util::set_log_format(util::LogFormat::kText);
    util::set_log_timestamps(false);
  }
};

TEST_F(UtilLogTest, DefaultTextFormatIsUnchanged) {
  EXPECT_EQ(util::format_log_line(util::LogLevel::kInfo, "hello"),
            "[dropback INFO ] hello");
  EXPECT_EQ(util::format_log_line(util::LogLevel::kError, "bad"),
            "[dropback ERROR] bad");
}

TEST_F(UtilLogTest, TimestampPrefixMatchesUtcPattern) {
  util::set_log_timestamps(true);
  const std::string line =
      util::format_log_line(util::LogLevel::kWarn, "slow");
  const std::regex pattern(
      R"(\[dropback \d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z WARN \] slow)");
  EXPECT_TRUE(std::regex_match(line, pattern)) << line;
}

TEST_F(UtilLogTest, JsonFormatIsOneFlatParseableRecord) {
  util::set_log_format(util::LogFormat::kJson);
  const std::string line =
      util::format_log_line(util::LogLevel::kInfo, "loss=0.5 \"quoted\"");
  const auto rec = obs::parse_flat_object(line);
  EXPECT_EQ(rec.at("level").string, "info");
  EXPECT_EQ(rec.at("msg").string, "loss=0.5 \"quoted\"");
  // ts is a full UTC second stamp.
  const std::regex ts(R"(\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z)");
  EXPECT_TRUE(std::regex_match(rec.at("ts").string, ts));
}

TEST_F(UtilLogTest, LevelFilterStillApplies) {
  ClogCapture capture;
  util::set_log_level(util::LogLevel::kWarn);
  util::log_info() << "dropped";
  EXPECT_EQ(capture.str(), "");
}

// The regression test for the satellite: N threads log M lines each through
// the shared sink; every captured line must be intact (prefix + payload +
// newline with nothing spliced in), which fails without the emit mutex.
TEST_F(UtilLogTest, ConcurrentLoggersNeverInterleaveMidLine) {
  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  ClogCapture capture;
  std::vector<std::thread> loggers;
  loggers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    loggers.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        util::log_info() << "thread=" << t << " line=" << i
                         << " padding-padding-padding-padding";
      }
    });
  }
  for (auto& th : loggers) th.join();

  const std::string out = capture.str();
  const std::regex line_pattern(
      R"(\[dropback INFO \] thread=\d+ line=\d+ padding-padding-padding-padding)");
  int lines = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::size_t end = out.find('\n', pos);
    ASSERT_NE(end, std::string::npos) << "missing trailing newline";
    const std::string line = out.substr(pos, end - pos);
    pos = end + 1;
    EXPECT_TRUE(std::regex_match(line, line_pattern))
        << "interleaved or torn line: " << line;
    ++lines;
  }
  EXPECT_EQ(lines, kThreads * kLines);
}

TEST_F(UtilLogTest, ConcurrentJsonLoggersStayParseable) {
  util::set_log_format(util::LogFormat::kJson);
  constexpr int kThreads = 4;
  constexpr int kLines = 100;
  ClogCapture capture;
  std::vector<std::thread> loggers;
  loggers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    loggers.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        util::log_info() << "t" << t << ":" << i;
      }
    });
  }
  for (auto& th : loggers) th.join();

  const std::string out = capture.str();
  int lines = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::size_t end = out.find('\n', pos);
    ASSERT_NE(end, std::string::npos);
    // Every line parses — a torn write would throw here.
    const auto rec = obs::parse_flat_object(out.substr(pos, end - pos));
    EXPECT_EQ(rec.at("level").string, "info");
    pos = end + 1;
    ++lines;
  }
  EXPECT_EQ(lines, kThreads * kLines);
}

TEST_F(UtilLogTest, ParseLogLevelAcceptsEveryDocumentedName) {
  EXPECT_EQ(util::parse_log_level("debug"), util::LogLevel::kDebug);
  EXPECT_EQ(util::parse_log_level("info"), util::LogLevel::kInfo);
  EXPECT_EQ(util::parse_log_level("warn"), util::LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("error"), util::LogLevel::kError);
  EXPECT_EQ(util::parse_log_level("off"), util::LogLevel::kOff);
}

TEST_F(UtilLogTest, ParseLogLevelRejectsUnknownNames) {
  // A typoed --log-level must fail loudly, not silently mean "info".
  for (const char* bad : {"", "INFO", "Debug", "verbose", "warning", "4"}) {
    EXPECT_THROW(util::parse_log_level(bad), std::invalid_argument)
        << "name: \"" << bad << "\"";
  }
  try {
    util::parse_log_level("nonsense");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The DROPBACK_CHECK message names the offender and the valid set.
    EXPECT_NE(std::string(e.what()).find("nonsense"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("debug|info|warn|error|off"),
              std::string::npos);
  }
}

}  // namespace
