// Proves the production DropBackOptimizer implements the paper's
// Algorithm 1 exactly: the literal sort-everything reference and the
// optimized nth_element/regeneration implementation produce bit-identical
// weight trajectories on identical gradient sequences.
#include <gtest/gtest.h>

#include "autograd/ops.hpp"
#include "core/dropback_optimizer.hpp"
#include "core/reference_algorithm.hpp"
#include "nn/linear.hpp"
#include "nn/models/lenet.hpp"
#include "nn/sequential.hpp"
#include "rng/xorshift.hpp"

namespace dropback::core {
namespace {

namespace T = dropback::tensor;
namespace ag = dropback::autograd;

std::unique_ptr<nn::Sequential> tiny_net(std::uint64_t seed = 1) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Linear>(4, 6, seed);
  net->emplace<nn::Linear>(6, 3, seed + 1);
  return net;
}

void make_gradients(nn::Module& net, std::uint64_t seed) {
  rng::Xorshift128 rng(seed);
  T::Tensor x({2, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-1, 1);
  ag::Variable input(x);
  ag::backward(ag::sum(ag::mul(net.forward(input), net.forward(input))));
}

void expect_identical_weights(const std::vector<nn::Parameter*>& a,
                              const std::vector<nn::Parameter*>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    for (std::int64_t i = 0; i < a[p]->numel(); ++i) {
      ASSERT_EQ(a[p]->var.value()[i], b[p]->var.value()[i])
          << "param " << p << " index " << i;
    }
  }
}

class ReferenceEquivalence
    : public ::testing::TestWithParam<std::pair<std::int64_t, float>> {};

TEST_P(ReferenceEquivalence, TrajectoriesAreBitIdentical) {
  const auto [budget, lr] = GetParam();
  auto net_opt = tiny_net(5);
  auto net_ref = tiny_net(5);
  auto params_opt = net_opt->collect_parameters();
  auto params_ref = net_ref->collect_parameters();

  DropBackConfig config;
  config.budget = budget;
  DropBackOptimizer optimizer(params_opt, lr, config);
  ReferenceState state = make_reference_state(params_ref);

  for (int iter = 0; iter < 6; ++iter) {
    net_opt->zero_grad();
    net_ref->zero_grad();
    make_gradients(*net_opt, 40 + iter);
    make_gradients(*net_ref, 40 + iter);
    optimizer.step();
    reference_dropback_step(params_ref, state, lr, budget);
    expect_identical_weights(params_opt, params_ref);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ReferenceEquivalence,
    ::testing::Values(std::make_pair(5LL, 0.1F), std::make_pair(12LL, 0.1F),
                      std::make_pair(25LL, 0.3F), std::make_pair(50LL, 0.05F),
                      std::make_pair(1LL, 0.2F)));

TEST(ReferenceEquivalenceFreeze, FrozenTrajectoriesMatch) {
  const std::int64_t budget = 10;
  const float lr = 0.2F;
  auto net_opt = tiny_net(7);
  auto net_ref = tiny_net(7);
  auto params_opt = net_opt->collect_parameters();
  auto params_ref = net_ref->collect_parameters();

  DropBackConfig config;
  config.budget = budget;
  config.freeze_after_steps = 3;
  DropBackOptimizer optimizer(params_opt, lr, config);
  ReferenceState state = make_reference_state(params_ref);

  for (int iter = 0; iter < 8; ++iter) {
    net_opt->zero_grad();
    net_ref->zero_grad();
    make_gradients(*net_opt, 90 + iter);
    make_gradients(*net_ref, 90 + iter);
    optimizer.step();
    reference_dropback_step(params_ref, state, lr, budget,
                            /*freeze_now=*/iter == 2);
    expect_identical_weights(params_opt, params_ref);
  }
  EXPECT_TRUE(optimizer.frozen());
  EXPECT_TRUE(state.frozen);
}

TEST(ReferenceEquivalenceScale, MnistModelOneStepMatches) {
  // One full-size sanity step on the 89.6k-parameter model.
  auto model_opt = nn::models::make_mnist_100_100(7);
  auto model_ref = nn::models::make_mnist_100_100(7);
  auto params_opt = model_opt->collect_parameters();
  auto params_ref = model_ref->collect_parameters();
  DropBackConfig config;
  config.budget = 2000;
  DropBackOptimizer optimizer(params_opt, 0.1F, config);
  ReferenceState state = make_reference_state(params_ref);
  // Identical synthetic gradients.
  rng::Xorshift128 rng(3);
  for (std::size_t p = 0; p < params_opt.size(); ++p) {
    float* ga = params_opt[p]->var.grad().data();
    float* gb = params_ref[p]->var.grad().data();
    for (std::int64_t i = 0; i < params_opt[p]->numel(); ++i) {
      const float g = rng.uniform(-1, 1);
      ga[i] = g;
      gb[i] = g;
    }
  }
  optimizer.step();
  reference_dropback_step(params_ref, state, 0.1F, 2000);
  expect_identical_weights(params_opt, params_ref);
}

}  // namespace
}  // namespace dropback::core
