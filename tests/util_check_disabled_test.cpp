// Compile-out smoke test: this file is built with -DDROPBACK_DISABLE_ASSERTS
// (see tests/CMakeLists.txt), under which DROPBACK_ASSERT must vanish —
// no throw, and crucially no evaluation of the condition or the streamed
// detail — while DROPBACK_CHECK (the public-API guard) keeps throwing.
#include <gtest/gtest.h>

#include <stdexcept>

#include "util/check.hpp"

#ifndef DROPBACK_DISABLE_ASSERTS
#error "util_check_disabled_test must be compiled with -DDROPBACK_DISABLE_ASSERTS"
#endif

namespace {

TEST(UtilCheckDisabled, AssertCompilesOutEntirely) {
  EXPECT_NO_THROW(DROPBACK_ASSERT(false, << "never seen"));
}

TEST(UtilCheckDisabled, AssertConditionIsNotEvaluated) {
  int evaluations = 0;
  DROPBACK_ASSERT(++evaluations > 0, << "side effect must not run");
  EXPECT_EQ(evaluations, 0);
}

TEST(UtilCheckDisabled, CheckStillThrows) {
  // Disabling asserts must never disable API-boundary validation.
  EXPECT_THROW(DROPBACK_CHECK(false, << "still on"), std::invalid_argument);
}

}  // namespace
