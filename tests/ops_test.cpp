#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "rng/xorshift.hpp"

namespace dropback::tensor {
namespace {

Tensor rand_tensor(Shape shape, std::uint64_t seed, float lo = -2.0F,
                   float hi = 2.0F) {
  rng::Xorshift128 rng(seed);
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(lo, hi);
  return t;
}

TEST(Elementwise, AddSubMulDiv) {
  Tensor a = Tensor::from_vector({4}, {1, 2, 3, 4});
  Tensor b = Tensor::from_vector({4}, {4, 3, 2, 1});
  EXPECT_FLOAT_EQ(add(a, b)[0], 5.0F);
  EXPECT_FLOAT_EQ(sub(a, b)[3], 3.0F);
  EXPECT_FLOAT_EQ(mul(a, b)[1], 6.0F);
  EXPECT_FLOAT_EQ(div(a, b)[2], 1.5F);
}

TEST(Elementwise, ShapeMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({3, 2});
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(mul(a, b), std::invalid_argument);
}

TEST(Elementwise, ScalarOps) {
  Tensor a = Tensor::from_vector({3}, {1, -2, 3});
  EXPECT_FLOAT_EQ(add_scalar(a, 1.5F)[1], -0.5F);
  EXPECT_FLOAT_EQ(mul_scalar(a, -2.0F)[2], -6.0F);
}

TEST(Elementwise, UnaryMathMatchesStd) {
  Tensor a = Tensor::from_vector({4}, {0.5F, 1.0F, 2.0F, 0.1F});
  EXPECT_FLOAT_EQ(exp(a)[1], std::exp(1.0F));
  EXPECT_FLOAT_EQ(log(a)[2], std::log(2.0F));
  EXPECT_FLOAT_EQ(sqrt(a)[0], std::sqrt(0.5F));
  EXPECT_FLOAT_EQ(tanh(a)[3], std::tanh(0.1F));
}

TEST(Elementwise, ReluAndAbsAndClamp) {
  Tensor a = Tensor::from_vector({4}, {-2, -0.5F, 0.5F, 2});
  Tensor r = relu(a);
  EXPECT_FLOAT_EQ(r[0], 0.0F);
  EXPECT_FLOAT_EQ(r[3], 2.0F);
  EXPECT_FLOAT_EQ(abs(a)[0], 2.0F);
  Tensor c = clamp(a, -1.0F, 1.0F);
  EXPECT_FLOAT_EQ(c[0], -1.0F);
  EXPECT_FLOAT_EQ(c[3], 1.0F);
  EXPECT_FLOAT_EQ(c[2], 0.5F);
}

TEST(Elementwise, SigmoidRange) {
  Tensor a = Tensor::from_vector({3}, {-10.0F, 0.0F, 10.0F});
  Tensor s = sigmoid(a);
  EXPECT_LT(s[0], 0.001F);
  EXPECT_FLOAT_EQ(s[1], 0.5F);
  EXPECT_GT(s[2], 0.999F);
}

TEST(Elementwise, MapAppliesArbitraryFunction) {
  Tensor a = Tensor::from_vector({3}, {1, 2, 3});
  Tensor m = map(a, [](float x) { return x * x + 1.0F; });
  EXPECT_FLOAT_EQ(m[2], 10.0F);
}

TEST(Structure, Transpose2d) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = transpose2d(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(t.at({0, 1}), 4.0F);
  EXPECT_FLOAT_EQ(t.at({2, 0}), 3.0F);
  // Double transpose is identity.
  Tensor tt = transpose2d(t);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(tt[i], a[i]);
}

TEST(Structure, AddRowVectorBroadcasts) {
  Tensor x = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_vector({3}, {10, 20, 30});
  Tensor y = add_row_vector(x, b);
  EXPECT_FLOAT_EQ(y.at({0, 0}), 11.0F);
  EXPECT_FLOAT_EQ(y.at({1, 2}), 36.0F);
  EXPECT_THROW(add_row_vector(x, Tensor({2})), std::invalid_argument);
}

TEST(Structure, MulRowVectorBroadcasts) {
  Tensor x = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  Tensor s = Tensor::from_vector({2}, {2, 10});
  Tensor y = mul_row_vector(x, s);
  EXPECT_FLOAT_EQ(y.at({0, 1}), 20.0F);
  EXPECT_FLOAT_EQ(y.at({1, 0}), 6.0F);
}

TEST(Structure, SumRowsAndCols) {
  Tensor x = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor cols = sum_rows(x);  // sums over rows -> per-column
  EXPECT_EQ(cols.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(cols[0], 5.0F);
  EXPECT_FLOAT_EQ(cols[2], 9.0F);
  Tensor rows = sum_cols(x);
  EXPECT_EQ(rows.shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(rows[0], 6.0F);
  EXPECT_FLOAT_EQ(rows[1], 15.0F);
}

TEST(Softmax, RowsSumToOneAndOrderPreserved) {
  Tensor x = rand_tensor({5, 7}, 3);
  Tensor p = row_softmax(x);
  for (std::int64_t i = 0; i < 5; ++i) {
    double sum = 0.0;
    for (std::int64_t j = 0; j < 7; ++j) {
      sum += p.at({i, j});
      ASSERT_GT(p.at({i, j}), 0.0F);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
  // Softmax is monotone: argmax preserved.
  EXPECT_EQ(argmax_rows(x), argmax_rows(p));
}

TEST(Softmax, StableUnderLargeLogits) {
  Tensor x = Tensor::from_vector({1, 3}, {1000.0F, 1001.0F, 999.0F});
  Tensor p = row_softmax(x);
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_GT(p[1], p[0]);
  EXPECT_GT(p[0], p[2]);
}

TEST(Softmax, LogSumExpMatchesNaiveOnSmallValues) {
  Tensor x = Tensor::from_vector({2, 3}, {0.1F, 0.2F, 0.3F, -1, 0, 1});
  Tensor lse = row_logsumexp(x);
  for (std::int64_t i = 0; i < 2; ++i) {
    double naive = 0.0;
    for (std::int64_t j = 0; j < 3; ++j) naive += std::exp(x.at({i, j}));
    EXPECT_NEAR(lse[i], std::log(naive), 1e-5);
  }
}

TEST(Softmax, ArgmaxRows) {
  Tensor x = Tensor::from_vector({2, 3}, {1, 5, 2, 9, 0, 3});
  const auto am = argmax_rows(x);
  EXPECT_EQ(am[0], 1);
  EXPECT_EQ(am[1], 0);
}

// --- channel helpers vs naive loops ----------------------------------------

TEST(Channel, MeanVarMatchNaive) {
  Tensor x = rand_tensor({2, 3, 4, 4}, 5);
  Tensor m = channel_mean(x);
  Tensor v = channel_var(x, m);
  for (std::int64_t c = 0; c < 3; ++c) {
    double sum = 0.0;
    for (std::int64_t n = 0; n < 2; ++n) {
      for (std::int64_t h = 0; h < 4; ++h) {
        for (std::int64_t w = 0; w < 4; ++w) sum += x.at({n, c, h, w});
      }
    }
    const double mean = sum / 32.0;
    EXPECT_NEAR(m[c], mean, 1e-5);
    double var = 0.0;
    for (std::int64_t n = 0; n < 2; ++n) {
      for (std::int64_t h = 0; h < 4; ++h) {
        for (std::int64_t w = 0; w < 4; ++w) {
          const double d = x.at({n, c, h, w}) - mean;
          var += d * d;
        }
      }
    }
    EXPECT_NEAR(v[c], var / 32.0, 1e-5);
  }
}

TEST(Channel, AffineAppliesPerChannel) {
  Tensor x = Tensor::ones({1, 2, 2, 2});
  Tensor mean = Tensor::from_vector({2}, {1.0F, 0.0F});
  Tensor scale = Tensor::from_vector({2}, {3.0F, 2.0F});
  Tensor shift = Tensor::from_vector({2}, {0.5F, -1.0F});
  Tensor y = channel_affine(x, mean, scale, shift);
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 0.5F);   // (1-1)*3+0.5
  EXPECT_FLOAT_EQ(y.at({0, 1, 1, 1}), 1.0F);   // (1-0)*2-1
}

TEST(Channel, SumAndDot) {
  Tensor x = rand_tensor({2, 2, 3, 3}, 7);
  Tensor y = rand_tensor({2, 2, 3, 3}, 8);
  Tensor s = channel_sum(x);
  Tensor d = channel_dot(x, y);
  for (std::int64_t c = 0; c < 2; ++c) {
    double sum = 0.0, dot = 0.0;
    for (std::int64_t n = 0; n < 2; ++n) {
      for (std::int64_t h = 0; h < 3; ++h) {
        for (std::int64_t w = 0; w < 3; ++w) {
          sum += x.at({n, c, h, w});
          dot += x.at({n, c, h, w}) * y.at({n, c, h, w});
        }
      }
    }
    EXPECT_NEAR(s[c], sum, 1e-4);
    EXPECT_NEAR(d[c], dot, 1e-4);
  }
}

TEST(Channel, MulPerChannel) {
  Tensor x = Tensor::ones({1, 3, 2, 2});
  Tensor s = Tensor::from_vector({3}, {1.0F, 2.0F, 3.0F});
  Tensor y = mul_per_channel(x, s);
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 1.0F);
  EXPECT_FLOAT_EQ(y.at({0, 1, 0, 1}), 2.0F);
  EXPECT_FLOAT_EQ(y.at({0, 2, 1, 1}), 3.0F);
}

TEST(Channel, RejectNonNchw) {
  EXPECT_THROW(channel_mean(Tensor({2, 3})), std::invalid_argument);
  EXPECT_THROW(channel_sum(Tensor({5})), std::invalid_argument);
}

/// Property sweep: add(a,b) == add(b,a) and sub(a,a) == 0 on random shapes.
class BinaryOpSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(BinaryOpSweep, CommutativityAndInverse) {
  Tensor a = rand_tensor(GetParam(), 11);
  Tensor b = rand_tensor(GetParam(), 12);
  Tensor ab = add(a, b);
  Tensor ba = add(b, a);
  Tensor zero = sub(a, a);
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_FLOAT_EQ(ab[i], ba[i]);
    EXPECT_FLOAT_EQ(zero[i], 0.0F);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BinaryOpSweep,
                         ::testing::Values(Shape{1}, Shape{17},
                                           Shape{3, 5}, Shape{2, 3, 4},
                                           Shape{2, 2, 2, 2}));

}  // namespace
}  // namespace dropback::tensor
