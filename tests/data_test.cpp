#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "data/dataloader.hpp"
#include "data/synthetic_cifar.hpp"
#include "data/synthetic_mnist.hpp"

namespace dropback::data {
namespace {

namespace T = dropback::tensor;

TEST(InMemoryDatasetTest, BasicAccessors) {
  T::Tensor images({4, 2, 2});
  for (std::int64_t i = 0; i < 16; ++i) images[i] = static_cast<float>(i);
  InMemoryDataset ds(images, {0, 1, 0, 1}, 2);
  EXPECT_EQ(ds.size(), 4);
  EXPECT_EQ(ds.sample_shape(), (T::Shape{2, 2}));
  EXPECT_EQ(ds.num_classes(), 2);
  EXPECT_EQ(ds.label(3), 1);
  float buf[4];
  ds.copy_sample(2, buf);
  EXPECT_FLOAT_EQ(buf[0], 8.0F);
  EXPECT_FLOAT_EQ(buf[3], 11.0F);
}

TEST(InMemoryDatasetTest, RejectsMismatchedLabels) {
  EXPECT_THROW(InMemoryDataset(T::Tensor({4, 2}), {0, 1}, 2),
               std::invalid_argument);
}

TEST(InMemoryDatasetTest, GatherBuildsBatch) {
  T::Tensor images({4, 3});
  for (std::int64_t i = 0; i < 12; ++i) images[i] = static_cast<float>(i);
  InMemoryDataset ds(images, {0, 1, 2, 3}, 4);
  Batch batch = ds.gather({3, 0});
  EXPECT_EQ(batch.size(), 2);
  EXPECT_EQ(batch.images.shape(), (T::Shape{2, 3}));
  EXPECT_FLOAT_EQ(batch.images[0], 9.0F);  // sample 3 first
  EXPECT_EQ(batch.labels[0], 3);
  EXPECT_EQ(batch.labels[1], 0);
  EXPECT_THROW(ds.gather({4}), std::invalid_argument);
}

TEST(SyntheticMnistTest, ShapesLabelsAndRange) {
  SyntheticMnistOptions opt;
  opt.num_samples = 50;
  auto ds = make_synthetic_mnist(opt);
  EXPECT_EQ(ds->size(), 50);
  EXPECT_EQ(ds->sample_shape(), (T::Shape{1, 28, 28}));
  EXPECT_EQ(ds->num_classes(), 10);
  for (std::int64_t i = 0; i < ds->size(); ++i) {
    EXPECT_GE(ds->label(i), 0);
    EXPECT_LT(ds->label(i), 10);
  }
  EXPECT_GE(ds->images().min(), 0.0F);
  EXPECT_LE(ds->images().max(), 1.0F);
}

TEST(SyntheticMnistTest, ClassesAreBalanced) {
  SyntheticMnistOptions opt;
  opt.num_samples = 100;
  auto ds = make_synthetic_mnist(opt);
  std::vector<int> counts(10, 0);
  for (std::int64_t i = 0; i < 100; ++i) ++counts[ds->label(i)];
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(SyntheticMnistTest, DeterministicPerSeed) {
  SyntheticMnistOptions opt;
  opt.num_samples = 10;
  auto a = make_synthetic_mnist(opt);
  auto b = make_synthetic_mnist(opt);
  for (std::int64_t i = 0; i < a->images().numel(); ++i) {
    ASSERT_EQ(a->images()[i], b->images()[i]);
  }
  opt.seed = 999;
  auto c = make_synthetic_mnist(opt);
  bool differs = false;
  for (std::int64_t i = 0; i < a->images().numel() && !differs; ++i) {
    if (a->images()[i] != c->images()[i]) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(SyntheticMnistTest, DigitGlyphsAreDistinct) {
  // Noise-free renders of different digits must differ substantially; the
  // classes would otherwise be unlearnable.
  float d0[784], d1[784], d8[784];
  render_digit(0, 14, 14, 1.0F, 0.0F, 1.6F, d0);
  render_digit(1, 14, 14, 1.0F, 0.0F, 1.6F, d1);
  render_digit(8, 14, 14, 1.0F, 0.0F, 1.6F, d8);
  auto l2 = [](const float* a, const float* b) {
    double acc = 0.0;
    for (int i = 0; i < 784; ++i) acc += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(acc);
  };
  EXPECT_GT(l2(d0, d1), 3.0);
  EXPECT_GT(l2(d1, d8), 3.0);
  // 8 contains 0's segments: closer to 0 than 1 is.
  EXPECT_LT(l2(d0, d8), l2(d1, d8));
}

TEST(SyntheticMnistTest, RenderRejectsBadDigit) {
  float buf[784];
  EXPECT_THROW(render_digit(10, 14, 14, 1, 0, 1.5F, buf),
               std::invalid_argument);
  EXPECT_THROW(render_digit(-1, 14, 14, 1, 0, 1.5F, buf),
               std::invalid_argument);
}

TEST(SyntheticMnistTest, NearestCentroidBeatsChance) {
  // Sanity: the task carries class signal. Fit per-class mean images on a
  // train split and classify a held-out split by nearest centroid.
  SyntheticMnistOptions opt;
  opt.num_samples = 600;
  auto ds = make_synthetic_mnist(opt);
  std::vector<std::vector<double>> centroid(10,
                                            std::vector<double>(784, 0.0));
  std::vector<int> counts(10, 0);
  for (std::int64_t i = 0; i < 500; ++i) {
    float buf[784];
    ds->copy_sample(i, buf);
    auto& c = centroid[ds->label(i)];
    for (int p = 0; p < 784; ++p) c[p] += buf[p];
    ++counts[ds->label(i)];
  }
  for (int k = 0; k < 10; ++k) {
    for (int p = 0; p < 784; ++p) centroid[k][p] /= counts[k];
  }
  int hits = 0;
  for (std::int64_t i = 500; i < 600; ++i) {
    float buf[784];
    ds->copy_sample(i, buf);
    int best = -1;
    double best_d = 1e18;
    for (int k = 0; k < 10; ++k) {
      double d = 0.0;
      for (int p = 0; p < 784; ++p) {
        d += (buf[p] - centroid[k][p]) * (buf[p] - centroid[k][p]);
      }
      if (d < best_d) {
        best_d = d;
        best = k;
      }
    }
    if (best == ds->label(i)) ++hits;
  }
  EXPECT_GT(hits, 45);  // chance would be ~10
}

TEST(SyntheticCifarTest, ShapesLabelsAndRange) {
  SyntheticCifarOptions opt;
  opt.num_samples = 40;
  auto ds = make_synthetic_cifar(opt);
  EXPECT_EQ(ds->size(), 40);
  EXPECT_EQ(ds->sample_shape(), (T::Shape{3, 32, 32}));
  EXPECT_EQ(ds->num_classes(), 10);
  EXPECT_GE(ds->images().min(), 0.0F);
  EXPECT_LE(ds->images().max(), 1.0F);
}

TEST(SyntheticCifarTest, ClassesCarrySignal) {
  SyntheticCifarOptions opt;
  opt.num_samples = 400;
  auto ds = make_synthetic_cifar(opt);
  // Mean color per class differs strongly across at least some pairs.
  const std::int64_t spp = 3 * 32 * 32;
  std::vector<std::vector<double>> mean_rgb(10, std::vector<double>(3, 0.0));
  std::vector<int> counts(10, 0);
  std::vector<float> buf(static_cast<std::size_t>(spp));
  for (std::int64_t i = 0; i < ds->size(); ++i) {
    ds->copy_sample(i, buf.data());
    const int cls = static_cast<int>(ds->label(i));
    for (int ch = 0; ch < 3; ++ch) {
      double acc = 0.0;
      for (int p = 0; p < 1024; ++p) acc += buf[ch * 1024 + p];
      mean_rgb[cls][ch] += acc / 1024.0;
    }
    ++counts[cls];
  }
  for (int k = 0; k < 10; ++k) {
    for (int ch = 0; ch < 3; ++ch) mean_rgb[k][ch] /= counts[k];
  }
  // Class 0 (red palette) vs class 2 (blue palette).
  EXPECT_GT(mean_rgb[0][0], mean_rgb[2][0]);
  EXPECT_GT(mean_rgb[2][2], mean_rgb[0][2]);
}

TEST(SyntheticCifarTest, DeterministicPerSeed) {
  SyntheticCifarOptions opt;
  opt.num_samples = 10;
  auto a = make_synthetic_cifar(opt);
  auto b = make_synthetic_cifar(opt);
  for (std::int64_t i = 0; i < a->images().numel(); ++i) {
    ASSERT_EQ(a->images()[i], b->images()[i]);
  }
}

TEST(DataLoaderTest, CoversEveryIndexOncePerEpoch) {
  SyntheticMnistOptions opt;
  opt.num_samples = 23;  // deliberately not divisible by batch size
  auto ds = make_synthetic_mnist(opt);
  DataLoader loader(*ds, 5, /*shuffle=*/true, 7);
  EXPECT_EQ(loader.num_batches(), 5);
  Batch batch;
  std::multiset<std::int64_t> seen_labels;
  std::int64_t total = 0;
  while (loader.next(batch)) total += batch.size();
  EXPECT_EQ(total, 23);
}

TEST(DataLoaderTest, ShuffleChangesOrderDeterministically) {
  SyntheticMnistOptions opt;
  opt.num_samples = 30;
  auto ds = make_synthetic_mnist(opt);
  DataLoader a(*ds, 30, true, 7);
  DataLoader b(*ds, 30, true, 7);
  DataLoader c(*ds, 30, false, 7);
  Batch ba, bb, bc;
  a.next(ba);
  b.next(bb);
  c.next(bc);
  EXPECT_EQ(ba.labels, bb.labels);  // same seed, same order
  EXPECT_NE(ba.labels, bc.labels);  // shuffled differs from sequential
  // Sequential order is 0,1,2,...: labels cycle mod 10.
  for (std::int64_t i = 0; i < 30; ++i) {
    EXPECT_EQ(bc.labels[static_cast<std::size_t>(i)], i % 10);
  }
}

TEST(DataLoaderTest, StartEpochReshuffles) {
  SyntheticMnistOptions opt;
  opt.num_samples = 50;
  auto ds = make_synthetic_mnist(opt);
  DataLoader loader(*ds, 50, true, 3);
  Batch first, second;
  loader.next(first);
  loader.start_epoch();
  loader.next(second);
  EXPECT_NE(first.labels, second.labels);
}

TEST(DataLoaderTest, RejectsBadBatchSize) {
  SyntheticMnistOptions opt;
  opt.num_samples = 5;
  auto ds = make_synthetic_mnist(opt);
  EXPECT_THROW(DataLoader(*ds, 0, false), std::invalid_argument);
}

/// Batch size sweep: total samples delivered is invariant.
class LoaderSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(LoaderSweep, DeliversWholeDataset) {
  SyntheticCifarOptions opt;
  opt.num_samples = 37;
  auto ds = make_synthetic_cifar(opt);
  DataLoader loader(*ds, GetParam(), true, 5);
  Batch batch;
  std::int64_t total = 0;
  while (loader.next(batch)) {
    EXPECT_LE(batch.size(), GetParam());
    total += batch.size();
  }
  EXPECT_EQ(total, 37);
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, LoaderSweep,
                         ::testing::Values(1, 2, 7, 16, 37, 64));

}  // namespace
}  // namespace dropback::data
