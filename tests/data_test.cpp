#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "data/dataloader.hpp"
#include "data/synthetic_cifar.hpp"
#include "data/synthetic_mnist.hpp"
#include "rng/xorshift.hpp"
#include "util/io_error.hpp"

namespace dropback::data {
namespace {

namespace T = dropback::tensor;

TEST(InMemoryDatasetTest, BasicAccessors) {
  T::Tensor images({4, 2, 2});
  for (std::int64_t i = 0; i < 16; ++i) images[i] = static_cast<float>(i);
  InMemoryDataset ds(images, {0, 1, 0, 1}, 2);
  EXPECT_EQ(ds.size(), 4);
  EXPECT_EQ(ds.sample_shape(), (T::Shape{2, 2}));
  EXPECT_EQ(ds.num_classes(), 2);
  EXPECT_EQ(ds.label(3), 1);
  float buf[4];
  ds.copy_sample(2, buf);
  EXPECT_FLOAT_EQ(buf[0], 8.0F);
  EXPECT_FLOAT_EQ(buf[3], 11.0F);
}

TEST(InMemoryDatasetTest, RejectsMismatchedLabels) {
  EXPECT_THROW(InMemoryDataset(T::Tensor({4, 2}), {0, 1}, 2),
               std::invalid_argument);
}

TEST(InMemoryDatasetTest, GatherBuildsBatch) {
  T::Tensor images({4, 3});
  for (std::int64_t i = 0; i < 12; ++i) images[i] = static_cast<float>(i);
  InMemoryDataset ds(images, {0, 1, 2, 3}, 4);
  Batch batch = ds.gather({3, 0});
  EXPECT_EQ(batch.size(), 2);
  EXPECT_EQ(batch.images.shape(), (T::Shape{2, 3}));
  EXPECT_FLOAT_EQ(batch.images[0], 9.0F);  // sample 3 first
  EXPECT_EQ(batch.labels[0], 3);
  EXPECT_EQ(batch.labels[1], 0);
  EXPECT_THROW(ds.gather({4}), std::invalid_argument);
}

TEST(SyntheticMnistTest, ShapesLabelsAndRange) {
  SyntheticMnistOptions opt;
  opt.num_samples = 50;
  auto ds = make_synthetic_mnist(opt);
  EXPECT_EQ(ds->size(), 50);
  EXPECT_EQ(ds->sample_shape(), (T::Shape{1, 28, 28}));
  EXPECT_EQ(ds->num_classes(), 10);
  for (std::int64_t i = 0; i < ds->size(); ++i) {
    EXPECT_GE(ds->label(i), 0);
    EXPECT_LT(ds->label(i), 10);
  }
  EXPECT_GE(ds->images().min(), 0.0F);
  EXPECT_LE(ds->images().max(), 1.0F);
}

TEST(SyntheticMnistTest, ClassesAreBalanced) {
  SyntheticMnistOptions opt;
  opt.num_samples = 100;
  auto ds = make_synthetic_mnist(opt);
  std::vector<int> counts(10, 0);
  for (std::int64_t i = 0; i < 100; ++i) ++counts[ds->label(i)];
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(SyntheticMnistTest, DeterministicPerSeed) {
  SyntheticMnistOptions opt;
  opt.num_samples = 10;
  auto a = make_synthetic_mnist(opt);
  auto b = make_synthetic_mnist(opt);
  for (std::int64_t i = 0; i < a->images().numel(); ++i) {
    ASSERT_EQ(a->images()[i], b->images()[i]);
  }
  opt.seed = 999;
  auto c = make_synthetic_mnist(opt);
  bool differs = false;
  for (std::int64_t i = 0; i < a->images().numel() && !differs; ++i) {
    if (a->images()[i] != c->images()[i]) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(SyntheticMnistTest, DigitGlyphsAreDistinct) {
  // Noise-free renders of different digits must differ substantially; the
  // classes would otherwise be unlearnable.
  float d0[784], d1[784], d8[784];
  render_digit(0, 14, 14, 1.0F, 0.0F, 1.6F, d0);
  render_digit(1, 14, 14, 1.0F, 0.0F, 1.6F, d1);
  render_digit(8, 14, 14, 1.0F, 0.0F, 1.6F, d8);
  auto l2 = [](const float* a, const float* b) {
    double acc = 0.0;
    for (int i = 0; i < 784; ++i) acc += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(acc);
  };
  EXPECT_GT(l2(d0, d1), 3.0);
  EXPECT_GT(l2(d1, d8), 3.0);
  // 8 contains 0's segments: closer to 0 than 1 is.
  EXPECT_LT(l2(d0, d8), l2(d1, d8));
}

TEST(SyntheticMnistTest, RenderRejectsBadDigit) {
  float buf[784];
  EXPECT_THROW(render_digit(10, 14, 14, 1, 0, 1.5F, buf),
               std::invalid_argument);
  EXPECT_THROW(render_digit(-1, 14, 14, 1, 0, 1.5F, buf),
               std::invalid_argument);
}

TEST(SyntheticMnistTest, NearestCentroidBeatsChance) {
  // Sanity: the task carries class signal. Fit per-class mean images on a
  // train split and classify a held-out split by nearest centroid.
  SyntheticMnistOptions opt;
  opt.num_samples = 600;
  auto ds = make_synthetic_mnist(opt);
  std::vector<std::vector<double>> centroid(10,
                                            std::vector<double>(784, 0.0));
  std::vector<int> counts(10, 0);
  for (std::int64_t i = 0; i < 500; ++i) {
    float buf[784];
    ds->copy_sample(i, buf);
    auto& c = centroid[ds->label(i)];
    for (int p = 0; p < 784; ++p) c[p] += buf[p];
    ++counts[ds->label(i)];
  }
  for (int k = 0; k < 10; ++k) {
    for (int p = 0; p < 784; ++p) centroid[k][p] /= counts[k];
  }
  int hits = 0;
  for (std::int64_t i = 500; i < 600; ++i) {
    float buf[784];
    ds->copy_sample(i, buf);
    int best = -1;
    double best_d = 1e18;
    for (int k = 0; k < 10; ++k) {
      double d = 0.0;
      for (int p = 0; p < 784; ++p) {
        d += (buf[p] - centroid[k][p]) * (buf[p] - centroid[k][p]);
      }
      if (d < best_d) {
        best_d = d;
        best = k;
      }
    }
    if (best == ds->label(i)) ++hits;
  }
  EXPECT_GT(hits, 45);  // chance would be ~10
}

TEST(SyntheticCifarTest, ShapesLabelsAndRange) {
  SyntheticCifarOptions opt;
  opt.num_samples = 40;
  auto ds = make_synthetic_cifar(opt);
  EXPECT_EQ(ds->size(), 40);
  EXPECT_EQ(ds->sample_shape(), (T::Shape{3, 32, 32}));
  EXPECT_EQ(ds->num_classes(), 10);
  EXPECT_GE(ds->images().min(), 0.0F);
  EXPECT_LE(ds->images().max(), 1.0F);
}

TEST(SyntheticCifarTest, ClassesCarrySignal) {
  SyntheticCifarOptions opt;
  opt.num_samples = 400;
  auto ds = make_synthetic_cifar(opt);
  // Mean color per class differs strongly across at least some pairs.
  const std::int64_t spp = 3 * 32 * 32;
  std::vector<std::vector<double>> mean_rgb(10, std::vector<double>(3, 0.0));
  std::vector<int> counts(10, 0);
  std::vector<float> buf(static_cast<std::size_t>(spp));
  for (std::int64_t i = 0; i < ds->size(); ++i) {
    ds->copy_sample(i, buf.data());
    const int cls = static_cast<int>(ds->label(i));
    for (int ch = 0; ch < 3; ++ch) {
      double acc = 0.0;
      for (int p = 0; p < 1024; ++p) acc += buf[ch * 1024 + p];
      mean_rgb[cls][ch] += acc / 1024.0;
    }
    ++counts[cls];
  }
  for (int k = 0; k < 10; ++k) {
    for (int ch = 0; ch < 3; ++ch) mean_rgb[k][ch] /= counts[k];
  }
  // Class 0 (red palette) vs class 2 (blue palette).
  EXPECT_GT(mean_rgb[0][0], mean_rgb[2][0]);
  EXPECT_GT(mean_rgb[2][2], mean_rgb[0][2]);
}

TEST(SyntheticCifarTest, DeterministicPerSeed) {
  SyntheticCifarOptions opt;
  opt.num_samples = 10;
  auto a = make_synthetic_cifar(opt);
  auto b = make_synthetic_cifar(opt);
  for (std::int64_t i = 0; i < a->images().numel(); ++i) {
    ASSERT_EQ(a->images()[i], b->images()[i]);
  }
}

TEST(DataLoaderTest, CoversEveryIndexOncePerEpoch) {
  SyntheticMnistOptions opt;
  opt.num_samples = 23;  // deliberately not divisible by batch size
  auto ds = make_synthetic_mnist(opt);
  DataLoader loader(*ds, 5, /*shuffle=*/true, 7);
  EXPECT_EQ(loader.num_batches(), 5);
  Batch batch;
  std::multiset<std::int64_t> seen_labels;
  std::int64_t total = 0;
  while (loader.next(batch)) total += batch.size();
  EXPECT_EQ(total, 23);
}

TEST(DataLoaderTest, ShuffleChangesOrderDeterministically) {
  SyntheticMnistOptions opt;
  opt.num_samples = 30;
  auto ds = make_synthetic_mnist(opt);
  DataLoader a(*ds, 30, true, 7);
  DataLoader b(*ds, 30, true, 7);
  DataLoader c(*ds, 30, false, 7);
  Batch ba, bb, bc;
  a.next(ba);
  b.next(bb);
  c.next(bc);
  EXPECT_EQ(ba.labels, bb.labels);  // same seed, same order
  EXPECT_NE(ba.labels, bc.labels);  // shuffled differs from sequential
  // Sequential order is 0,1,2,...: labels cycle mod 10.
  for (std::int64_t i = 0; i < 30; ++i) {
    EXPECT_EQ(bc.labels[static_cast<std::size_t>(i)], i % 10);
  }
}

TEST(DataLoaderTest, StartEpochReshuffles) {
  SyntheticMnistOptions opt;
  opt.num_samples = 50;
  auto ds = make_synthetic_mnist(opt);
  DataLoader loader(*ds, 50, true, 3);
  Batch first, second;
  loader.next(first);
  loader.start_epoch();
  loader.next(second);
  EXPECT_NE(first.labels, second.labels);
}

TEST(DataLoaderTest, RejectsBadBatchSize) {
  SyntheticMnistOptions opt;
  opt.num_samples = 5;
  auto ds = make_synthetic_mnist(opt);
  EXPECT_THROW(DataLoader(*ds, 0, false), std::invalid_argument);
}

/// Batch size sweep: total samples delivered is invariant.
class LoaderSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(LoaderSweep, DeliversWholeDataset) {
  SyntheticCifarOptions opt;
  opt.num_samples = 37;
  auto ds = make_synthetic_cifar(opt);
  DataLoader loader(*ds, GetParam(), true, 5);
  Batch batch;
  std::int64_t total = 0;
  while (loader.next(batch)) {
    EXPECT_LE(batch.size(), GetParam());
    total += batch.size();
  }
  EXPECT_EQ(total, 37);
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, LoaderSweep,
                         ::testing::Values(1, 2, 7, 16, 37, 64));

// ---------------------------------------------------------------------------
// Prefetch pipeline and deterministic per-sample transforms.
// ---------------------------------------------------------------------------

/// Collects all remaining (images-bytes, labels) pairs the loader delivers.
std::vector<std::pair<std::vector<float>, std::vector<std::int64_t>>>
collect_batches(DataLoader& loader) {
  std::vector<std::pair<std::vector<float>, std::vector<std::int64_t>>> out;
  Batch batch;
  while (loader.next(batch)) {
    out.emplace_back(std::vector<float>(batch.images.data(),
                                        batch.images.data() +
                                            batch.images.numel()),
                     batch.labels);
  }
  return out;
}

TEST(DataLoaderTest, PrefetchDeliversBitwiseIdenticalBatches) {
  SyntheticMnistOptions opt;
  opt.num_samples = 45;  // ragged final batch
  auto ds = make_synthetic_mnist(opt);
  DataLoaderOptions base;
  base.batch_size = 8;
  base.shuffle = true;
  base.seed = 77;
  base.transform = uniform_noise_transform(0.25F);

  DataLoaderOptions sync = base;
  DataLoaderOptions pre = base;
  pre.prefetch_batches = 1;
  DataLoader a(*ds, sync);
  DataLoader b(*ds, pre);
  for (int epoch = 0; epoch < 2; ++epoch) {
    if (epoch > 0) {
      a.start_epoch();
      b.start_epoch();
    }
    const auto ba = collect_batches(a);
    const auto bb = collect_batches(b);
    ASSERT_EQ(ba.size(), bb.size());
    for (std::size_t i = 0; i < ba.size(); ++i) {
      ASSERT_EQ(ba[i].second, bb[i].second) << "labels, batch " << i;
      ASSERT_EQ(ba[i].first.size(), bb[i].first.size());
      ASSERT_EQ(std::memcmp(ba[i].first.data(), bb[i].first.data(),
                            ba[i].first.size() * sizeof(float)),
                0)
          << "image bytes, epoch " << epoch << " batch " << i;
    }
  }
}

TEST(DataLoaderTest, TransformStreamFollowsSampleNotOrderOrPrefetch) {
  // A sample's augmentation bytes depend only on (seed, epoch, dataset
  // index) — shuffling the epoch order or moving assembly to the prefetch
  // thread must not change them. Identify samples by label (unique here).
  const std::int64_t n = 12;
  T::Tensor images({n, 4});
  std::vector<std::int64_t> labels;
  for (std::int64_t i = 0; i < n; ++i) {
    labels.push_back(i);
    for (std::int64_t p = 0; p < 4; ++p) {
      images[i * 4 + p] = static_cast<float>(i * 4 + p);
    }
  }
  InMemoryDataset ds(images, labels, n);

  const auto by_sample = [](DataLoader& loader) {
    std::map<std::int64_t, std::vector<float>> out;
    Batch b;
    while (loader.next(b)) {
      for (std::int64_t i = 0; i < b.size(); ++i) {
        const float* p = b.images.data() + i * 4;
        out[b.labels[static_cast<std::size_t>(i)]] =
            std::vector<float>(p, p + 4);
      }
    }
    return out;
  };

  DataLoaderOptions sequential;
  sequential.batch_size = 5;
  sequential.seed = 123;
  sequential.transform = uniform_noise_transform(0.5F);
  DataLoaderOptions shuffled = sequential;
  shuffled.shuffle = true;
  shuffled.prefetch_batches = 1;

  DataLoader a(ds, sequential);
  DataLoader b(ds, shuffled);
  const auto ma = by_sample(a);
  const auto mb = by_sample(b);
  ASSERT_EQ(ma.size(), static_cast<std::size_t>(n));
  ASSERT_EQ(mb.size(), static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(std::memcmp(ma.at(i).data(), mb.at(i).data(),
                          4 * sizeof(float)),
              0)
        << "sample " << i;
  }

  // A later epoch draws a different stream for the same sample.
  a.start_epoch();
  const auto ma1 = by_sample(a);
  bool any_differs = false;
  for (std::int64_t i = 0; i < n && !any_differs; ++i) {
    any_differs = std::memcmp(ma.at(i).data(), ma1.at(i).data(),
                              4 * sizeof(float)) != 0;
  }
  EXPECT_TRUE(any_differs);
}

TEST(DataLoaderTest, SampleStreamSeedsAreDistinct) {
  std::set<std::uint64_t> seen;
  for (std::int64_t epoch = 0; epoch < 8; ++epoch) {
    for (std::int64_t idx = 0; idx < 64; ++idx) {
      seen.insert(sample_stream_seed(42, epoch, idx));
    }
  }
  EXPECT_EQ(seen.size(), 8U * 64U);
}

// ---------------------------------------------------------------------------
// State serialization: v2 round trips, legacy v1 migrates, corruption throws.
// ---------------------------------------------------------------------------

TEST(DataLoaderStateTest, V2RoundTripResumesMidEpochWithPrefetch) {
  SyntheticMnistOptions opt;
  opt.num_samples = 40;
  auto ds = make_synthetic_mnist(opt);
  DataLoaderOptions options;
  options.batch_size = 8;
  options.shuffle = true;
  options.seed = 31;
  options.prefetch_batches = 1;
  options.transform = uniform_noise_transform(0.1F);

  DataLoader a(*ds, options);
  a.start_epoch();  // epoch 1, fresh shuffle
  Batch scratch;
  ASSERT_TRUE(a.next(scratch));
  ASSERT_TRUE(a.next(scratch));  // mid-epoch: 2 of 5 batches consumed

  std::ostringstream out(std::ios::binary);
  a.save_state(out);
  const std::string bytes = out.str();
  // "DBD2" + u32 version leads the stream.
  ASSERT_GE(bytes.size(), 8U);
  EXPECT_EQ(bytes.substr(0, 4), "DBD2");

  DataLoader b(*ds, options);
  std::istringstream in(bytes, std::ios::binary);
  b.load_state(in);
  EXPECT_EQ(b.epoch(), a.epoch());

  // Both finish this epoch and run the next identically.
  for (int epoch = 0; epoch < 2; ++epoch) {
    if (epoch > 0) {
      a.start_epoch();
      b.start_epoch();
    }
    const auto ba = collect_batches(a);
    const auto bb = collect_batches(b);
    ASSERT_EQ(ba.size(), bb.size());
    for (std::size_t i = 0; i < ba.size(); ++i) {
      ASSERT_EQ(ba[i].second, bb[i].second);
      ASSERT_EQ(std::memcmp(ba[i].first.data(), bb[i].first.data(),
                            ba[i].first.size() * sizeof(float)),
                0);
    }
  }
}

TEST(DataLoaderStateTest, SnapshotIdenticalWithPrefetchOnAndOff) {
  // The cursor counts consumed batches, never staged ones, so the staged
  // batch inside the prefetcher must not leak into the snapshot.
  SyntheticMnistOptions opt;
  opt.num_samples = 32;
  auto ds = make_synthetic_mnist(opt);
  DataLoaderOptions sync;
  sync.batch_size = 8;
  sync.shuffle = true;
  sync.seed = 5;
  DataLoaderOptions pre = sync;
  pre.prefetch_batches = 1;

  DataLoader a(*ds, sync);
  DataLoader b(*ds, pre);
  Batch scratch;
  ASSERT_TRUE(a.next(scratch));
  ASSERT_TRUE(b.next(scratch));
  std::ostringstream sa(std::ios::binary), sb(std::ios::binary);
  a.save_state(sa);
  b.save_state(sb);
  EXPECT_EQ(sa.str(), sb.str());
}

/// Hand-writes the seed repo's unversioned "DBDL" layout: magic, size,
/// batch, shuffle flag, RNG state, cursor, order (no version, no epoch).
std::string legacy_v1_state_bytes(std::int64_t size, std::int64_t batch,
                                  bool shuffle, std::int64_t cursor,
                                  const std::vector<std::int64_t>& order) {
  std::ostringstream out(std::ios::binary);
  const auto put = [&out](const auto& v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  out.write("DBDL", 4);
  put(size);
  put(batch);
  put(static_cast<std::uint8_t>(shuffle ? 1 : 0));
  rng::Xorshift128 rng(99);
  const rng::Xorshift128::State rs = rng.state();
  put(rs.x);
  put(rs.y);
  put(rs.z);
  put(rs.w);
  put(static_cast<std::uint8_t>(0));
  put(0.0F);
  put(cursor);
  for (const std::int64_t idx : order) put(idx);
  return out.str();
}

TEST(DataLoaderStateTest, LegacyV1StateLoadsAndResumesAsEpochZero) {
  SyntheticMnistOptions opt;
  opt.num_samples = 20;
  auto ds = make_synthetic_mnist(opt);
  // Reversed order, cursor after the first of four 5-sample batches.
  std::vector<std::int64_t> order(20);
  for (std::int64_t i = 0; i < 20; ++i) order[static_cast<std::size_t>(i)] =
      19 - i;
  const std::string bytes = legacy_v1_state_bytes(20, 5, true, 5, order);

  DataLoaderOptions options;
  options.batch_size = 5;
  options.shuffle = true;
  options.prefetch_batches = 1;  // new loader, old snapshot
  DataLoader loader(*ds, options);
  std::istringstream in(bytes, std::ios::binary);
  loader.load_state(in);
  EXPECT_EQ(loader.epoch(), 0);  // legacy layout predates the epoch counter

  Batch batch;
  ASSERT_TRUE(loader.next(batch));
  ASSERT_EQ(batch.size(), 5);
  for (std::int64_t i = 0; i < 5; ++i) {
    // Resumes at order[5] = 14, 13, 12, ...
    EXPECT_EQ(batch.labels[static_cast<std::size_t>(i)],
              ds->label(14 - i));
  }
  std::int64_t remaining = batch.size();
  while (loader.next(batch)) remaining += batch.size();
  EXPECT_EQ(remaining, 15);

  // Re-saving upgrades the snapshot to the versioned layout.
  std::ostringstream out(std::ios::binary);
  loader.save_state(out);
  EXPECT_EQ(out.str().substr(0, 4), "DBD2");
}

TEST(DataLoaderStateTest, CorruptStateIsRejected) {
  SyntheticMnistOptions opt;
  opt.num_samples = 16;
  auto ds = make_synthetic_mnist(opt);
  DataLoaderOptions options;
  options.batch_size = 4;
  options.shuffle = true;
  DataLoader loader(*ds, options);
  std::ostringstream out(std::ios::binary);
  loader.save_state(out);
  const std::string good = out.str();

  const auto load = [&](std::string bytes) {
    DataLoader fresh(*ds, options);
    std::istringstream in(bytes, std::ios::binary);
    fresh.load_state(in);
  };
  load(good);  // sanity: unmodified bytes are accepted

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_THROW(load(bad_magic), util::IoError);

  std::string future_version = good;
  future_version[4] = 9;  // u32 version field little-endian low byte
  EXPECT_THROW(load(future_version), util::IoError);

  EXPECT_THROW(load(good.substr(0, good.size() / 2)), util::IoError);

  // Layout after the 8-byte header: size(8) batch(8) shuffle(1) rng(21)
  // epoch(8) cursor(8) order(...).
  const std::size_t cursor_off = 8 + 8 + 8 + 1 + 21 + 8;
  std::string bad_cursor = good;
  const std::int64_t huge = 1000;
  std::memcpy(&bad_cursor[cursor_off], &huge, sizeof(huge));
  EXPECT_THROW(load(bad_cursor), util::IoError);

  std::string bad_index = good;
  std::memcpy(&bad_index[cursor_off + 8], &huge, sizeof(huge));
  EXPECT_THROW(load(bad_index), util::IoError);

  // Mismatched loader geometry is rejected even for well-formed bytes.
  DataLoaderOptions other = options;
  other.batch_size = 8;
  DataLoader mismatched(*ds, other);
  std::istringstream in(good, std::ios::binary);
  EXPECT_THROW(mismatched.load_state(in), util::IoError);
}

TEST(DataLoaderStateTest, PrefetchWorkerErrorSurfacesInNext) {
  // A throwing transform runs on the prefetch thread; the exception must be
  // relayed to the consumer instead of terminating the process.
  SyntheticMnistOptions opt;
  opt.num_samples = 8;
  auto ds = make_synthetic_mnist(opt);
  DataLoaderOptions options;
  options.batch_size = 4;
  options.prefetch_batches = 1;
  options.transform = [](float*, std::int64_t, rng::Xorshift128&) {
    throw std::runtime_error("augmentation failed");
  };
  DataLoader loader(*ds, options);
  Batch batch;
  EXPECT_THROW(loader.next(batch), std::runtime_error);
}

}  // namespace
}  // namespace dropback::data
