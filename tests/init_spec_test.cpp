#include "rng/init_spec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dropback::rng {
namespace {

TEST(InitSpec, LecunSigmaIsInverseSqrtFanIn) {
  const InitSpec spec = InitSpec::lecun(100, 1);
  EXPECT_FLOAT_EQ(spec.scale(), 0.1F);
  EXPECT_EQ(spec.kind(), InitSpec::Kind::kScaledNormal);
}

TEST(InitSpec, HeSigmaIsSqrtTwoOverFanIn) {
  const InitSpec spec = InitSpec::he(8, 1);
  EXPECT_FLOAT_EQ(spec.scale(), 0.5F);
}

TEST(InitSpec, ConstantReturnsSameValueEverywhere) {
  const InitSpec spec = InitSpec::constant(1.25F);
  for (std::uint64_t i : {0ULL, 5ULL, 99999ULL}) {
    EXPECT_FLOAT_EQ(spec.value_at(i), 1.25F);
  }
}

TEST(InitSpec, ValueAtIsDeterministic) {
  const InitSpec spec = InitSpec::scaled_normal(0.3F, 77);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(spec.value_at(i), spec.value_at(i));
  }
}

TEST(InitSpec, FillMatchesValueAt) {
  const InitSpec spec = InitSpec::lecun(50, 123);
  std::vector<float> buf(257);
  spec.fill(buf.data(), buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf[i], spec.value_at(i)) << i;
  }
}

TEST(InitSpec, FillConstant) {
  const InitSpec spec = InitSpec::constant(-2.0F);
  std::vector<float> buf(10, 0.0F);
  spec.fill(buf.data(), buf.size());
  for (float v : buf) EXPECT_FLOAT_EQ(v, -2.0F);
}

TEST(InitSpec, DifferentSeedsGiveDifferentDraws) {
  const InitSpec a = InitSpec::scaled_normal(1.0F, 1);
  const InitSpec b = InitSpec::scaled_normal(1.0F, 2);
  int same = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (a.value_at(i) == b.value_at(i)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(InitSpec, SampleStddevMatchesScale) {
  const float sigma = 0.05F;
  const InitSpec spec = InitSpec::scaled_normal(sigma, 31);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = spec.value_at(static_cast<std::uint64_t>(i));
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 3e-4);
  EXPECT_NEAR(std::sqrt(sum_sq / n), sigma, sigma * 0.03);
}

TEST(InitSpec, EqualityComparesAllFields) {
  EXPECT_EQ(InitSpec::scaled_normal(0.1F, 5), InitSpec::scaled_normal(0.1F, 5));
  EXPECT_FALSE(InitSpec::scaled_normal(0.1F, 5) ==
               InitSpec::scaled_normal(0.1F, 6));
  EXPECT_FALSE(InitSpec::scaled_normal(0.1F, 5) ==
               InitSpec::scaled_normal(0.2F, 5));
  EXPECT_FALSE(InitSpec::scaled_normal(0.1F, 5) == InitSpec::constant(0.1F));
  EXPECT_EQ(InitSpec::constant(1.0F), InitSpec::constant(1.0F));
}

TEST(InitSpec, DescribeMentionsKind) {
  EXPECT_NE(InitSpec::scaled_normal(0.1F, 5).describe().find("N(0"),
            std::string::npos);
  EXPECT_NE(InitSpec::constant(1.0F).describe().find("const"),
            std::string::npos);
}

TEST(InitSpec, PersistedBytesIsThirteen) {
  // 1 (kind) + 4 (scale) + 8 (seed): the entire cost of "storing" all
  // untracked weights of a tensor.
  EXPECT_EQ(InitSpec::persisted_bytes(), 13U);
}

TEST(InitSpec, DefaultConstructedIsZeroConstant) {
  const InitSpec spec;
  EXPECT_EQ(spec.kind(), InitSpec::Kind::kConstant);
  EXPECT_FLOAT_EQ(spec.value_at(0), 0.0F);
}

/// Fan-in sweep: sigma follows 1/sqrt(fan_in) for LeCun init.
class LecunSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LecunSweep, SigmaFollowsRule) {
  const std::size_t fan_in = GetParam();
  const InitSpec spec = InitSpec::lecun(fan_in, 9);
  EXPECT_NEAR(spec.scale(), 1.0 / std::sqrt(static_cast<double>(fan_in)),
              1e-6);
}

INSTANTIATE_TEST_SUITE_P(FanIns, LecunSweep,
                         ::testing::Values(1, 2, 16, 100, 784, 4096, 25088));

}  // namespace
}  // namespace dropback::rng
