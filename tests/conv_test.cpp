#include "tensor/conv.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "rng/xorshift.hpp"

namespace dropback::tensor {
namespace {

Tensor rand_tensor(Shape shape, std::uint64_t seed) {
  rng::Xorshift128 rng(seed);
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(-1.0F, 1.0F);
  return t;
}

/// Direct (definition-level) convolution used as ground truth.
Tensor naive_conv2d(const Tensor& x, const Tensor& w, const Tensor& b,
                    const Conv2dSpec& spec) {
  const std::int64_t n = x.size(0), cin = x.size(1), h = x.size(2),
                     wid = x.size(3);
  const std::int64_t cout = w.size(0);
  const std::int64_t oh = spec.out_h(h), ow = spec.out_w(wid);
  Tensor y({n, cout, oh, ow});
  for (std::int64_t bn = 0; bn < n; ++bn) {
    for (std::int64_t oc = 0; oc < cout; ++oc) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          double acc = b.defined() ? b[oc] : 0.0;
          for (std::int64_t ic = 0; ic < cin; ++ic) {
            for (std::int64_t ky = 0; ky < spec.kernel_h; ++ky) {
              for (std::int64_t kx = 0; kx < spec.kernel_w; ++kx) {
                const std::int64_t iy = oy * spec.stride + ky - spec.padding;
                const std::int64_t ix = ox * spec.stride + kx - spec.padding;
                if (iy >= 0 && iy < h && ix >= 0 && ix < wid) {
                  acc += x.at({bn, ic, iy, ix}) * w.at({oc, ic, ky, kx});
                }
              }
            }
          }
          y.at({bn, oc, oy, ox}) = static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

void expect_close(const Tensor& a, const Tensor& b, float tol = 2e-4F) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << "flat " << i;
  }
}

TEST(Im2col, ShapeIsCorrect) {
  Conv2dSpec spec{3, 3, 1, 1};
  Tensor x({2, 3, 8, 8});
  Tensor cols = im2col(x, spec);
  EXPECT_EQ(cols.shape(), (Shape{2 * 8 * 8, 3 * 9}));
}

TEST(Im2col, ZeroPaddingFillsZeros) {
  Conv2dSpec spec{3, 3, 1, 1};
  Tensor x = Tensor::ones({1, 1, 2, 2});
  Tensor cols = im2col(x, spec);
  // First output position (0,0): top-left 3x3 window has 5 out-of-bounds.
  float sum = 0.0F;
  for (std::int64_t j = 0; j < 9; ++j) sum += cols.at({0, j});
  EXPECT_FLOAT_EQ(sum, 4.0F);
}

TEST(Im2colCol2im, AdjointProperty) {
  // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining property of
  // an adjoint pair, and exactly what conv backward relies on.
  Conv2dSpec spec{3, 3, 2, 1};
  const Shape xshape{2, 2, 5, 5};
  Tensor x = rand_tensor(xshape, 1);
  Tensor cols = im2col(x, spec);
  Tensor y = rand_tensor(cols.shape(), 2);
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < cols.numel(); ++i) lhs += cols[i] * y[i];
  Tensor back = col2im(y, xshape, spec);
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += x[i] * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Conv2d, MatchesNaiveWithBias) {
  Conv2dSpec spec{3, 3, 1, 1};
  Tensor x = rand_tensor({2, 3, 6, 6}, 3);
  Tensor w = rand_tensor({4, 3, 3, 3}, 4);
  Tensor b = rand_tensor({4}, 5);
  expect_close(conv2d(x, w, b, spec), naive_conv2d(x, w, b, spec));
}

TEST(Conv2d, MatchesNaiveNoBias) {
  Conv2dSpec spec{3, 3, 1, 1};
  Tensor x = rand_tensor({1, 2, 5, 5}, 6);
  Tensor w = rand_tensor({3, 2, 3, 3}, 7);
  expect_close(conv2d(x, w, Tensor(), spec),
               naive_conv2d(x, w, Tensor(), spec));
}

TEST(Conv2d, OneByOneKernelIsChannelMix) {
  Conv2dSpec spec{1, 1, 1, 0};
  Tensor x = rand_tensor({1, 2, 3, 3}, 8);
  Tensor w = Tensor::from_vector({1, 2, 1, 1}, {2.0F, -1.0F});
  Tensor y = conv2d(x, w, Tensor(), spec);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 3, 3}));
  EXPECT_NEAR(y.at({0, 0, 1, 1}),
              2.0F * x.at({0, 0, 1, 1}) - x.at({0, 1, 1, 1}), 1e-5F);
}

TEST(Conv2d, ShapeChecks) {
  Conv2dSpec spec{3, 3, 1, 1};
  EXPECT_THROW(conv2d(Tensor({1, 2, 5, 5}), Tensor({4, 3, 3, 3}), Tensor(),
                      spec),
               std::invalid_argument);
}

TEST(Conv2dBackward, BiasGradIsChannelSumOfGy) {
  Conv2dSpec spec{3, 3, 1, 1};
  Tensor x = rand_tensor({2, 2, 4, 4}, 9);
  Tensor w = rand_tensor({3, 2, 3, 3}, 10);
  Tensor gy = rand_tensor({2, 3, 4, 4}, 11);
  const auto grads = conv2d_backward(x, w, gy, spec, /*with_bias=*/true);
  for (std::int64_t c = 0; c < 3; ++c) {
    double expect = 0.0;
    for (std::int64_t n = 0; n < 2; ++n) {
      for (std::int64_t i = 0; i < 4; ++i) {
        for (std::int64_t j = 0; j < 4; ++j) expect += gy.at({n, c, i, j});
      }
    }
    EXPECT_NEAR(grads.grad_bias[c], expect, 1e-3);
  }
}

TEST(Conv2dBackward, GradInputIsAdjointOfForward) {
  // <conv(x), gy> == <x, grad_input(gy)> when conv is linear (no bias).
  Conv2dSpec spec{3, 3, 2, 1};
  Tensor x = rand_tensor({1, 2, 6, 6}, 12);
  Tensor w = rand_tensor({3, 2, 3, 3}, 13);
  Tensor y = conv2d(x, w, Tensor(), spec);
  Tensor gy = rand_tensor(y.shape(), 14);
  const auto grads = conv2d_backward(x, w, gy, spec, false);
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) lhs += y[i] * gy[i];
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    rhs += x[i] * grads.grad_input[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(MaxPool, ForwardAndArgmax) {
  Tensor x = Tensor::from_vector(
      {1, 1, 4, 4}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  std::vector<std::int64_t> argmax;
  Tensor y = maxpool2d(x, 2, 2, &argmax);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 6.0F);
  EXPECT_FLOAT_EQ(y.at({0, 0, 1, 1}), 16.0F);
  EXPECT_EQ(argmax[0], 5);
  EXPECT_EQ(argmax[3], 15);
}

TEST(MaxPool, BackwardScattersToArgmax) {
  Tensor x = rand_tensor({1, 2, 4, 4}, 15);
  std::vector<std::int64_t> argmax;
  Tensor y = maxpool2d(x, 2, 2, &argmax);
  Tensor gy = Tensor::ones(y.shape());
  Tensor gx = maxpool2d_backward(gy, x.shape(), argmax);
  // Exactly one gradient unit per pooling window.
  EXPECT_FLOAT_EQ(gx.sum(), static_cast<float>(y.numel()));
  for (std::int64_t i = 0; i < gx.numel(); ++i) {
    EXPECT_TRUE(gx[i] == 0.0F || gx[i] == 1.0F);
  }
}

TEST(AvgPool, ForwardAveragesWindows) {
  Tensor x = Tensor::from_vector(
      {1, 1, 4, 4}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  Tensor y = avgpool2d(x, 2, 2);
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 3.5F);
  EXPECT_FLOAT_EQ(y.at({0, 0, 1, 1}), 13.5F);
}

TEST(AvgPool, BackwardDistributesEvenly) {
  Tensor gy = Tensor::ones({1, 1, 2, 2});
  Tensor gx = avgpool2d_backward(gy, {1, 1, 4, 4}, 2, 2);
  for (std::int64_t i = 0; i < gx.numel(); ++i) {
    EXPECT_FLOAT_EQ(gx[i], 0.25F);
  }
}

TEST(GlobalAvgPool, ForwardAndBackward) {
  Tensor x = rand_tensor({2, 3, 4, 4}, 16);
  Tensor y = global_avgpool(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
  double manual = 0.0;
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) manual += x.at({1, 2, i, j});
  }
  EXPECT_NEAR(y.at({1, 2}), manual / 16.0, 1e-5);
  Tensor gy = Tensor::ones({2, 3});
  Tensor gx = global_avgpool_backward(gy, x.shape());
  EXPECT_FLOAT_EQ(gx[0], 1.0F / 16.0F);
  EXPECT_NEAR(gx.sum(), 6.0F, 1e-4F);
}

/// Conv spec sweep: im2col-based conv equals the naive definition for all
/// kernel/stride/padding combinations.
class ConvSweep
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, std::int64_t>> {};

TEST_P(ConvSweep, MatchesNaive) {
  const auto [kernel, stride, padding] = GetParam();
  Conv2dSpec spec{kernel, kernel, stride, padding};
  Tensor x = rand_tensor({2, 2, 7, 7}, 100 + kernel);
  if (spec.out_h(7) <= 0) GTEST_SKIP() << "empty output for this spec";
  Tensor w = rand_tensor({3, 2, kernel, kernel}, 200 + stride);
  Tensor b = rand_tensor({3}, 300 + padding);
  expect_close(conv2d(x, w, b, spec), naive_conv2d(x, w, b, spec));
}

INSTANTIATE_TEST_SUITE_P(
    Specs, ConvSweep,
    ::testing::Values(std::make_tuple(1, 1, 0), std::make_tuple(3, 1, 0),
                      std::make_tuple(3, 1, 1), std::make_tuple(3, 2, 1),
                      std::make_tuple(5, 1, 2), std::make_tuple(5, 2, 0),
                      std::make_tuple(7, 3, 3)));

}  // namespace
}  // namespace dropback::tensor
