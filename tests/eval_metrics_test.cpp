#include "train/eval_metrics.hpp"

#include <gtest/gtest.h>

#include "data/synthetic_mnist.hpp"
#include "nn/models/lenet.hpp"
#include "optim/sgd.hpp"
#include "train/trainer.hpp"

namespace dropback::train {
namespace {

namespace T = dropback::tensor;

TEST(TopkAccuracy, KnownCases) {
  // logits rows: [3, 2, 1], [1, 3, 2], [1, 2, 3]
  T::Tensor logits =
      T::Tensor::from_vector({3, 3}, {3, 2, 1, 1, 3, 2, 1, 2, 3});
  EXPECT_DOUBLE_EQ(topk_accuracy(logits, {0, 1, 2}, 1), 1.0);
  EXPECT_DOUBLE_EQ(topk_accuracy(logits, {1, 2, 0}, 1), 0.0);
  EXPECT_DOUBLE_EQ(topk_accuracy(logits, {1, 2, 0}, 2), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(topk_accuracy(logits, {2, 0, 1}, 3), 1.0);
}

TEST(TopkAccuracy, KOneEqualsAccuracy) {
  T::Tensor logits =
      T::Tensor::from_vector({2, 4}, {0.1F, 0.9F, 0, 0, 5, 1, 2, 3});
  const std::vector<std::int64_t> labels{1, 0};
  EXPECT_DOUBLE_EQ(topk_accuracy(logits, labels, 1), 1.0);
}

TEST(TopkAccuracy, RejectsBadArgs) {
  T::Tensor logits({2, 3});
  EXPECT_THROW(topk_accuracy(logits, {0}, 1), std::invalid_argument);
  EXPECT_THROW(topk_accuracy(logits, {0, 1}, 0), std::invalid_argument);
}

TEST(ConfusionMatrixTest, CountsAndAccuracy) {
  ConfusionMatrix matrix(3);
  T::Tensor logits = T::Tensor::from_vector(
      {4, 3}, {9, 0, 0,   // pred 0
               0, 9, 0,   // pred 1
               0, 9, 0,   // pred 1
               0, 0, 9}); // pred 2
  matrix.update(logits, {0, 1, 2, 2});
  EXPECT_EQ(matrix.total(), 4);
  EXPECT_EQ(matrix.count(0, 0), 1);
  EXPECT_EQ(matrix.count(1, 1), 1);
  EXPECT_EQ(matrix.count(2, 1), 1);  // one class-2 misread as 1
  EXPECT_EQ(matrix.count(2, 2), 1);
  EXPECT_DOUBLE_EQ(matrix.accuracy(), 0.75);
  EXPECT_DOUBLE_EQ(matrix.per_class_accuracy(0), 1.0);
  EXPECT_DOUBLE_EQ(matrix.per_class_accuracy(2), 0.5);
  EXPECT_EQ(matrix.worst_class(), 2);
}

TEST(ConfusionMatrixTest, RejectsOutOfRange) {
  ConfusionMatrix matrix(2);
  T::Tensor logits = T::Tensor::from_vector({1, 2}, {1, 0});
  EXPECT_THROW(matrix.update(logits, {5}), std::invalid_argument);
}

TEST(ConfusionMatrixTest, RenderContainsPerClassColumn) {
  ConfusionMatrix matrix(2);
  T::Tensor logits = T::Tensor::from_vector({2, 2}, {1, 0, 0, 1});
  matrix.update(logits, {0, 1});
  const std::string rendered = matrix.render();
  EXPECT_NE(rendered.find("class acc"), std::string::npos);
  EXPECT_NE(rendered.find("100.0%"), std::string::npos);
}

TEST(EvaluateConfusion, AgreesWithTrainerAccuracy) {
  data::SyntheticMnistOptions opt;
  opt.num_samples = 300;
  auto train_set = data::make_synthetic_mnist(opt);
  opt.num_samples = 120;
  opt.seed = 2;
  auto val_set = data::make_synthetic_mnist(opt);
  auto model = nn::models::make_mnist_100_100(3);
  optim::SGD sgd(model->collect_parameters(), 0.1F);
  TrainConfig options;
  options.epochs = 5;
  Trainer trainer(*model, sgd, *train_set, *val_set, options);
  trainer.run();
  const auto matrix = evaluate_confusion(*model, *val_set, 32);
  EXPECT_EQ(matrix.total(), 120);
  EXPECT_NEAR(matrix.accuracy(), Trainer::evaluate(*model, *val_set, 32),
              1e-9);
  // Row sums equal class frequencies (12 each: balanced generator).
  for (std::int64_t c = 0; c < 10; ++c) {
    std::int64_t row = 0;
    for (std::int64_t p = 0; p < 10; ++p) row += matrix.count(c, p);
    EXPECT_EQ(row, 12);
  }
}

}  // namespace
}  // namespace dropback::train
