#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "tensor/serialize.hpp"

namespace dropback::tensor {
namespace {

TEST(Tensor, DefaultConstructedIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_EQ(t.numel(), 0);
}

TEST(Tensor, ConstructionZeroFills) {
  Tensor t({2, 3});
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.ndim(), 2);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(t[i], 0.0F);
}

TEST(Tensor, NumelOfHandlesEmptyAndZeroDims) {
  EXPECT_EQ(numel_of({}), 0);
  EXPECT_EQ(numel_of({0}), 0);
  EXPECT_EQ(numel_of({3, 0, 2}), 0);
  EXPECT_EQ(numel_of({2, 3, 4}), 24);
}

TEST(Tensor, NumelOfRejectsNegativeDims) {
  EXPECT_THROW(numel_of({2, -1}), std::invalid_argument);
}

TEST(Tensor, FactoriesProduceExpectedValues) {
  EXPECT_FLOAT_EQ(Tensor::ones({3})[1], 1.0F);
  EXPECT_FLOAT_EQ(Tensor::full({2, 2}, 2.5F)[3], 2.5F);
  Tensor ar = Tensor::arange(5);
  for (std::int64_t i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(ar[i], float(i));
}

TEST(Tensor, FromVectorChecksSize) {
  EXPECT_NO_THROW(Tensor::from_vector({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor::from_vector({2, 2}, {1, 2, 3}),
               std::invalid_argument);
}

TEST(Tensor, SizeSupportsNegativeDims) {
  Tensor t({4, 5, 6});
  EXPECT_EQ(t.size(0), 4);
  EXPECT_EQ(t.size(-1), 6);
  EXPECT_EQ(t.size(-3), 4);
  EXPECT_THROW(t.size(3), std::invalid_argument);
}

TEST(Tensor, MultiDimAtUsesRowMajorOrder) {
  Tensor t = Tensor::from_vector({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_FLOAT_EQ(t.at({0, 0}), 0.0F);
  EXPECT_FLOAT_EQ(t.at({0, 2}), 2.0F);
  EXPECT_FLOAT_EQ(t.at({1, 0}), 3.0F);
  EXPECT_FLOAT_EQ(t.at({1, 2}), 5.0F);
  t.at({1, 1}) = 42.0F;
  EXPECT_FLOAT_EQ(t[4], 42.0F);
}

TEST(Tensor, AtRejectsBadIndices) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at({2, 0}), std::invalid_argument);
  EXPECT_THROW(t.at({0, 3}), std::invalid_argument);
  EXPECT_THROW(t.at({0}), std::invalid_argument);
}

TEST(Tensor, CopySharesStorageCloneDoesNot) {
  Tensor a = Tensor::from_vector({3}, {1, 2, 3});
  Tensor shared = a;        // aliases
  Tensor deep = a.clone();  // copies
  a[0] = 100.0F;
  EXPECT_FLOAT_EQ(shared[0], 100.0F);
  EXPECT_FLOAT_EQ(deep[0], 1.0F);
}

TEST(Tensor, ReshapeSharesStorage) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = a.reshape({3, 2});
  b[0] = 9.0F;
  EXPECT_FLOAT_EQ(a[0], 9.0F);
  EXPECT_EQ(b.shape(), (Shape{3, 2}));
}

TEST(Tensor, ReshapeInfersMinusOne) {
  Tensor a({4, 6});
  EXPECT_EQ(a.reshape({-1}).shape(), (Shape{24}));
  EXPECT_EQ(a.reshape({2, -1}).shape(), (Shape{2, 12}));
  EXPECT_EQ(a.reshape({-1, 8}).shape(), (Shape{3, 8}));
}

TEST(Tensor, ReshapeRejectsBadShapes) {
  Tensor a({4, 6});
  EXPECT_THROW(a.reshape({5, 5}), std::invalid_argument);
  EXPECT_THROW(a.reshape({-1, -1}), std::invalid_argument);
  EXPECT_THROW(a.reshape({-1, 7}), std::invalid_argument);
}

TEST(Tensor, InPlaceHelpers) {
  Tensor a = Tensor::from_vector({3}, {1, 2, 3});
  Tensor b = Tensor::from_vector({3}, {10, 20, 30});
  a.add_(b, 0.5F);
  EXPECT_FLOAT_EQ(a[0], 6.0F);
  EXPECT_FLOAT_EQ(a[2], 18.0F);
  a.scale_(2.0F);
  EXPECT_FLOAT_EQ(a[1], 24.0F);
  a.fill_(7.0F);
  EXPECT_FLOAT_EQ(a[2], 7.0F);
  a.zero_();
  EXPECT_FLOAT_EQ(a[0], 0.0F);
  a.copy_from(b);
  EXPECT_FLOAT_EQ(a[1], 20.0F);
}

TEST(Tensor, AddUnderscoreChecksNumel) {
  Tensor a({3});
  Tensor b({4});
  EXPECT_THROW(a.add_(b), std::invalid_argument);
}

TEST(Tensor, Reductions) {
  Tensor t = Tensor::from_vector({4}, {-1, 3, 2, -4});
  EXPECT_FLOAT_EQ(t.sum(), 0.0F);
  EXPECT_FLOAT_EQ(t.mean(), 0.0F);
  EXPECT_FLOAT_EQ(t.min(), -4.0F);
  EXPECT_FLOAT_EQ(t.max(), 3.0F);
  EXPECT_FLOAT_EQ(t.norm(), std::sqrt(1.0F + 9.0F + 4.0F + 16.0F));
  EXPECT_EQ(t.argmax_flat(), 1);
}

TEST(Tensor, DescribeIncludesShape) {
  Tensor t({2, 3});
  EXPECT_NE(t.describe().find("[2, 3]"), std::string::npos);
  EXPECT_NE(Tensor().describe().find("undefined"), std::string::npos);
}

TEST(Tensor, SameShape) {
  EXPECT_TRUE(same_shape(Tensor({2, 3}), Tensor({2, 3})));
  EXPECT_FALSE(same_shape(Tensor({2, 3}), Tensor({3, 2})));
  EXPECT_FALSE(same_shape(Tensor({6}), Tensor({2, 3})));
}

// --- serialization --------------------------------------------------------

TEST(Serialize, RoundTripPreservesShapeAndData) {
  Tensor t = Tensor::from_vector({2, 2, 3},
                                 {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
  std::stringstream ss;
  save_tensor(ss, t);
  Tensor back = load_tensor(ss);
  EXPECT_EQ(back.shape(), t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_FLOAT_EQ(back[i], t[i]);
  }
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream ss;
  ss << "NOPE....garbage";
  EXPECT_THROW(load_tensor(ss), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedPayload) {
  Tensor t({100});
  std::stringstream ss;
  save_tensor(ss, t);
  std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_tensor(cut), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  Tensor t = Tensor::from_vector({3}, {1.5F, -2.5F, 0.0F});
  const std::string path = ::testing::TempDir() + "/tensor_roundtrip.bin";
  save_tensor_file(path, t);
  Tensor back = load_tensor_file(path);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_FLOAT_EQ(back[1], -2.5F);
}

/// Shape sweep: reshape round-trips through arbitrary factorizations.
class ReshapeSweep
    : public ::testing::TestWithParam<std::pair<Shape, Shape>> {};

TEST_P(ReshapeSweep, RoundTripsLosslessly) {
  const auto& [from, to] = GetParam();
  Tensor t(from);
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(i);
  Tensor r = t.reshape(to).reshape(from);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(r[i], t[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ReshapeSweep,
    ::testing::Values(std::make_pair(Shape{12}, Shape{3, 4}),
                      std::make_pair(Shape{2, 3, 4}, Shape{24}),
                      std::make_pair(Shape{2, 3, 4}, Shape{4, 3, 2}),
                      std::make_pair(Shape{1, 1, 5}, Shape{5, 1}),
                      std::make_pair(Shape{6, 6}, Shape{2, 3, 3, 2})));

}  // namespace
}  // namespace dropback::tensor
