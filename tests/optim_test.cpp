#include "optim/sgd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.hpp"
#include "nn/linear.hpp"
#include "optim/lr_schedule.hpp"

namespace dropback::optim {
namespace {

namespace T = dropback::tensor;
namespace ag = dropback::autograd;

TEST(Sgd, AppliesPlainUpdate) {
  nn::Linear fc(2, 1, 1);
  fc.weight().var.value().copy_from(T::Tensor::from_vector({1, 2}, {1, 2}));
  fc.weight().var.grad().copy_from(T::Tensor::from_vector({1, 2}, {0.5F, -1}));
  SGD opt(fc.parameters(), 0.1F);
  opt.step();
  EXPECT_FLOAT_EQ(fc.weight().var.value()[0], 0.95F);
  EXPECT_FLOAT_EQ(fc.weight().var.value()[1], 2.1F);
}

TEST(Sgd, SkipsParamsWithoutGrad) {
  nn::Linear fc(2, 1, 1);
  const float before = fc.weight().var.value()[0];
  SGD opt(fc.parameters(), 0.1F);
  opt.step();  // no gradients anywhere
  EXPECT_FLOAT_EQ(fc.weight().var.value()[0], before);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  nn::Linear fc(1, 1, 1, /*bias=*/false);
  fc.weight().var.value()[0] = 2.0F;
  fc.weight().var.grad()[0] = 0.0F;
  SGD opt(fc.parameters(), 0.5F, /*weight_decay=*/0.1F);
  opt.step();
  // w -= lr * wd * w = 2 - 0.5*0.1*2 = 1.9
  EXPECT_FLOAT_EQ(fc.weight().var.value()[0], 1.9F);
}

TEST(Sgd, RejectsNonPositiveLr) {
  nn::Linear fc(2, 2, 1);
  EXPECT_THROW(SGD(fc.parameters(), 0.0F), std::invalid_argument);
  EXPECT_THROW(SGD(fc.parameters(), -1.0F), std::invalid_argument);
}

TEST(Sgd, ZeroGradClears) {
  nn::Linear fc(2, 2, 1);
  fc.weight().var.grad().fill_(1.0F);
  SGD opt(fc.parameters(), 0.1F);
  opt.zero_grad();
  EXPECT_FALSE(fc.weight().var.has_grad());
}

TEST(Sgd, SetLrTakesEffect) {
  nn::Linear fc(1, 1, 1, false);
  fc.weight().var.value()[0] = 1.0F;
  SGD opt(fc.parameters(), 0.1F);
  opt.set_lr(1.0F);
  fc.weight().var.grad()[0] = 1.0F;
  opt.step();
  EXPECT_FLOAT_EQ(fc.weight().var.value()[0], 0.0F);
}

TEST(Sgd, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 by gradient descent through the autograd stack.
  nn::Linear fc(1, 1, 1, false);
  fc.weight().var.value()[0] = 0.0F;
  SGD opt(fc.parameters(), 0.1F);
  for (int i = 0; i < 200; ++i) {
    ag::Variable w = fc.weight().var;
    ag::Variable err = ag::add_scalar(w, -3.0F);
    ag::Variable loss = ag::sum(ag::mul(err, err));
    opt.zero_grad();
    ag::backward(loss);
    opt.step();
  }
  EXPECT_NEAR(fc.weight().var.value()[0], 3.0F, 1e-4F);
}

TEST(StepDecay, MatchesPaperMnistSchedule) {
  // "initial learning rate of 0.4 was exponentially reduced four times by a
  // factor of 0.5" over 100 epochs -> decay every 20 epochs, max 4 decays.
  StepDecay sched(0.4F, 0.5F, 20, /*max_decays=*/4);
  EXPECT_FLOAT_EQ(sched.lr_at(0), 0.4F);
  EXPECT_FLOAT_EQ(sched.lr_at(19), 0.4F);
  EXPECT_FLOAT_EQ(sched.lr_at(20), 0.2F);
  EXPECT_FLOAT_EQ(sched.lr_at(45), 0.1F);
  EXPECT_FLOAT_EQ(sched.lr_at(80), 0.025F);
  EXPECT_FLOAT_EQ(sched.lr_at(99), 0.025F);  // capped at 4 decays
}

TEST(StepDecay, MatchesPaperCifarSchedule) {
  // CIFAR: "starting learning rate of 0.4 decayed 0.5x every 25 epochs".
  StepDecay sched(0.4F, 0.5F, 25);
  EXPECT_FLOAT_EQ(sched.lr_at(0), 0.4F);
  EXPECT_FLOAT_EQ(sched.lr_at(25), 0.2F);
  EXPECT_FLOAT_EQ(sched.lr_at(50), 0.1F);
  EXPECT_FLOAT_EQ(sched.lr_at(75), 0.05F);
}

TEST(StepDecay, RejectsBadConfig) {
  EXPECT_THROW(StepDecay(0.0F, 0.5F, 10), std::invalid_argument);
  EXPECT_THROW(StepDecay(0.4F, 0.5F, 0), std::invalid_argument);
}

TEST(ConstantLrTest, AlwaysSame) {
  ConstantLr lr(0.05F);
  EXPECT_FLOAT_EQ(lr.lr_at(0), 0.05F);
  EXPECT_FLOAT_EQ(lr.lr_at(1000), 0.05F);
}

/// Decay sweep: lr is non-increasing and bounded below by initial*factor^max.
class StepDecaySweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(StepDecaySweep, MonotoneNonIncreasing) {
  // Bound the horizon so float lr stays above denormal range even at
  // period 1 (0.4 * 0.5^99 ~ 6e-31).
  StepDecay sched(0.4F, 0.5F, GetParam());
  float prev = sched.lr_at(0);
  for (std::int64_t e = 1; e < 100; ++e) {
    const float lr = sched.lr_at(e);
    EXPECT_LE(lr, prev);
    EXPECT_GT(lr, 0.0F);
    prev = lr;
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, StepDecaySweep,
                         ::testing::Values(1, 5, 20, 25, 100));

}  // namespace
}  // namespace dropback::optim
