// Shared numerical gradient checking for autograd tests.
//
// Checks reverse-mode gradients against central finite differences for every
// coordinate of every input, which is the ground truth every layer test in
// this suite leans on.
#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include <functional>
#include <vector>

#include "autograd/ops.hpp"
#include "autograd/variable.hpp"
#include "rng/xorshift.hpp"
#include "tensor/tensor.hpp"

namespace dropback::testing {

/// Fills a tensor with small random values (range keeps finite differences
/// well-conditioned in float32).
inline tensor::Tensor random_tensor(tensor::Shape shape, rng::Xorshift128& rng,
                                    float lo = -1.0F, float hi = 1.0F) {
  tensor::Tensor t(std::move(shape));
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) p[i] = rng.uniform(lo, hi);
  return t;
}

/// Verifies d(scalar f(inputs))/d(inputs) against central differences.
/// `f` must rebuild its graph from the *current values* of `inputs` on every
/// call (values are perturbed in place between calls).
inline void expect_gradients_close(
    const std::function<autograd::Variable()>& f,
    std::vector<autograd::Variable> inputs, float eps = 1e-2F,
    float rtol = 5e-2F, float atol = 5e-3F) {
  // Analytic gradients.
  for (auto& in : inputs) in.clear_grad();
  autograd::Variable out = f();
  ASSERT_EQ(out.numel(), 1) << "gradcheck target must be scalar";
  autograd::backward(out);
  std::vector<tensor::Tensor> analytic;
  analytic.reserve(inputs.size());
  for (auto& in : inputs) {
    ASSERT_TRUE(in.has_grad()) << "input received no gradient";
    analytic.push_back(in.grad().clone());
  }
  // Numerical gradients, coordinate by coordinate.
  for (std::size_t v = 0; v < inputs.size(); ++v) {
    tensor::Tensor& value = inputs[v].value();
    for (std::int64_t i = 0; i < value.numel(); ++i) {
      const float saved = value[i];
      value[i] = saved + eps;
      const float up = f().value()[0];
      value[i] = saved - eps;
      const float down = f().value()[0];
      value[i] = saved;
      const float numeric = (up - down) / (2.0F * eps);
      const float exact = analytic[v][i];
      const float tol = atol + rtol * std::max(std::fabs(numeric),
                                               std::fabs(exact));
      EXPECT_NEAR(exact, numeric, tol)
          << "input " << v << " coordinate " << i;
    }
  }
}

}  // namespace dropback::testing
