#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.hpp"
#include "gradcheck.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"

namespace dropback::nn {
namespace {

namespace T = dropback::tensor;
namespace ag = dropback::autograd;
using dropback::testing::random_tensor;

TEST(SeedStreamTest, DeterministicAndDistinct) {
  SeedStream a(5), b(5), c(6);
  const auto a1 = a.next(), a2 = a.next();
  EXPECT_EQ(a1, b.next());
  EXPECT_EQ(a2, b.next());
  EXPECT_NE(a1, a2);
  EXPECT_NE(a1, c.next());
}

TEST(LinearTest, ParamShapesAndInit) {
  Linear fc(10, 4, /*seed=*/3);
  EXPECT_EQ(fc.weight().var.value().shape(), (T::Shape{4, 10}));
  ASSERT_NE(fc.bias(), nullptr);
  EXPECT_EQ(fc.bias()->var.value().shape(), (T::Shape{4}));
  // Bias constant 0, weight scaled-normal with sigma 1/sqrt(10).
  EXPECT_FLOAT_EQ(fc.bias()->var.value()[0], 0.0F);
  EXPECT_EQ(fc.weight().init.kind(), rng::InitSpec::Kind::kScaledNormal);
  EXPECT_NEAR(fc.weight().init.scale(), 1.0F / std::sqrt(10.0F), 1e-6F);
}

TEST(LinearTest, InitialValuesMatchInitSpec) {
  Linear fc(7, 5, 11);
  const auto& w = fc.weight().var.value();
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_EQ(w[i], fc.weight().init.value_at(static_cast<std::uint64_t>(i)));
  }
}

TEST(LinearTest, ForwardComputesAffineMap) {
  Linear fc(2, 1, 3);
  fc.weight().var.value().copy_from(T::Tensor::from_vector({1, 2}, {2, 3}));
  fc.bias()->var.value()[0] = 1.0F;
  ag::Variable x(T::Tensor::from_vector({1, 2}, {1.0F, 2.0F}));
  auto y = fc.forward(x);
  EXPECT_FLOAT_EQ(y.value()[0], 9.0F);
}

TEST(LinearTest, NoBiasVariant) {
  Linear fc(3, 2, 3, /*bias=*/false);
  EXPECT_EQ(fc.bias(), nullptr);
  EXPECT_EQ(fc.parameters().size(), 1U);
}

TEST(LinearTest, SameSeedSameWeights) {
  Linear a(8, 8, 42), b(8, 8, 42), c(8, 8, 43);
  bool all_same = true, any_same_c = false;
  for (std::int64_t i = 0; i < a.weight().numel(); ++i) {
    if (a.weight().var.value()[i] != b.weight().var.value()[i]) {
      all_same = false;
    }
    if (a.weight().var.value()[i] == c.weight().var.value()[i]) {
      any_same_c = true;
    }
  }
  EXPECT_TRUE(all_same);
  EXPECT_FALSE(any_same_c);
}

TEST(Conv2dTest, ParamShapesAndForwardShape) {
  Conv2d conv(3, 8, 3, 1, 1, 5);
  EXPECT_EQ(conv.weight().var.value().shape(), (T::Shape{8, 3, 3, 3}));
  rng::Xorshift128 rng(1);
  ag::Variable x(random_tensor({2, 3, 8, 8}, rng));
  auto y = conv.forward(x);
  EXPECT_EQ(y.value().shape(), (T::Shape{2, 8, 8, 8}));
}

TEST(Conv2dTest, StrideHalvesResolution) {
  Conv2d conv(1, 1, 3, 2, 1, 5);
  rng::Xorshift128 rng(1);
  ag::Variable x(random_tensor({1, 1, 8, 8}, rng));
  EXPECT_EQ(conv.forward(x).value().shape(), (T::Shape{1, 1, 4, 4}));
}

TEST(BatchNormTest, GammaBetaConstantInit) {
  BatchNorm2d bn(4);
  EXPECT_FLOAT_EQ(bn.gamma().var.value()[2], 1.0F);
  EXPECT_FLOAT_EQ(bn.beta().var.value()[2], 0.0F);
  // Constant init means BN is regenerable — prunable by DropBack.
  EXPECT_EQ(bn.gamma().init.kind(), rng::InitSpec::Kind::kConstant);
  EXPECT_TRUE(bn.gamma().prunable);
}

TEST(BatchNormTest, EvalModeUsesRunningStats) {
  BatchNorm2d bn(1);
  bn.running_mean()[0] = 2.0F;
  bn.running_var()[0] = 4.0F;
  bn.set_training(false);
  ag::Variable x(T::Tensor::full({1, 1, 1, 2}, 4.0F));
  auto y = bn.forward(x);
  // (4 - 2) / sqrt(4) = 1
  EXPECT_NEAR(y.value()[0], 1.0F, 1e-3F);
}

TEST(BatchNorm1dTest, NormalizesFeatureColumns) {
  BatchNorm1d bn(2);
  ag::Variable x(T::Tensor::from_vector({4, 2},
                                        {1, 10, 2, 20, 3, 30, 4, 40}));
  auto y = bn.forward(x);
  EXPECT_EQ(y.value().shape(), (T::Shape{4, 2}));
  // Each column normalized to ~zero mean.
  float col0 = 0.0F, col1 = 0.0F;
  for (int i = 0; i < 4; ++i) {
    col0 += y.value().at({i, 0});
    col1 += y.value().at({i, 1});
  }
  EXPECT_NEAR(col0, 0.0F, 1e-4F);
  EXPECT_NEAR(col1, 0.0F, 1e-4F);
}

TEST(ActivationTest, ReluModule) {
  ReLU relu;
  ag::Variable x(T::Tensor::from_vector({3}, {-1, 0, 2}));
  auto y = relu.forward(x);
  EXPECT_FLOAT_EQ(y.value()[0], 0.0F);
  EXPECT_FLOAT_EQ(y.value()[2], 2.0F);
  EXPECT_EQ(relu.parameters().size(), 0U);
}

TEST(ActivationTest, PreluHasLearnableRegenerableSlope) {
  PReLU prelu(0.1F);
  EXPECT_EQ(prelu.parameters().size(), 1U);
  EXPECT_EQ(prelu.slope().init.kind(), rng::InitSpec::Kind::kConstant);
  EXPECT_FLOAT_EQ(prelu.slope().init.value_at(0), 0.1F);
  ag::Variable x(T::Tensor::from_vector({2}, {-10.0F, 10.0F}));
  auto y = prelu.forward(x);
  EXPECT_FLOAT_EQ(y.value()[0], -1.0F);
  EXPECT_FLOAT_EQ(y.value()[1], 10.0F);
}

TEST(PoolingTest, ModulesForwardShapes) {
  rng::Xorshift128 rng(1);
  ag::Variable x(random_tensor({2, 3, 8, 8}, rng));
  EXPECT_EQ(MaxPool2d(2, 2).forward(x).value().shape(),
            (T::Shape{2, 3, 4, 4}));
  EXPECT_EQ(AvgPool2d(2, 2).forward(x).value().shape(),
            (T::Shape{2, 3, 4, 4}));
  EXPECT_EQ(GlobalAvgPool().forward(x).value().shape(), (T::Shape{2, 3}));
  EXPECT_EQ(Flatten().forward(x).value().shape(), (T::Shape{2, 192}));
}

TEST(DropoutTest, EvalIsIdentityTrainingDrops) {
  Dropout drop(0.5F, 3);
  ag::Variable x(T::Tensor::ones({1000}));
  drop.set_training(false);
  auto y_eval = drop.forward(x);
  EXPECT_FLOAT_EQ(y_eval.value().sum(), 1000.0F);
  drop.set_training(true);
  auto y_train = drop.forward(x);
  int zeros = 0;
  for (std::int64_t i = 0; i < 1000; ++i) {
    if (y_train.value()[i] == 0.0F) ++zeros;
  }
  EXPECT_GT(zeros, 350);
  EXPECT_LT(zeros, 650);
}

TEST(SequentialTest, ChainsAndCollectsParams) {
  Sequential net;
  net.emplace<Linear>(4, 8, 1);
  net.emplace<ReLU>();
  net.emplace<Linear>(8, 2, 2);
  EXPECT_EQ(net.size(), 3U);
  EXPECT_EQ(net.parameters().size(), 4U);  // 2x (weight + bias)
  EXPECT_EQ(net.num_params(), 4 * 8 + 8 + 8 * 2 + 2);
  rng::Xorshift128 rng(1);
  ag::Variable x(random_tensor({3, 4}, rng));
  EXPECT_EQ(net.forward(x).value().shape(), (T::Shape{3, 2}));
}

TEST(SequentialTest, TrainingFlagPropagates) {
  Sequential net;
  auto& drop = net.emplace<Dropout>(0.5F, 1);
  auto& bn = net.emplace<BatchNorm2d>(3);
  EXPECT_TRUE(drop.training());
  net.set_training(false);
  EXPECT_FALSE(drop.training());
  EXPECT_FALSE(bn.training());
  net.set_training(true);
  EXPECT_TRUE(bn.training());
}

TEST(ModuleTest, CollectParametersAssignsDenseIds) {
  Sequential net;
  net.emplace<Linear>(3, 3, 1);
  net.emplace<Linear>(3, 3, 2);
  auto params = net.collect_parameters();
  ASSERT_EQ(params.size(), 4U);
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(params[i]->id, i);
  }
}

TEST(ModuleTest, ZeroGradClearsAllGrads) {
  Sequential net;
  net.emplace<Linear>(3, 2, 1);
  rng::Xorshift128 rng(1);
  ag::Variable x(random_tensor({2, 3}, rng));
  auto loss = ag::sum(net.forward(x));
  ag::backward(loss);
  auto params = net.parameters();
  EXPECT_TRUE(params[0]->var.has_grad());
  net.zero_grad();
  for (auto* p : params) EXPECT_FALSE(p->var.has_grad());
}

TEST(ModuleTest, ParameterReinitializeRestoresInit) {
  Linear fc(4, 4, 9);
  T::Tensor original = fc.weight().var.value().clone();
  fc.weight().var.value().fill_(123.0F);
  fc.weight().reinitialize();
  for (std::int64_t i = 0; i < original.numel(); ++i) {
    EXPECT_EQ(fc.weight().var.value()[i], original[i]);
  }
}

TEST(ModuleTest, EndToEndGradientThroughStack) {
  // Numerical gradcheck through Linear+ReLU+Linear+BN1d composite.
  Sequential net;
  net.emplace<Linear>(3, 4, 21);
  net.emplace<ReLU>();
  net.emplace<Linear>(4, 2, 22);
  rng::Xorshift128 rng(5);
  ag::Variable x(random_tensor({2, 3}, rng), true);
  auto params = net.parameters();
  std::vector<ag::Variable> inputs{x};
  for (auto* p : params) inputs.push_back(p->var);
  dropback::testing::expect_gradients_close(
      [&] {
        auto y = net.forward(x);
        return ag::sum(ag::mul(y, y));
      },
      inputs);
}

}  // namespace
}  // namespace dropback::nn
