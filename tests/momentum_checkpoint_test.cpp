#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "autograd/ops.hpp"
#include "nn/batchnorm.hpp"
#include "nn/checkpoint.hpp"
#include "nn/linear.hpp"
#include "nn/models/lenet.hpp"
#include "nn/sequential.hpp"
#include "optim/momentum.hpp"
#include "rng/xorshift.hpp"
#include "util/io_error.hpp"

namespace dropback {
namespace {

namespace T = dropback::tensor;
namespace ag = dropback::autograd;

TEST(MomentumSgd, FirstStepEqualsPlainSgd) {
  nn::Linear a(2, 1, 1, false), b(2, 1, 1, false);
  a.weight().var.grad().copy_from(T::Tensor::from_vector({1, 2}, {1, -2}));
  b.weight().var.grad().copy_from(T::Tensor::from_vector({1, 2}, {1, -2}));
  optim::MomentumSGD mom(a.parameters(), 0.1F, 0.9F);
  optim::SGD sgd(b.parameters(), 0.1F);
  mom.step();
  sgd.step();
  EXPECT_FLOAT_EQ(a.weight().var.value()[0], b.weight().var.value()[0]);
  EXPECT_FLOAT_EQ(a.weight().var.value()[1], b.weight().var.value()[1]);
}

TEST(MomentumSgd, AcceleratesAlongConstantGradient) {
  nn::Linear fc(1, 1, 1, false);
  fc.weight().var.value()[0] = 0.0F;
  optim::MomentumSGD opt(fc.parameters(), 0.1F, 0.9F);
  float prev_w = 0.0F;
  float prev_delta = 0.0F;
  for (int i = 0; i < 5; ++i) {
    fc.weight().var.grad()[0] = 1.0F;
    opt.step();
    const float delta = prev_w - fc.weight().var.value()[0];
    EXPECT_GT(delta, prev_delta);  // velocity builds up
    prev_delta = delta;
    prev_w = fc.weight().var.value()[0];
    fc.weight().var.clear_grad();
  }
}

TEST(MomentumSgd, StateCostsOneFloatPerWeight) {
  auto model = nn::models::make_mnist_100_100(1);
  optim::MomentumSGD opt(model->collect_parameters(), 0.1F);
  EXPECT_EQ(opt.state_floats(), 89610);
}

TEST(Adam, StateCostsTwoFloatsPerWeight) {
  auto model = nn::models::make_mnist_100_100(1);
  optim::Adam opt(model->collect_parameters(), 0.001F);
  EXPECT_EQ(opt.state_floats(), 2 * 89610);
}

TEST(Adam, FirstStepHasUnitScaleInvariance) {
  // With bias correction, the first Adam step is ~lr * sign(g) regardless
  // of gradient magnitude.
  nn::Linear fc(1, 2, 1, false);
  fc.weight().var.value().fill_(0.0F);
  fc.weight().var.grad().copy_from(
      T::Tensor::from_vector({2, 1}, {100.0F, -0.001F}));
  optim::Adam opt(fc.parameters(), 0.1F);
  opt.step();
  EXPECT_NEAR(fc.weight().var.value()[0], -0.1F, 1e-4F);
  EXPECT_NEAR(fc.weight().var.value()[1], 0.1F, 1e-4F);
}

TEST(Adam, ConvergesOnQuadratic) {
  nn::Linear fc(1, 1, 1, false);
  fc.weight().var.value()[0] = -5.0F;
  optim::Adam opt(fc.parameters(), 0.2F);
  for (int i = 0; i < 300; ++i) {
    ag::Variable w = fc.weight().var;
    ag::Variable err = ag::add_scalar(w, -3.0F);
    opt.zero_grad();
    ag::backward(ag::sum(ag::mul(err, err)));
    opt.step();
  }
  EXPECT_NEAR(fc.weight().var.value()[0], 3.0F, 1e-2F);
}

TEST(Adam, RejectsBadBetas) {
  nn::Linear fc(2, 2, 1);
  EXPECT_THROW(optim::Adam(fc.parameters(), 0.1F, 1.0F),
               std::invalid_argument);
  EXPECT_THROW(optim::Adam(fc.parameters(), 0.1F, 0.9F, 1.5F),
               std::invalid_argument);
}

// --- checkpoints -----------------------------------------------------------

TEST(Checkpoint, RoundTripRestoresWeights) {
  auto model = nn::models::make_mnist_100_100(3);
  auto params = model->collect_parameters();
  // Mutate so the checkpoint differs from the init.
  params[0]->var.value()[0] = 42.0F;
  params[5]->var.value()[3] = -7.0F;
  std::stringstream ss;
  nn::save_checkpoint(ss, params);

  auto fresh = nn::models::make_mnist_100_100(999);
  auto fresh_params = fresh->collect_parameters();
  nn::load_checkpoint(ss, fresh_params);
  for (std::size_t p = 0; p < params.size(); ++p) {
    for (std::int64_t i = 0; i < params[p]->numel(); ++i) {
      ASSERT_EQ(fresh_params[p]->var.value()[i], params[p]->var.value()[i]);
    }
  }
}

TEST(Checkpoint, RejectsCountMismatch) {
  auto model = nn::models::make_mnist_100_100(3);
  std::stringstream ss;
  nn::save_checkpoint(ss, model->collect_parameters());
  nn::Sequential other;
  other.emplace<nn::Linear>(4, 4, 1);
  EXPECT_THROW(nn::load_checkpoint(ss, other.collect_parameters()),
               std::runtime_error);
}

TEST(Checkpoint, RejectsNameMismatch) {
  nn::Sequential a;
  a.emplace<nn::Linear>(4, 4, 1);
  std::stringstream ss;
  nn::save_checkpoint(ss, a.collect_parameters());
  // Same count/shapes, but BatchNorm param names differ from Linear's.
  nn::Sequential b;
  b.emplace<nn::BatchNorm2d>(8);  // gamma/beta vs weight/bias... shapes differ too
  EXPECT_THROW(nn::load_checkpoint(ss, b.collect_parameters()),
               std::runtime_error);
}

TEST(Checkpoint, RejectsGarbage) {
  std::stringstream ss;
  ss << "definitely not a checkpoint";
  auto model = nn::models::make_mnist_100_100(3);
  EXPECT_THROW(nn::load_checkpoint(ss, model->collect_parameters()),
               std::runtime_error);
}

TEST(Checkpoint, FileRoundTrip) {
  auto model = nn::models::make_mnist_100_100(3);
  auto params = model->collect_parameters();
  params[2]->var.value()[1] = 3.5F;
  const std::string path = ::testing::TempDir() + "/ckpt_test.dbcp";
  nn::save_checkpoint_file(path, params);
  auto fresh = nn::models::make_mnist_100_100(4);
  auto fresh_params = fresh->collect_parameters();
  nn::load_checkpoint_file(path, fresh_params);
  EXPECT_EQ(fresh_params[2]->var.value()[1], 3.5F);
}

TEST(Checkpoint, TruncatedFileNamesFailingParameter) {
  auto model = nn::models::make_mnist_100_100(3);
  auto params = model->collect_parameters();
  std::stringstream ss;
  nn::save_checkpoint(ss, params);
  const std::string full = ss.str();
  // Cut inside the last parameter's payload: the error must say which
  // parameter broke, not just "bad file".
  std::stringstream cut(full.substr(0, full.size() - 5));
  try {
    nn::load_checkpoint(cut, params);
    FAIL() << "truncated checkpoint loaded";
  } catch (const util::IoError& e) {
    EXPECT_NE(std::string(e.what()).find(params.back()->name),
              std::string::npos)
        << e.what();
  }
}

TEST(Checkpoint, OverLongFileRejected) {
  auto model = nn::models::make_mnist_100_100(3);
  auto params = model->collect_parameters();
  const std::string path = ::testing::TempDir() + "/ckpt_overlong.dbcp";
  nn::save_checkpoint_file(path, params);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "extra";
  }
  EXPECT_THROW(nn::load_checkpoint_file(path, params), util::IoError);
}

TEST(Checkpoint, FlippedByteNamesFailingParameter) {
  auto model = nn::models::make_mnist_100_100(3);
  auto params = model->collect_parameters();
  std::stringstream ss;
  nn::save_checkpoint(ss, params);
  std::string bad = ss.str();
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0xFF);
  std::stringstream in(bad);
  EXPECT_THROW(nn::load_checkpoint(in, params), util::IoError);
}

TEST(MomentumSgd, StateRoundTripRestoresVelocity) {
  nn::Linear fc(2, 2, 1, false);
  optim::MomentumSGD a(fc.parameters(), 0.1F, 0.9F);
  for (int i = 0; i < 3; ++i) {
    fc.weight().var.grad().copy_from(
        T::Tensor::from_vector({2, 2}, {1, -1, 2, -2}));
    a.step();
  }
  std::stringstream ss;
  a.save_state(ss);

  nn::Linear fresh(2, 2, 1, false);
  optim::MomentumSGD b(fresh.parameters(), 0.1F, 0.9F);
  b.load_state(ss);
  // Same gradients from here on must give the same trajectory.
  fc.weight().var.grad().copy_from(
      T::Tensor::from_vector({2, 2}, {1, -1, 2, -2}));
  fresh.weight().var.value().copy_from(fc.weight().var.value());
  fresh.weight().var.grad().copy_from(fc.weight().var.grad());
  a.step();
  b.step();
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(fresh.weight().var.value()[i],
                    fc.weight().var.value()[i]);
  }
}

TEST(Adam, StateRoundTripRestoresMomentsAndStep) {
  nn::Linear fc(2, 2, 1, false);
  optim::Adam a(fc.parameters(), 0.1F);
  for (int i = 0; i < 3; ++i) {
    fc.weight().var.grad().copy_from(
        T::Tensor::from_vector({2, 2}, {1, -1, 2, -2}));
    a.step();
  }
  std::stringstream ss;
  a.save_state(ss);

  nn::Linear fresh(2, 2, 1, false);
  optim::Adam b(fresh.parameters(), 0.1F);
  b.load_state(ss);
  fresh.weight().var.value().copy_from(fc.weight().var.value());
  fc.weight().var.grad().copy_from(
      T::Tensor::from_vector({2, 2}, {1, -1, 2, -2}));
  fresh.weight().var.grad().copy_from(fc.weight().var.grad());
  a.step();
  b.step();
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(fresh.weight().var.value()[i],
                    fc.weight().var.value()[i]);
  }
}

TEST(OptimizerState, LoadRejectsWrongOptimizerKind) {
  nn::Linear fc(2, 2, 1, false);
  optim::MomentumSGD mom(fc.parameters(), 0.1F);
  std::stringstream ss;
  mom.save_state(ss);
  optim::Adam adam(fc.parameters(), 0.1F);
  EXPECT_THROW(adam.load_state(ss), util::IoError);
}

TEST(OptimizerState, LoadRejectsSizeMismatch) {
  nn::Linear small(2, 2, 1, false);
  optim::MomentumSGD a(small.parameters(), 0.1F);
  std::stringstream ss;
  a.save_state(ss);
  nn::Linear big(4, 4, 1, false);
  optim::MomentumSGD b(big.parameters(), 0.1F);
  EXPECT_THROW(b.load_state(ss), util::IoError);
}

TEST(Checkpoint, ResumedTrainingContinuesDeterministically) {
  // Train 2 steps, checkpoint, train 2 more; separately reload the
  // checkpoint and train the same 2 steps: identical weights.
  auto run_steps = [](nn::models::Mlp& model, optim::SGD& opt, int first,
                      int count) {
    for (int i = 0; i < count; ++i) {
      rng::Xorshift128 rng(static_cast<std::uint64_t>(first + i));
      T::Tensor x({2, 784});
      for (std::int64_t j = 0; j < x.numel(); ++j) {
        x[j] = rng.uniform(0, 1);
      }
      model.zero_grad();
      ag::Variable input(x);
      ag::backward(
          ag::softmax_cross_entropy(model.forward(input), {0, 1}));
      opt.step();
    }
  };
  auto model_a = nn::models::make_mnist_100_100(3);
  optim::SGD opt_a(model_a->collect_parameters(), 0.1F);
  run_steps(*model_a, opt_a, 0, 2);
  std::stringstream ss;
  nn::save_checkpoint(ss, model_a->collect_parameters());
  run_steps(*model_a, opt_a, 2, 2);

  auto model_b = nn::models::make_mnist_100_100(555);
  optim::SGD opt_b(model_b->collect_parameters(), 0.1F);
  nn::load_checkpoint(ss, model_b->collect_parameters());
  run_steps(*model_b, opt_b, 2, 2);

  auto pa = model_a->collect_parameters();
  auto pb = model_b->collect_parameters();
  for (std::size_t p = 0; p < pa.size(); ++p) {
    for (std::int64_t i = 0; i < pa[p]->numel(); ++i) {
      ASSERT_FLOAT_EQ(pa[p]->var.value()[i], pb[p]->var.value()[i]);
    }
  }
}

}  // namespace
}  // namespace dropback
