// Tests for the post-freeze sparse backward kernels and DropBack optimizer
// state checkpointing.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "autograd/ops.hpp"
#include "core/dropback_optimizer.hpp"
#include "core/sparse_backward.hpp"
#include "core/sparse_weight_store.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "rng/xorshift.hpp"

namespace dropback::core {
namespace {

namespace T = dropback::tensor;
namespace ag = dropback::autograd;

T::Tensor rand_tensor(T::Shape shape, std::uint64_t seed) {
  rng::Xorshift128 rng(seed);
  T::Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(-1, 1);
  return t;
}

TEST(SparseBackward, CoordsExtractedInRowMajorOrder) {
  std::uint8_t mask[6] = {1, 0, 0, 1, 1, 0};
  const auto coords = tracked_coords(mask, 2, 3);
  ASSERT_EQ(coords.size(), 3U);
  EXPECT_EQ(coords[0].out, 0);
  EXPECT_EQ(coords[0].in, 0);
  EXPECT_EQ(coords[1].out, 1);
  EXPECT_EQ(coords[1].in, 0);
  EXPECT_EQ(coords[2].out, 1);
  EXPECT_EQ(coords[2].in, 1);
}

TEST(SparseBackward, MatchesDenseGradientAtTrackedCoords) {
  const T::Tensor x = rand_tensor({5, 7}, 1);
  const T::Tensor gy = rand_tensor({5, 4}, 2);
  const T::Tensor dense = dense_linear_grad_w(x, gy);  // [4, 7]
  // A scattered mask.
  std::vector<std::uint8_t> mask(28, 0);
  for (int i : {0, 3, 9, 13, 20, 27}) mask[static_cast<std::size_t>(i)] = 1;
  const auto coords = tracked_coords(mask.data(), 4, 7);
  const auto sparse = sparse_linear_grad_w(x, gy, coords);
  ASSERT_EQ(sparse.size(), coords.size());
  for (std::size_t c = 0; c < coords.size(); ++c) {
    EXPECT_NEAR(sparse[c], dense.at({coords[c].out, coords[c].in}), 1e-4F);
  }
}

TEST(SparseBackward, DenseGradEqualsAutogradLinear) {
  // dense_linear_grad_w must equal what the autograd linear op produces.
  ag::Variable x(rand_tensor({3, 5}, 3), false);
  ag::Variable w(rand_tensor({2, 5}, 4), true);
  ag::Variable y = ag::linear(x, w, ag::Variable());
  // Upstream gradient of all-ones: backward of sum.
  ag::backward(ag::sum(y));
  const T::Tensor gy = T::Tensor::ones({3, 2});
  const T::Tensor manual = dense_linear_grad_w(x.value(), gy);
  for (std::int64_t i = 0; i < manual.numel(); ++i) {
    EXPECT_NEAR(manual[i], w.grad()[i], 1e-4F);
  }
}

TEST(SparseBackward, SparseUpdateTouchesOnlyTrackedCoords) {
  T::Tensor w = T::Tensor::ones({3, 3});
  const std::vector<TrackedCoord> coords = {{0, 0}, {2, 1}};
  apply_sparse_update(w, coords, {1.0F, 2.0F}, 0.5F);
  EXPECT_FLOAT_EQ(w.at({0, 0}), 0.5F);
  EXPECT_FLOAT_EQ(w.at({2, 1}), 0.0F);
  EXPECT_FLOAT_EQ(w.at({1, 1}), 1.0F);  // untouched
}

TEST(SparseBackward, FlopSavingsMatchBudgetRatio) {
  // 89.6k-weight layer at 2k tracked: dW flops shrink ~45x.
  const auto dense = dense_grad_w_flops(32, 100, 784);
  const auto sparse = sparse_grad_w_flops(32, 2000);
  EXPECT_GT(dense / sparse, 35);
  EXPECT_EQ(dense, 2LL * 32 * 100 * 784);
  EXPECT_EQ(sparse, 2LL * 32 * 2000);
}

TEST(SparseBackward, FrozenTrainingViaSparsePathMatchesDense) {
  // Simulate a frozen DropBack step for one Linear layer two ways — dense
  // gradient + masked update vs sparse gradient + sparse update — and
  // verify identical resulting weights.
  nn::Linear fc(7, 4, /*seed=*/5, /*bias=*/false);
  const T::Tensor x = rand_tensor({6, 7}, 6);
  const T::Tensor gy = rand_tensor({6, 4}, 7);
  std::vector<std::uint8_t> mask(28, 0);
  for (int i : {1, 5, 10, 17, 26}) mask[static_cast<std::size_t>(i)] = 1;

  // Dense path.
  T::Tensor w_dense = fc.weight().var.value().clone();
  {
    const T::Tensor grad = dense_linear_grad_w(x, gy);
    float* w = w_dense.data();
    for (std::int64_t i = 0; i < 28; ++i) {
      if (mask[static_cast<std::size_t>(i)]) w[i] -= 0.1F * grad[i];
    }
  }
  // Sparse path.
  T::Tensor w_sparse = fc.weight().var.value().clone();
  {
    const auto coords = tracked_coords(mask.data(), 4, 7);
    const auto grads = sparse_linear_grad_w(x, gy, coords);
    apply_sparse_update(w_sparse, coords, grads, 0.1F);
  }
  for (std::int64_t i = 0; i < 28; ++i) {
    EXPECT_NEAR(w_dense[i], w_sparse[i], 1e-6F);
  }
}

// --- optimizer state checkpointing -------------------------------------------

std::unique_ptr<nn::Sequential> tiny_net(std::uint64_t seed = 1) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Linear>(4, 6, seed);
  net->emplace<nn::Linear>(6, 3, seed + 1);
  return net;
}

void make_gradients(nn::Module& net, std::uint64_t seed) {
  rng::Xorshift128 rng(seed);
  T::Tensor x({2, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-1, 1);
  ag::Variable input(x);
  ag::backward(ag::sum(ag::mul(net.forward(input), net.forward(input))));
}

TEST(OptimizerState, SaveLoadRestoresMasksStepsAndFreeze) {
  auto net = tiny_net();
  auto params = net->collect_parameters();
  DropBackConfig config;
  config.budget = 9;
  config.freeze_after_steps = 2;
  DropBackOptimizer opt(params, 0.1F, config);
  for (int iter = 0; iter < 3; ++iter) {
    net->zero_grad();
    make_gradients(*net, 10 + iter);
    opt.step();
  }
  ASSERT_TRUE(opt.frozen());
  std::stringstream ss;
  opt.save_state(ss);

  auto net2 = tiny_net();
  DropBackOptimizer opt2(net2->collect_parameters(), 0.1F, config);
  opt2.load_state(ss);
  EXPECT_EQ(opt2.steps(), 3);
  EXPECT_TRUE(opt2.frozen());
  for (std::int64_t g = 0; g < 51; ++g) {
    EXPECT_EQ(opt.tracked().is_tracked(g), opt2.tracked().is_tracked(g));
  }
}

TEST(OptimizerState, ResumedTrainingMatchesUninterrupted) {
  // Run A: 6 steps straight. Run B: 3 steps, checkpoint weights + optimizer
  // state, restore into fresh objects, 3 more steps. Identical weights.
  auto train_steps = [](nn::Sequential& net, DropBackOptimizer& opt,
                        int first, int count) {
    for (int i = 0; i < count; ++i) {
      net.zero_grad();
      make_gradients(net, 100 + first + i);
      opt.step();
    }
  };
  DropBackConfig config;
  config.budget = 12;
  config.freeze_after_steps = 4;

  auto net_a = tiny_net(5);
  DropBackOptimizer opt_a(net_a->collect_parameters(), 0.2F, config);
  train_steps(*net_a, opt_a, 0, 6);

  auto net_b = tiny_net(5);
  {
    DropBackOptimizer opt_b1(net_b->collect_parameters(), 0.2F, config);
    train_steps(*net_b, opt_b1, 0, 3);
    std::stringstream state;
    opt_b1.save_state(state);
    // "Restart": fresh optimizer on the same (already-updated) weights.
    DropBackOptimizer opt_b2(net_b->collect_parameters(), 0.2F, config);
    opt_b2.load_state(state);
    train_steps(*net_b, opt_b2, 3, 3);
  }
  auto pa = net_a->collect_parameters();
  auto pb = net_b->collect_parameters();
  for (std::size_t p = 0; p < pa.size(); ++p) {
    for (std::int64_t i = 0; i < pa[p]->numel(); ++i) {
      ASSERT_FLOAT_EQ(pa[p]->var.value()[i], pb[p]->var.value()[i]);
    }
  }
}

TEST(OptimizerState, RejectsMismatchedConfig) {
  auto net = tiny_net();
  DropBackConfig config;
  config.budget = 9;
  DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  std::stringstream ss;
  opt.save_state(ss);
  auto net2 = tiny_net();
  DropBackConfig other;
  other.budget = 10;  // different budget
  DropBackOptimizer opt2(net2->collect_parameters(), 0.1F, other);
  EXPECT_THROW(opt2.load_state(ss), std::runtime_error);
}

TEST(OptimizerState, RejectsGarbageAndTruncation) {
  auto net = tiny_net();
  DropBackConfig config;
  config.budget = 9;
  DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  {
    std::stringstream ss;
    ss << "garbage";
    EXPECT_THROW(opt.load_state(ss), std::runtime_error);
  }
  {
    std::stringstream ss;
    opt.save_state(ss);
    const std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() - 3));
    EXPECT_THROW(opt.load_state(cut), std::runtime_error);
  }
}

/// Fuzz: single-byte corruption of a serialized store must never crash —
/// it either throws or yields a structurally valid store.
TEST(OptimizerState, StoreSurvivesByteCorruptionWithoutCrashing) {
  auto net = tiny_net();
  auto params = net->collect_parameters();
  DropBackConfig config;
  config.budget = 9;
  DropBackOptimizer opt(params, 0.1F, config);
  net->zero_grad();
  make_gradients(*net, 3);
  opt.step();
  auto store = SparseWeightStore::from_optimizer(opt);
  std::stringstream ss;
  store.save(ss);
  const std::string bytes = ss.str();
  rng::Xorshift128 rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = bytes;
    const auto pos = rng.uniform_int(static_cast<std::uint32_t>(bytes.size()));
    corrupted[pos] = static_cast<char>(rng.next_u32() & 0xFF);
    std::stringstream in(corrupted);
    try {
      auto loaded = SparseWeightStore::load(in);
      // If it parsed, basic invariants must hold.
      EXPECT_LE(loaded.live_weights(), loaded.dense_weights());
    } catch (const std::exception&) {
      // Throwing is the expected response to corruption.
    }
  }
}

}  // namespace
}  // namespace dropback::core
