#include "core/sparse_weight_store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "autograd/ops.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "rng/xorshift.hpp"
#include "util/container.hpp"
#include "util/fault_injection.hpp"
#include "util/io_error.hpp"

namespace dropback::core {
namespace {

namespace T = dropback::tensor;
namespace ag = dropback::autograd;

std::unique_ptr<nn::Sequential> tiny_net(std::uint64_t seed = 1) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Linear>(4, 6, seed);
  net->emplace<nn::Linear>(6, 3, seed + 1);
  return net;
}

void make_gradients(nn::Module& net, std::uint64_t seed = 9) {
  rng::Xorshift128 rng(seed);
  T::Tensor x({2, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-1, 1);
  ag::Variable input(x);
  ag::backward(ag::sum(ag::mul(net.forward(input), net.forward(input))));
}

/// DropBackOptimizer is non-movable (self-referential); hold it by pointer.
std::unique_ptr<DropBackOptimizer> trained_optimizer(nn::Sequential& net,
                                                     std::int64_t budget = 12) {
  DropBackConfig config;
  config.budget = budget;
  auto opt = std::make_unique<DropBackOptimizer>(net.collect_parameters(),
                                                 0.1F, config);
  for (int iter = 0; iter < 4; ++iter) {
    net.zero_grad();
    make_gradients(net, 40 + iter);
    opt->step();
  }
  return opt;
}

TEST(SparseWeightStore, CapturesExactlyTrackedWeights) {
  auto net = tiny_net();
  auto opt = trained_optimizer(*net, 12);
  auto store = SparseWeightStore::from_optimizer(*opt);
  EXPECT_EQ(store.num_params(), 4U);
  EXPECT_EQ(store.live_weights(), 12);
  EXPECT_EQ(store.dense_weights(), 51);
  EXPECT_NEAR(store.compression_ratio(), 51.0 / 12.0, 1e-9);
}

TEST(SparseWeightStore, MaterializeReconstructsModelExactly) {
  auto net = tiny_net();
  auto opt = trained_optimizer(*net, 12);
  auto store = SparseWeightStore::from_optimizer(*opt);
  const ParamIndex& index = opt->param_index();
  for (std::size_t p = 0; p < index.num_params(); ++p) {
    T::Tensor dense = store.materialize(p);
    nn::Parameter& param = index.param(p);
    ASSERT_EQ(dense.shape(), param.var.value().shape());
    for (std::int64_t i = 0; i < dense.numel(); ++i) {
      EXPECT_EQ(dense[i], param.var.value()[i])
          << param.name << "[" << i << "]";
    }
  }
}

TEST(SparseWeightStore, ApplyToRestoresIntoFreshModel) {
  auto net = tiny_net(3);
  auto opt = trained_optimizer(*net, 10);
  auto store = SparseWeightStore::from_optimizer(*opt);
  // Fresh model with the same topology but different weights.
  auto fresh = tiny_net(99);
  auto fresh_params = fresh->collect_parameters();
  store.apply_to(fresh_params);
  auto trained_params = net->collect_parameters();
  for (std::size_t p = 0; p < fresh_params.size(); ++p) {
    for (std::int64_t i = 0; i < fresh_params[p]->numel(); ++i) {
      EXPECT_EQ(fresh_params[p]->var.value()[i],
                trained_params[p]->var.value()[i]);
    }
  }
}

TEST(SparseWeightStore, ApplyToChecksShapes) {
  auto net = tiny_net();
  auto opt = trained_optimizer(*net, 10);
  auto store = SparseWeightStore::from_optimizer(*opt);
  nn::Sequential other;
  other.emplace<nn::Linear>(5, 5, 1);
  EXPECT_THROW(store.apply_to(other.collect_parameters()),
               std::invalid_argument);
}

TEST(SparseWeightStore, SaveLoadRoundTrip) {
  auto net = tiny_net();
  auto opt = trained_optimizer(*net, 15);
  auto store = SparseWeightStore::from_optimizer(*opt);
  std::stringstream ss;
  store.save(ss);
  auto loaded = SparseWeightStore::load(ss);
  EXPECT_TRUE(store == loaded);
  EXPECT_EQ(loaded.live_weights(), store.live_weights());
}

TEST(SparseWeightStore, BytesMatchesSerializedSize) {
  auto net = tiny_net();
  auto opt = trained_optimizer(*net, 15);
  auto store = SparseWeightStore::from_optimizer(*opt);
  std::stringstream ss;
  store.save(ss);
  EXPECT_EQ(static_cast<std::int64_t>(ss.str().size()), store.bytes());
}

TEST(SparseWeightStore, CompressedSmallerThanDenseAtLowBudget) {
  // Use a model big enough that per-parameter header overhead (name, shape,
  // InitSpec) is amortized; on a 51-weight toy net the headers dominate.
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Linear>(40, 40, 1);
  DropBackConfig config;
  config.budget = 80;
  DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  rng::Xorshift128 rng(5);
  T::Tensor x({2, 40});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-1, 1);
  ag::Variable input(x);
  ag::backward(ag::sum(ag::mul(net->forward(input), net->forward(input))));
  opt.step();
  auto store = SparseWeightStore::from_optimizer(opt);
  EXPECT_LT(store.bytes(), store.dense_bytes() / 4);
}

TEST(SparseWeightStore, LoadRejectsGarbage) {
  std::stringstream ss;
  ss << "not a store";
  EXPECT_THROW(SparseWeightStore::load(ss), std::runtime_error);
}

TEST(SparseWeightStore, LoadRejectsTruncated) {
  auto net = tiny_net();
  auto opt = trained_optimizer(*net, 15);
  auto store = SparseWeightStore::from_optimizer(*opt);
  std::stringstream ss;
  store.save(ss);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() - 7));
  EXPECT_THROW(SparseWeightStore::load(cut), std::runtime_error);
}

TEST(SparseWeightStore, FileRoundTrip) {
  auto net = tiny_net();
  auto opt = trained_optimizer(*net, 8);
  auto store = SparseWeightStore::from_optimizer(*opt);
  const std::string path = ::testing::TempDir() + "/store_roundtrip.dbsw";
  store.save_file(path);
  auto loaded = SparseWeightStore::load_file(path);
  EXPECT_TRUE(store == loaded);
}

TEST(SparseWeightStore, TrafficCounterCountsRegens) {
  auto net = tiny_net();
  auto opt = trained_optimizer(*net, 12);
  auto store = SparseWeightStore::from_optimizer(*opt);
  energy::TrafficCounter traffic;
  for (std::size_t p = 0; p < store.num_params(); ++p) {
    store.materialize(p, &traffic);
  }
  EXPECT_EQ(traffic.dram_reads, 12U);
  EXPECT_EQ(traffic.regens, 39U);
}

TEST(SparseWeightStore, FromParamsWithToleranceSkipsUnchanged) {
  auto net = tiny_net();
  auto params = net->collect_parameters();
  // Untouched network: every weight equals its init, so nothing is stored.
  auto store = SparseWeightStore::from_params(params, 0.0F);
  EXPECT_EQ(store.live_weights(), 0);
  // Perturb exactly three weights.
  params[0]->var.value()[0] += 1.0F;
  params[0]->var.value()[5] += 1.0F;
  params[2]->var.value()[1] -= 1.0F;
  store = SparseWeightStore::from_params(params, 0.0F);
  EXPECT_EQ(store.live_weights(), 3);
}

TEST(SparseWeightStore, UntrainedOptimizerStoresEverything) {
  // Before the first step the tracked set is "all tracked": the store is a
  // dense snapshot.
  auto net = tiny_net();
  DropBackConfig config;
  config.budget = 10;
  DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  auto store = SparseWeightStore::from_optimizer(opt);
  EXPECT_EQ(store.live_weights(), 51);
}

std::string serialized_store() {
  auto net = tiny_net();
  auto opt = trained_optimizer(*net, 15);
  auto store = SparseWeightStore::from_optimizer(*opt);
  std::stringstream ss;
  store.save(ss);
  return ss.str();
}

TEST(SparseWeightStore, FlippingAnyHeaderByteRaisesIoError) {
  const std::string good = serialized_store();
  // The container header is magic(4) + kind(4) + version(4) + section
  // count(4) + header CRC(4): a flip in any of those 20 bytes must surface
  // as a clean util::IoError, never a crash or a silently misloaded store.
  for (std::size_t off = 0;
       off < static_cast<std::size_t>(util::ContainerWriter::header_bytes());
       ++off) {
    std::string bad = good;
    bad[off] = static_cast<char>(bad[off] ^ 0xFF);
    std::stringstream in(bad);
    EXPECT_THROW(SparseWeightStore::load(in), util::IoError)
        << "header byte " << off;
  }
}

TEST(SparseWeightStore, FlippingSectionPreludeBytesRaisesIoError) {
  const std::string good = serialized_store();
  // The first section's prelude follows the 20-byte header: name length,
  // name, payload size, payload CRC. None of it is covered by the header
  // CRC, so each field needs its own detection path (name/record mismatch,
  // implausible size, checksum mismatch).
  const std::size_t begin =
      static_cast<std::size_t>(util::ContainerWriter::header_bytes());
  std::uint16_t name_len = 0;
  std::memcpy(&name_len, good.data() + begin, sizeof(name_len));
  const std::size_t prelude = 2 + name_len + 8 + 4;
  for (std::size_t off = begin; off < begin + prelude; ++off) {
    std::string bad = good;
    bad[off] = static_cast<char>(bad[off] ^ 0xFF);
    std::stringstream in(bad);
    EXPECT_THROW(SparseWeightStore::load(in), util::IoError)
        << "section prelude byte " << off;
  }
}

TEST(SparseWeightStore, FlippingABodyByteRaisesIoError) {
  const std::string good = serialized_store();
  for (const std::size_t off : {good.size() / 2, good.size() - 1}) {
    std::string bad = good;
    bad[off] = static_cast<char>(bad[off] ^ 0xFF);
    std::stringstream in(bad);
    EXPECT_THROW(SparseWeightStore::load(in), util::IoError)
        << "body byte " << off;
  }
}

TEST(SparseWeightStore, LoadStillAcceptsLegacyFlatFormat) {
  auto net = tiny_net();
  auto opt = trained_optimizer(*net, 15);
  auto store = SparseWeightStore::from_optimizer(*opt);
  // Re-create the pre-checksum layout by hand: magic, count, then the same
  // record encoding the container sections carry.
  std::stringstream container;
  store.save(container);
  const util::ContainerReader reader =
      util::ContainerReader::read_from(container, "DBSW");
  std::stringstream legacy;
  legacy.write("DBSW", 4);
  const auto count = static_cast<std::uint32_t>(reader.num_sections());
  legacy.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (std::size_t p = 0; p < reader.num_sections(); ++p) {
    legacy << reader.section_bytes(p);
  }
  EXPECT_TRUE(SparseWeightStore::load(legacy) == store);
}

TEST(SparseWeightStore, SaveFileIsAtomicOnDiskFailure) {
  auto net = tiny_net();
  auto opt = trained_optimizer(*net, 8);
  auto store = SparseWeightStore::from_optimizer(*opt);
  const std::string path = ::testing::TempDir() + "/store_atomic.dbsw";
  store.save_file(path);
  // Shrink the budget and try to overwrite while an ENOSPC fault is armed:
  // the original file must survive intact.
  auto opt2 = trained_optimizer(*net, 3);
  auto smaller = SparseWeightStore::from_optimizer(*opt2);
  util::arm_fault({util::FaultKind::kEnospc, 10});
  EXPECT_THROW(smaller.save_file(path), util::IoError);
  util::disarm_fault();
  EXPECT_TRUE(SparseWeightStore::load_file(path) == store);
}

/// Budget sweep for the store round trip.
class StoreBudgetSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(StoreBudgetSweep, RoundTripAtEveryBudget) {
  auto net = tiny_net();
  auto opt = trained_optimizer(*net, GetParam());
  auto store = SparseWeightStore::from_optimizer(*opt);
  std::stringstream ss;
  store.save(ss);
  EXPECT_TRUE(SparseWeightStore::load(ss) == store);
}

INSTANTIATE_TEST_SUITE_P(Budgets, StoreBudgetSweep,
                         ::testing::Values(1, 5, 20, 50));

}  // namespace
}  // namespace dropback::core
