// Unit tests for tools/dbk_lint: every rule R1–R12 has at least one
// true-positive fixture (the rule fires on a minimal offending snippet) and
// at least one suppression fixture (inline directive or allowlist entry
// silences it), plus scrubber and include-extractor edge cases (comments,
// strings, raw strings, digit separators, #ifdef branches, same-basename
// headers), whole-program fixtures (layering, taint chains, neighborhood
// scoping, staleness audit, baselines), SARIF golden bytes + round-trip
// checks, and report-format checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "dbk_lint/graph.hpp"
#include "dbk_lint/lint.hpp"
#include "dbk_lint/sarif.hpp"
#include "obs/json.hpp"

namespace {

using dbk_lint::Allowlist;
using dbk_lint::Finding;
using dbk_lint::lint_source;

Allowlist empty_allow() { return Allowlist{}; }

Allowlist parse_allow(const std::string& text) {
  Allowlist a;
  std::string error;
  EXPECT_TRUE(a.parse(text, &error)) << error;
  return a;
}

// Findings for `rule` only (suppressed and not).
std::vector<Finding> findings_for(const std::vector<Finding>& all,
                                  const std::string& rule) {
  std::vector<Finding> out;
  for (const auto& f : all) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

int live_count(const std::vector<Finding>& all, const std::string& rule) {
  int n = 0;
  for (const auto& f : all) {
    if (f.rule == rule && !f.suppressed) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// R1: raw threading primitives
// ---------------------------------------------------------------------------

TEST(LintR1, FiresOnRawThreadAndMutex) {
  const std::string src =
      "#include <thread>\n"
      "void spawn() {\n"
      "  std::thread t([] {});\n"
      "  std::mutex mu;\n"
      "  t.join();\n"
      "}\n";
  const auto all = lint_source("src/core/worker.cpp", src, empty_allow());
  const auto r1 = findings_for(all, "R1");
  ASSERT_EQ(r1.size(), 2U);
  EXPECT_EQ(r1[0].line, 3);
  EXPECT_EQ(r1[0].file, "src/core/worker.cpp");
  EXPECT_FALSE(r1[0].suppressed);
  EXPECT_NE(r1[0].message.find("std::thread"), std::string::npos);
  EXPECT_EQ(r1[1].line, 4);
}

TEST(LintR1, FiresOnAsyncAndConditionVariable) {
  const std::string src =
      "void f() {\n"
      "  auto fut = std::async([] { return 1; });\n"
      "  std::condition_variable cv;\n"
      "}\n";
  const auto all = lint_source("bench/bench_x.cpp", src, empty_allow());
  EXPECT_EQ(live_count(all, "R1"), 2);
}

TEST(LintR1, ThreadPoolAndDataLoaderAreBuiltInAllowed) {
  const std::string src = "std::thread worker_;\nstd::mutex mu_;\n";
  EXPECT_TRUE(findings_for(
                  lint_source("src/util/thread_pool.cpp", src, empty_allow()),
                  "R1")
                  .empty());
  EXPECT_TRUE(findings_for(
                  lint_source("src/data/dataloader.hpp", src, empty_allow()),
                  "R1")
                  .empty());
}

TEST(LintR1, AllowlistSuppressesButKeepsAuditTrail) {
  const auto allow =
      parse_allow("R1 src/obs/widget.cpp  leaf lock, never in kernels\n");
  const auto all = lint_source("src/obs/widget.cpp",
                               "std::mutex mu_;\n", allow);
  const auto r1 = findings_for(all, "R1");
  ASSERT_EQ(r1.size(), 1U);
  EXPECT_TRUE(r1[0].suppressed);
  EXPECT_NE(r1[0].suppress_reason.find("leaf lock"), std::string::npos);
  EXPECT_EQ(dbk_lint::unsuppressed_count(all), 0);
}

TEST(LintR1, DirectoryPrefixAllowlistEntry) {
  const auto allow = parse_allow("R1 src/obs/  telemetry locks\n");
  EXPECT_EQ(live_count(lint_source("src/obs/deep/nested.cpp",
                                   "std::mutex mu;\n", allow),
                       "R1"),
            0);
  // Prefix must not leak to sibling directories.
  EXPECT_EQ(live_count(lint_source("src/optim/sgd.cpp",
                                   "std::mutex mu;\n", allow),
                       "R1"),
            1);
}

// ---------------------------------------------------------------------------
// R2: raw artifact writes
// ---------------------------------------------------------------------------

TEST(LintR2, FiresOnOfstreamAndFopen) {
  const std::string src =
      "void save_weights(const char* p) {\n"
      "  std::ofstream out(p, std::ios::binary);\n"
      "  FILE* f = fopen(p, \"wb\");\n"
      "}\n";
  const auto all = lint_source("src/nn/saver.cpp", src, empty_allow());
  const auto r2 = findings_for(all, "R2");
  ASSERT_EQ(r2.size(), 2U);
  EXPECT_EQ(r2[0].line, 2);
  EXPECT_EQ(r2[1].line, 3);
  EXPECT_NE(r2[0].message.find("atomic_write_file"), std::string::npos);
}

TEST(LintR2, AtomicFileImplementationIsBuiltInAllowed) {
  const auto all = lint_source("src/util/atomic_file.cpp",
                               "std::ofstream out(tmp);\n", empty_allow());
  EXPECT_TRUE(findings_for(all, "R2").empty());
}

TEST(LintR2, IfstreamReadsAreFine) {
  const auto all = lint_source(
      "src/nn/loader.cpp", "std::ifstream in(p, std::ios::binary);\n",
      empty_allow());
  EXPECT_TRUE(findings_for(all, "R2").empty());
}

TEST(LintR2, InlineAllowOnSameLine) {
  const std::string src =
      "std::ofstream out(p);  // dbk-lint: allow(R2): scratch file\n";
  const auto all = lint_source("src/util/scratch.cpp", src, empty_allow());
  const auto r2 = findings_for(all, "R2");
  ASSERT_EQ(r2.size(), 1U);
  EXPECT_TRUE(r2[0].suppressed);
  EXPECT_NE(r2[0].suppress_reason.find("scratch file"), std::string::npos);
}

TEST(LintR2, AllowlistSuppression) {
  const auto allow =
      parse_allow("R2 src/data/export.cpp  dataset fixture writer\n");
  const auto all = lint_source("src/data/export.cpp",
                               "std::ofstream out(p);\n", allow);
  const auto r2 = findings_for(all, "R2");
  ASSERT_EQ(r2.size(), 1U);
  EXPECT_TRUE(r2[0].suppressed);
  EXPECT_NE(r2[0].suppress_reason.find("fixture writer"), std::string::npos);
}

// ---------------------------------------------------------------------------
// R3: ambient nondeterminism
// ---------------------------------------------------------------------------

TEST(LintR3, FiresOnRandTimeAndSystemClock) {
  const std::string src =
      "int f() {\n"
      "  int a = std::rand();\n"
      "  std::random_device rd;\n"
      "  auto t = std::chrono::system_clock::now();\n"
      "  long s = time(nullptr);\n"
      "  return a;\n"
      "}\n";
  const auto all = lint_source("src/optim/jitter.cpp", src, empty_allow());
  EXPECT_EQ(live_count(all, "R3"), 4);
}

TEST(LintR3, SteadyClockAndXorshiftAreFine) {
  const std::string src =
      "auto t = std::chrono::steady_clock::now();\n"
      "rng::Xorshift gen(seed);\n"
      "double total_time(int x);\n"  // identifier ending in "time" + call
      "int y = total_time(3);\n";
  const auto all = lint_source("src/core/kernel.cpp", src, empty_allow());
  EXPECT_TRUE(findings_for(all, "R3").empty());
}

TEST(LintR3, LogAndTimerAreBuiltInWhitelisted) {
  const std::string src = "const std::time_t now = std::time(nullptr);\n";
  EXPECT_TRUE(
      findings_for(lint_source("src/util/log.cpp", src, empty_allow()), "R3")
          .empty());
  EXPECT_EQ(live_count(lint_source("src/core/x.cpp", src, empty_allow()),
                       "R3"),
            1);
}

TEST(LintR3, CommentOnlyDirectiveSuppressesNextLine) {
  const std::string src =
      "// dbk-lint: allow(R3): seeding the demo from the wall clock is ok\n"
      "unsigned seed = time(nullptr);\n";
  const auto all = lint_source("examples/demo.cpp", src, empty_allow());
  const auto r3 = findings_for(all, "R3");
  ASSERT_EQ(r3.size(), 1U);
  EXPECT_TRUE(r3[0].suppressed);
}

TEST(LintR3, AllowlistSuppression) {
  const auto allow = parse_allow("R3 examples/demo.cpp  demo-only seeding\n");
  const auto all = lint_source("examples/demo.cpp",
                               "std::random_device rd;\n", allow);
  const auto r3 = findings_for(all, "R3");
  ASSERT_EQ(r3.size(), 1U);
  EXPECT_TRUE(r3[0].suppressed);
}

// ---------------------------------------------------------------------------
// R4: unordered iteration in serialization functions
// ---------------------------------------------------------------------------

TEST(LintR4, FiresOnRangeForOverUnorderedInSaveFunction) {
  const std::string src =
      "void save_state(std::ostream& out,\n"
      "                const std::unordered_map<std::string, int>& m) {\n"
      "  for (const auto& kv : m) {\n"
      "    out << kv.first;\n"
      "  }\n"
      "}\n";
  const auto all = lint_source("src/train/state.cpp", src, empty_allow());
  const auto r4 = findings_for(all, "R4");
  ASSERT_EQ(r4.size(), 1U);
  EXPECT_EQ(r4[0].line, 3);
  EXPECT_FALSE(r4[0].suppressed);
  EXPECT_NE(r4[0].message.find("save_state"), std::string::npos);
}

TEST(LintR4, FiresOnBeginIterationInCheckpointFunction) {
  const std::string src =
      "void write_checkpoint(std::ostream& out) {\n"
      "  std::unordered_set<int> keys;\n"
      "  for (auto it = keys.begin(); it != keys.end(); ++it) {\n"
      "    out << *it;\n"
      "  }\n"
      "}\n";
  const auto all = lint_source("src/train/ckpt.cpp", src, empty_allow());
  EXPECT_EQ(live_count(all, "R4"), 1);
}

TEST(LintR4, UnorderedIterationOutsideSerializationIsFine) {
  const std::string src =
      "int count_visited(const std::unordered_set<int>& seen) {\n"
      "  int n = 0;\n"
      "  for (int v : seen) n += v;\n"
      "  return n;\n"
      "}\n";
  const auto all = lint_source("src/autograd/walk.cpp", src, empty_allow());
  EXPECT_TRUE(findings_for(all, "R4").empty());
}

TEST(LintR4, OrderedMapInSaveFunctionIsFine) {
  const std::string src =
      "void save_state(std::ostream& out, const std::map<int, int>& m) {\n"
      "  for (const auto& kv : m) out << kv.first;\n"
      "}\n";
  const auto all = lint_source("src/train/state.cpp", src, empty_allow());
  EXPECT_TRUE(findings_for(all, "R4").empty());
}

TEST(LintR4, AllowlistSuppression) {
  const auto allow =
      parse_allow("R4 src/train/state.cpp  keys sorted upstream\n");
  const std::string src =
      "void save_state(const std::unordered_map<int, int>& m) {\n"
      "  for (const auto& kv : m) use(kv);\n"
      "}\n";
  const auto all = lint_source("src/train/state.cpp", src, allow);
  const auto r4 = findings_for(all, "R4");
  ASSERT_EQ(r4.size(), 1U);
  EXPECT_TRUE(r4[0].suppressed);
}

// ---------------------------------------------------------------------------
// R5: floating-point equality
// ---------------------------------------------------------------------------

TEST(LintR5, FiresOnFloatLiteralComparison) {
  const std::string src =
      "bool f(float x, double y) {\n"
      "  if (x == 0.5f) return true;\n"
      "  if (1.0 != y) return true;\n"
      "  return x == 1e-6;\n"
      "}\n";
  const auto all = lint_source("src/core/cmp.cpp", src, empty_allow());
  EXPECT_EQ(live_count(all, "R5"), 3);
}

TEST(LintR5, IntegerAndRelationalComparesAreFine) {
  const std::string src =
      "bool f(int n, float x) {\n"
      "  if (n == 0) return true;\n"
      "  if (x >= 0.5f) return true;\n"
      "  if (x <= 1.0) return false;\n"
      "  return n != 3;\n"
      "}\n";
  const auto all = lint_source("src/core/cmp.cpp", src, empty_allow());
  EXPECT_TRUE(findings_for(all, "R5").empty());
}

TEST(LintR5, TestsAreExemptBitwiseAssertionsLiveThere) {
  const std::string src = "EXPECT_TRUE(loss == 0.25f);\n";
  EXPECT_TRUE(
      findings_for(lint_source("tests/foo_test.cpp", src, empty_allow()),
                   "R5")
          .empty());
  EXPECT_EQ(live_count(lint_source("src/foo.cpp", src, empty_allow()), "R5"),
            1);
}

TEST(LintR5, InlineAllowWithReason) {
  const std::string src =
      "// dbk-lint: allow(R5): exact sparsity sentinel\n"
      "if (w == 0.0F) continue;\n";
  const auto all = lint_source("src/core/sparse.cpp", src, empty_allow());
  const auto r5 = findings_for(all, "R5");
  ASSERT_EQ(r5.size(), 1U);
  EXPECT_TRUE(r5[0].suppressed);
  EXPECT_NE(r5[0].suppress_reason.find("sparsity sentinel"),
            std::string::npos);
}

TEST(LintR5, AllowlistSuppressionAndWildcardRule) {
  const auto allow = parse_allow("* src/legacy/  grandfathered pending port\n");
  const auto all = lint_source("src/legacy/old.cpp",
                               "if (x == 0.5f) { std::mutex mu; }\n", allow);
  ASSERT_EQ(all.size(), 2U);  // R1 + R5, both wildcard-suppressed
  EXPECT_TRUE(all[0].suppressed);
  EXPECT_TRUE(all[1].suppressed);
  EXPECT_EQ(dbk_lint::unsuppressed_count(all), 0);
}

// ---------------------------------------------------------------------------
// R6: profile-scope label uniqueness + CMake registration
// ---------------------------------------------------------------------------

TEST(LintR6, FiresOnDuplicateLabelInOneFunction) {
  const std::string src =
      "void step() {\n"
      "  DROPBACK_PROFILE_SCOPE(\"fwd\");\n"
      "  {\n"
      "    DROPBACK_PROFILE_SCOPE(\"fwd\");\n"
      "  }\n"
      "}\n";
  const auto all = lint_source("src/train/step.cpp", src, empty_allow());
  const auto r6 = findings_for(all, "R6");
  ASSERT_EQ(r6.size(), 1U);
  EXPECT_EQ(r6[0].line, 4);
  EXPECT_NE(r6[0].message.find("first at line 2"), std::string::npos);
}

TEST(LintR6, SameLabelInDifferentFunctionsIsFine) {
  const std::string src =
      "void forward() { DROPBACK_PROFILE_SCOPE(\"matmul\"); }\n"
      "void backward() { DROPBACK_PROFILE_SCOPE(\"matmul\"); }\n";
  const auto all = lint_source("src/nn/layer.cpp", src, empty_allow());
  EXPECT_TRUE(findings_for(all, "R6").empty());
}

TEST(LintR6, InlineAllowForDeliberateDuplicate) {
  const std::string src =
      "void merge_test() {\n"
      "  DROPBACK_PROFILE_SCOPE(\"inner\");\n"
      "  // dbk-lint: allow(R6): duplicate proves same-label merge\n"
      "  DROPBACK_PROFILE_SCOPE(\"inner\");\n"
      "}\n";
  const auto all = lint_source("tests/prof_test.cpp", src, empty_allow());
  const auto r6 = findings_for(all, "R6");
  ASSERT_EQ(r6.size(), 1U);
  EXPECT_TRUE(r6[0].suppressed);
}

TEST(LintR6, CmakeRegistrationMissingFileFires) {
  const std::string cmake =
      "add_library(dropback\n  util/log.cpp\n  tensor/tensor.cpp\n)\n";
  const auto all = dbk_lint::lint_cmake_registration(
      cmake, {"src/util/log.cpp", "src/tensor/tensor.cpp",
              "src/core/new_kernel.cpp"},
      empty_allow());
  ASSERT_EQ(all.size(), 1U);
  EXPECT_EQ(all[0].rule, "R6");
  EXPECT_EQ(all[0].file, "src/CMakeLists.txt");
  EXPECT_NE(all[0].message.find("src/core/new_kernel.cpp"),
            std::string::npos);
  EXPECT_FALSE(all[0].suppressed);
}

TEST(LintR6, CmakeRegistrationAllowlisted) {
  const auto allow =
      parse_allow("R6 src/core/generated.cpp  built by codegen target\n");
  const auto all = dbk_lint::lint_cmake_registration(
      "add_library(dropback)\n", {"src/core/generated.cpp"}, allow);
  ASSERT_EQ(all.size(), 1U);
  EXPECT_TRUE(all[0].suppressed);
}

// ---------------------------------------------------------------------------
// R7: vendor SIMD intrinsics only under src/simd/
// ---------------------------------------------------------------------------

TEST(LintR7, FiresOnIntrinsicsHeaderAndIdentifiers) {
  const std::string src =
      "#include <immintrin.h>\n"
      "float hsum(const float* p) {\n"
      "  __m256 v = _mm256_loadu_ps(p);\n"
      "  __m128 lo = _mm256_castps256_ps128(v);\n"
      "  return _mm_cvtss_f32(lo);\n"
      "}\n";
  const auto all = lint_source("src/tensor/fast_sum.cpp", src, empty_allow());
  // Header include + one finding per intrinsic-bearing line.
  EXPECT_GE(live_count(all, "R7"), 4);
}

TEST(LintR7, FiresOnNeonIdentifiers) {
  const std::string src =
      "#include <arm_neon.h>\n"
      "void copy4(float* d, const float* s) {\n"
      "  float32x4_t v = vld1q_f32(s);\n"
      "  vst1q_f32(d, v);\n"
      "}\n";
  const auto all = lint_source("bench/bench_neon.cpp", src, empty_allow());
  EXPECT_GE(live_count(all, "R7"), 3);
}

TEST(LintR7, SimdDirectoryIsBuiltInAllowed) {
  const std::string src =
      "#include <immintrin.h>\n"
      "__m512 z = _mm512_setzero_ps();\n";
  EXPECT_TRUE(findings_for(lint_source("src/simd/vec.hpp", src, empty_allow()),
                           "R7")
                  .empty());
  EXPECT_TRUE(
      findings_for(
          lint_source("src/simd/kernels_avx2.cpp", src, empty_allow()), "R7")
          .empty());
}

TEST(LintR7, PortableSimdApiUseIsFine) {
  // Call sites use the dispatch layer, never raw intrinsics: none of these
  // tokens may trip the rule.
  const std::string src =
      "#include \"simd/dispatch.hpp\"\n"
      "void f(float* d, const float* s, std::int64_t n) {\n"
      "  const simd::Kernels& k = simd::kernels();\n"
      "  k.axpy(d, s, 2.0F, n);\n"
      "  simd::set_target(simd::Target::kScalar);\n"
      "}\n";
  const auto all = lint_source("src/tensor/matmul.cpp", src, empty_allow());
  EXPECT_TRUE(findings_for(all, "R7").empty());
}

TEST(LintR7, MentionsInCommentsAndStringsAreInvisible) {
  const std::string src =
      "// uses _mm256_fmadd_ps on AVX2, see immintrin.h\n"
      "const char* kMsg = \"vld1q_f32 is the NEON load\";\n";
  const auto all = lint_source("src/util/doc.cpp", src, empty_allow());
  EXPECT_TRUE(findings_for(all, "R7").empty());
}

TEST(LintR7, InlineAllowAndAllowlistSuppress) {
  const std::string inline_src =
      "// dbk-lint: allow(R7): cpuid probe predates the dispatch layer\n"
      "int has = __builtin_cpu_supports(\"avx2\") && _mm_pause();\n";
  const auto inline_all =
      lint_source("src/util/cpu.cpp", inline_src, empty_allow());
  const auto inline_r7 = findings_for(inline_all, "R7");
  ASSERT_EQ(inline_r7.size(), 1U);
  EXPECT_TRUE(inline_r7[0].suppressed);

  const auto allow = parse_allow("R7 bench/bench_intrin.cpp  raw-ISA probe\n");
  const auto listed = lint_source("bench/bench_intrin.cpp",
                                  "__m256 v = _mm256_setzero_ps();\n", allow);
  for (const auto& f : findings_for(listed, "R7")) {
    EXPECT_TRUE(f.suppressed);
  }
  EXPECT_EQ(live_count(listed, "R7"), 0);
}

// ---------------------------------------------------------------------------
// R8: serving-layer thread discipline
// ---------------------------------------------------------------------------

TEST(LintR8, FiresOnUnboundedWaitAndDetach) {
  const std::string src =
      "void loop() {\n"
      "  std::unique_lock<std::mutex> lock(mu_);\n"
      "  cv_.wait(lock);\n"
      "  std::thread t([] {});\n"
      "  t.detach();\n"
      "}\n";
  const auto all = lint_source("src/serve/worker.cpp", src, empty_allow());
  const auto r8 = findings_for(all, "R8");
  ASSERT_EQ(r8.size(), 2U);
  EXPECT_EQ(r8[0].line, 3);
  EXPECT_NE(r8[0].message.find("wait_for"), std::string::npos);
  EXPECT_EQ(r8[1].line, 5);
  EXPECT_NE(r8[1].message.find("joined"), std::string::npos);
}

TEST(LintR8, FiresOnArrowAccessToo) {
  const std::string src = "void f() { cv->wait(lock); }\n";
  EXPECT_EQ(live_count(
                lint_source("src/serve/queue.cpp", src, empty_allow()), "R8"),
            1);
}

TEST(LintR8, BoundedWaitsAndJoinsAreFine) {
  const std::string src =
      "void loop() {\n"
      "  cv_.wait_for(lock, std::chrono::microseconds(100), [] {\n"
      "    return done;\n"
      "  });\n"
      "  cv_.wait_until(lock, deadline);\n"
      "  worker.join();\n"
      "}\n";
  const auto all = lint_source("src/serve/worker.cpp", src, empty_allow());
  EXPECT_TRUE(findings_for(all, "R8").empty());
}

TEST(LintR8, OnlyAppliesUnderServe) {
  // Elsewhere the R1 thread-primitive rule owns the territory; a bare wait
  // in the pool implementation is the pool's business.
  const std::string src = "void f() { cv_.wait(lock); t.detach(); }\n";
  EXPECT_TRUE(findings_for(
                  lint_source("src/util/thread_pool.cpp", src, empty_allow()),
                  "R8")
                  .empty());
  EXPECT_TRUE(findings_for(
                  lint_source("tests/serve_test.cpp", src, empty_allow()),
                  "R8")
                  .empty());
}

TEST(LintR8, InlineAllowAndAllowlistSuppress) {
  const std::string inline_src =
      "// dbk-lint: allow(R8): wait is bounded by the caller's watchdog\n"
      "void f() { cv_.wait(lock); }\n";
  const auto inline_all =
      lint_source("src/serve/legacy.cpp", inline_src, empty_allow());
  const auto inline_r8 = findings_for(inline_all, "R8");
  ASSERT_EQ(inline_r8.size(), 1U);
  EXPECT_TRUE(inline_r8[0].suppressed);

  const auto allow = parse_allow("R8 src/serve/legacy.cpp  grandfathered\n");
  const auto listed = lint_source("src/serve/legacy.cpp",
                                  "void f() { cv_.wait(lock); }\n", allow);
  EXPECT_EQ(live_count(listed, "R8"), 0);
  ASSERT_EQ(findings_for(listed, "R8").size(), 1U);
  EXPECT_TRUE(findings_for(listed, "R8")[0].suppressed);
}

// ---------------------------------------------------------------------------
// R9: wall-time reads must go through util::ClockSource
// ---------------------------------------------------------------------------

TEST(LintR9, FiresOnRawSteadyAndHighResolutionClock) {
  const std::string src =
      "void f() {\n"
      "  auto t0 = std::chrono::steady_clock::now();\n"
      "  auto t1 = std::chrono::high_resolution_clock::now();\n"
      "}\n";
  const auto all = lint_source("src/serve/server.cpp", src, empty_allow());
  const auto r9 = findings_for(all, "R9");
  ASSERT_EQ(r9.size(), 2U);
  EXPECT_EQ(r9[0].line, 2);
  EXPECT_NE(r9[0].message.find("util::ClockSource"), std::string::npos);
  EXPECT_EQ(r9[1].line, 3);

  // Examples are product code too: same contract.
  EXPECT_EQ(live_count(
                lint_source("examples/train_mnist.cpp", src, empty_allow()),
                "R9"),
            2);
}

TEST(LintR9, UtilBenchAndTestsAreExempt) {
  const std::string src = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(findings_for(lint_source("src/util/steady_clock.cpp", src,
                                       empty_allow()),
                           "R9")
                  .empty());
  EXPECT_TRUE(findings_for(
                  lint_source("bench/bench_micro.cpp", src, empty_allow()),
                  "R9")
                  .empty());
  EXPECT_TRUE(findings_for(
                  lint_source("tests/timer_test.cpp", src, empty_allow()),
                  "R9")
                  .empty());
}

TEST(LintR9, InjectedClockUseIsFine) {
  const std::string src =
      "void f(util::ClockSource* clock) {\n"
      "  const std::int64_t now = clock->now_us();\n"
      "  const std::int64_t ns = util::steady_clock_source().now_ns();\n"
      "}\n";
  const auto all = lint_source("src/train/trainer.cpp", src, empty_allow());
  EXPECT_TRUE(findings_for(all, "R9").empty());
}

TEST(LintR9, InlineAllowAndAllowlistSuppress) {
  const std::string inline_src =
      "void f() {\n"
      "  // dbk-lint: allow(R9): one-shot startup stamp, never injected\n"
      "  auto t = std::chrono::steady_clock::now();\n"
      "}\n";
  const auto inline_all =
      lint_source("src/core/boot.cpp", inline_src, empty_allow());
  const auto inline_r9 = findings_for(inline_all, "R9");
  ASSERT_EQ(inline_r9.size(), 1U);
  EXPECT_TRUE(inline_r9[0].suppressed);

  const auto allow = parse_allow("R9 src/core/boot.cpp  grandfathered\n");
  const auto listed = lint_source(
      "src/core/boot.cpp",
      "auto t = std::chrono::steady_clock::now();\n", allow);
  EXPECT_EQ(live_count(listed, "R9"), 0);
  ASSERT_EQ(findings_for(listed, "R9").size(), 1U);
  EXPECT_TRUE(findings_for(listed, "R9")[0].suppressed);
}

// ---------------------------------------------------------------------------
// R10: tracked-set capacity only changes through the BudgetSchedule path
// ---------------------------------------------------------------------------

TEST(LintR10, FiresOnDirectCapacityMutationOutsideCore) {
  const std::string src =
      "void f(core::TrackedSet& set) {\n"
      "  set.select(scores, 100);\n"
      "  set.select_per_param(scores, budgets);\n"
      "  set_ptr->readmit(seed, step, 0.01F);\n"
      "}\n";
  const auto all = lint_source("src/train/rogue.cpp", src, empty_allow());
  const auto r10 = findings_for(all, "R10");
  ASSERT_EQ(r10.size(), 3U);
  EXPECT_EQ(r10[0].line, 2);
  EXPECT_NE(r10[0].message.find("BudgetSchedule"), std::string::npos);
  EXPECT_NE(r10[1].message.find("select_per_param"), std::string::npos);
  EXPECT_NE(r10[2].message.find("readmit"), std::string::npos);

  // Examples and bench are product/bench code: same contract.
  EXPECT_EQ(live_count(
                lint_source("examples/custom_loop.cpp", src, empty_allow()),
                "R10"),
            3);
  EXPECT_EQ(live_count(
                lint_source("bench/bench_custom.cpp", src, empty_allow()),
                "R10"),
            3);
}

TEST(LintR10, CoreAndTestsAreExempt) {
  const std::string src = "tracked_.select(scores_, k);\n";
  EXPECT_TRUE(
      findings_for(lint_source("src/core/dropback_optimizer.cpp", src,
                               empty_allow()),
                   "R10")
          .empty());
  EXPECT_TRUE(findings_for(lint_source("tests/tracked_set_test.cpp", src,
                                       empty_allow()),
                           "R10")
                  .empty());
}

TEST(LintR10, FreeFunctionSelectIsFine) {
  const std::string src =
      "auto winner = select(candidates);\n"
      "auto other = my::select(candidates);\n";
  const auto all = lint_source("src/train/picker.cpp", src, empty_allow());
  EXPECT_TRUE(findings_for(all, "R10").empty());
}

TEST(LintR10, InlineAllowAndAllowlistSuppress) {
  const std::string inline_src =
      "void f() {\n"
      "  // dbk-lint: allow(R10): baseline pruner owns this kept-set\n"
      "  kept_.select(scores_, keep);\n"
      "}\n";
  const auto inline_all =
      lint_source("src/baselines/pruner.cpp", inline_src, empty_allow());
  const auto inline_r10 = findings_for(inline_all, "R10");
  ASSERT_EQ(inline_r10.size(), 1U);
  EXPECT_TRUE(inline_r10[0].suppressed);

  const auto allow = parse_allow("R10 src/baselines/  baseline kept-sets\n");
  const auto listed = lint_source("src/baselines/pruner.cpp",
                                  "kept_.select(scores_, keep);\n", allow);
  EXPECT_EQ(live_count(listed, "R10"), 0);
  ASSERT_EQ(findings_for(listed, "R10").size(), 1U);
  EXPECT_TRUE(findings_for(listed, "R10")[0].suppressed);
}

// ---------------------------------------------------------------------------
// Scrubber: rule tokens inside comments/strings never fire
// ---------------------------------------------------------------------------

TEST(LintScrub, TokensInCommentsAndStringsAreInvisible) {
  const std::string src =
      "// std::thread in a comment, fopen( too\n"
      "/* std::mutex mu; time(nullptr); */\n"
      "const char* s = \"std::ofstream out; std::rand()\";\n"
      "const char* r = R\"(std::thread t; w == 0.5f)\";\n";
  const auto all = lint_source("src/core/doc.cpp", src, empty_allow());
  EXPECT_TRUE(all.empty());
}

TEST(LintScrub, DigitSeparatorsDoNotDerailCharLiterals) {
  // If 1'000'000 were parsed as a char literal, the std::mutex after it
  // would be swallowed into "string" state and missed.
  const std::string src =
      "constexpr int kBig = 1'000'000;\n"
      "std::mutex mu;\n";
  const auto all = lint_source("src/core/big.cpp", src, empty_allow());
  EXPECT_EQ(live_count(all, "R1"), 1);
}

TEST(LintScrub, EscapedQuotesInsideStrings) {
  const std::string src =
      "const char* s = \"quote \\\" std::thread inside\";\n"
      "std::thread t;\n";
  const auto all = lint_source("src/core/esc.cpp", src, empty_allow());
  const auto r1 = findings_for(all, "R1");
  ASSERT_EQ(r1.size(), 1U);
  EXPECT_EQ(r1[0].line, 2);
}

// ---------------------------------------------------------------------------
// Allowlist parsing & report format
// ---------------------------------------------------------------------------

TEST(LintAllowlist, RejectsMalformedLines) {
  Allowlist a;
  std::string error;
  EXPECT_FALSE(a.parse("R99 src/foo.cpp bad rule id\n", &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  Allowlist b;
  EXPECT_FALSE(b.parse("R1\n", &error));
}

TEST(LintAllowlist, CommentsAndBlanksAreIgnored) {
  const auto a = parse_allow("# header\n\nR1 src/x.cpp reason here\n");
  ASSERT_EQ(a.entries().size(), 1U);
  EXPECT_EQ(a.entries()[0].rule, "R1");
  EXPECT_EQ(a.entries()[0].path, "src/x.cpp");
  EXPECT_EQ(a.entries()[0].reason, "reason here");
}

TEST(LintReport, JsonlFindingsAndSummaryParse) {
  const auto all =
      lint_source("src/core/worker.cpp",
                  "std::thread t;\n"
                  "std::mutex mu;  // dbk-lint: allow(R1): test fixture\n",
                  empty_allow());
  ASSERT_EQ(all.size(), 2U);
  const std::string report = dbk_lint::report_jsonl(all, 1);
  std::vector<std::string> lines;
  std::istringstream is(report);
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3U);

  const auto first = dropback::obs::parse_flat_object(lines[0]);
  EXPECT_EQ(first.at("rule").string, "R1");
  EXPECT_EQ(first.at("file").string, "src/core/worker.cpp");
  EXPECT_EQ(first.at("line").number, 1.0);
  EXPECT_FALSE(first.at("suppressed").boolean);

  const auto second = dropback::obs::parse_flat_object(lines[1]);
  EXPECT_TRUE(second.at("suppressed").boolean);
  EXPECT_NE(second.at("reason").string.find("test fixture"),
            std::string::npos);

  const auto summary = dropback::obs::parse_flat_object(lines[2]);
  EXPECT_EQ(summary.at("type").string, "summary");
  EXPECT_EQ(summary.at("files").number, 1.0);
  EXPECT_EQ(summary.at("findings").number, 2.0);
  EXPECT_EQ(summary.at("suppressed").number, 1.0);
  EXPECT_EQ(summary.at("unsuppressed").number, 1.0);
  EXPECT_EQ(dbk_lint::unsuppressed_count(all), 1);
}

// ---------------------------------------------------------------------------
// Include extraction edge cases (phase one feeding the R11 graph)
// ---------------------------------------------------------------------------

TEST(LintIncludeExtract, ConditionalBranchesBothMakeEdges) {
  const std::string src =
      "#ifdef DROPBACK_USE_A\n"
      "#include \"core/a.hpp\"\n"
      "#else\n"
      "#include \"core/b.hpp\"\n"
      "#endif\n";
  const auto model = dbk_lint::analyze_source("src/train/cfg.cpp", src);
  ASSERT_EQ(model.includes.size(), 2U);
  EXPECT_EQ(model.includes[0].target, "core/a.hpp");
  EXPECT_EQ(model.includes[0].line, 2);
  EXPECT_EQ(model.includes[1].target, "core/b.hpp");
  EXPECT_EQ(model.includes[1].line, 4);
}

TEST(LintIncludeExtract, DirectivesInStringsAndCommentsAreInvisible) {
  const std::string src =
      "const char* doc = R\"(#include \"fake/x.hpp\")\";\n"
      "// #include \"fake/y.hpp\"\n"
      "/* #include \"fake/z.hpp\" */\n"
      "#include \"core/real.hpp\"\n";
  const auto model = dbk_lint::analyze_source("src/train/gen.cpp", src);
  ASSERT_EQ(model.includes.size(), 1U);
  EXPECT_EQ(model.includes[0].target, "core/real.hpp");
  EXPECT_EQ(model.includes[0].line, 4);
}

TEST(LintIncludeExtract, AngleIncludesMakeNoEdges) {
  const auto model = dbk_lint::analyze_source(
      "src/core/sys.cpp", "#include <vector>\n#include <unordered_map>\n");
  EXPECT_TRUE(model.includes.empty());
}

TEST(LintIncludeExtract, SameBasenameResolvesNearestDirectoryFirst) {
  // Two config.hpp headers in different subsystems plus one at the src/
  // root: the bare-name include from serve/ must land on serve's own.
  std::vector<dbk_lint::SourceFile> files = {
      {"src/config.hpp", "#pragma once\n"},
      {"src/serve/config.hpp", "#pragma once\n"},
      {"src/tensor/config.hpp", "#pragma once\n"},
      {"src/serve/server.cpp", "#include \"config.hpp\"\n"},
      {"src/train/loop.cpp", "#include \"config.hpp\"\n"},
  };
  std::vector<dbk_lint::FileModel> models;
  for (const auto& f : files) {
    models.push_back(dbk_lint::analyze_source(f.relpath, f.content));
  }
  const auto graph = dbk_lint::IncludeGraph::build(models);
  EXPECT_EQ(graph.targets_of("src/serve/server.cpp"),
            std::set<std::string>{"src/serve/config.hpp"});
  // train/ has no local config.hpp, so the src/ include root wins.
  EXPECT_EQ(graph.targets_of("src/train/loop.cpp"),
            std::set<std::string>{"src/config.hpp"});
}

// ---------------------------------------------------------------------------
// R11: include-graph layering contract
// ---------------------------------------------------------------------------

dbk_lint::LintResult run_tree(const std::vector<dbk_lint::SourceFile>& files,
                              const Allowlist& allow,
                              dbk_lint::LintOptions opts = {}) {
  return dbk_lint::lint_files(files, allow, opts);
}

TEST(LintR11, UpwardEdgeFires) {
  const auto result = run_tree(
      {{"src/core/thing.hpp", "#pragma once\n"},
       {"src/util/helper.cpp", "#include \"core/thing.hpp\"\n"}},
      empty_allow());
  const auto r11 = findings_for(result.findings, "R11");
  ASSERT_EQ(r11.size(), 1U);
  EXPECT_EQ(r11[0].file, "src/util/helper.cpp");
  EXPECT_EQ(r11[0].line, 1);
  EXPECT_FALSE(r11[0].suppressed);
  EXPECT_NE(r11[0].message.find("upward include edge"), std::string::npos);
  EXPECT_NE(r11[0].message.find("'util' (layer 0)"), std::string::npos);
  EXPECT_NE(r11[0].message.find("'core' (layer 2)"), std::string::npos);
}

TEST(LintR11, DownwardAndSameLayerEdgesAreLegal) {
  const auto result = run_tree(
      {{"src/util/base.hpp", "#pragma once\n"},
       {"src/core/opt.hpp", "#include \"util/base.hpp\"\n"},
       {"src/optim/sched.hpp", "#include \"core/opt.hpp\"\n"},
       {"src/train/loop.cpp",
        "#include \"core/opt.hpp\"\n#include \"optim/sched.hpp\"\n"}},
      empty_allow());
  EXPECT_TRUE(findings_for(result.findings, "R11").empty());
}

TEST(LintR11, FileLevelIncludeCycleDetected) {
  const auto result = run_tree(
      {{"src/core/a.hpp", "#include \"core/b.hpp\"\n"},
       {"src/core/b.hpp", "#include \"core/a.hpp\"\n"}},
      empty_allow());
  const auto r11 = findings_for(result.findings, "R11");
  ASSERT_EQ(r11.size(), 1U);
  EXPECT_NE(r11[0].message.find("#include cycle"), std::string::npos);
  EXPECT_NE(r11[0].message.find("src/core/a.hpp"), std::string::npos);
  EXPECT_NE(r11[0].message.find("src/core/b.hpp"), std::string::npos);
}

TEST(LintR11, SubsystemCycleReportsShortestPath) {
  const auto result = run_tree(
      {{"src/data/loader.hpp", "#include \"train/hooks.hpp\"\n"},
       {"src/train/hooks.hpp", "#pragma once\n"},
       {"src/train/loop.cpp", "#include \"data/loader.hpp\"\n"}},
      empty_allow());
  const auto r11 = findings_for(result.findings, "R11");
  ASSERT_EQ(r11.size(), 1U);
  EXPECT_NE(r11[0].message.find("subsystem include cycle"),
            std::string::npos);
  EXPECT_NE(r11[0].message.find("data"), std::string::npos);
  EXPECT_NE(r11[0].message.find("train"), std::string::npos);
}

TEST(LintR11, SimdReachableOnlyThroughFacade) {
  const auto result = run_tree(
      {{"src/simd/vec.hpp", "#pragma once\n"},
       {"src/simd/kernels.hpp", "#pragma once\n"},
       {"src/nn/conv.cpp",
        "#include \"simd/kernels.hpp\"\n#include \"simd/vec.hpp\"\n"}},
      empty_allow());
  const auto r11 = findings_for(result.findings, "R11");
  ASSERT_EQ(r11.size(), 1U);
  EXPECT_EQ(r11[0].file, "src/nn/conv.cpp");
  EXPECT_EQ(r11[0].line, 2);
  EXPECT_NE(r11[0].message.find("simd backend internal"), std::string::npos);
}

TEST(LintR11, ObsIncludableFromAnywhereButIncludesOnlyUtil) {
  const auto result = run_tree(
      {{"src/obs/metrics.hpp", "#include \"train/loop.hpp\"\n"},
       {"src/train/loop.hpp", "#pragma once\n"},
       {"src/train/loop.cpp", "#include \"obs/metrics.hpp\"\n"}},
      empty_allow());
  const auto r11 = findings_for(result.findings, "R11");
  ASSERT_EQ(r11.size(), 1U);
  EXPECT_EQ(r11[0].file, "src/obs/metrics.hpp");
  EXPECT_NE(r11[0].message.find("obs may include nothing above util"),
            std::string::npos);
}

TEST(LintR11, UndeclaredSubsystemIsAFinding) {
  const auto result = run_tree(
      {{"src/widgets/w.hpp", "#pragma once\n"},
       {"src/widgets/w.cpp", "#include \"widgets/w.hpp\"\n"}},
      empty_allow());
  const auto r11 = findings_for(result.findings, "R11");
  ASSERT_EQ(r11.size(), 1U);
  EXPECT_NE(r11[0].message.find("not in the declared layering contract"),
            std::string::npos);
}

TEST(LintR11, InlineAndAllowlistSuppress) {
  const std::vector<dbk_lint::SourceFile> files = {
      {"src/core/thing.hpp", "#pragma once\n"},
      {"src/util/inline_case.cpp",
       "#include \"core/thing.hpp\"  // dbk-lint: allow(R11): migration\n"},
      {"src/util/listed_case.cpp", "#include \"core/thing.hpp\"\n"}};
  const auto allow =
      parse_allow("R11 src/util/listed_case.cpp inversion tracked\n");
  const auto result = run_tree(files, allow);
  const auto r11 = findings_for(result.findings, "R11");
  ASSERT_EQ(r11.size(), 2U);
  EXPECT_TRUE(r11[0].suppressed);
  EXPECT_TRUE(r11[1].suppressed);
  EXPECT_EQ(dbk_lint::unsuppressed_count(result.findings), 0);
}

// ---------------------------------------------------------------------------
// R12: interprocedural determinism reachability
// ---------------------------------------------------------------------------

TEST(LintR12, MultiHopChainIsPrinted) {
  const auto result = run_tree(
      {{"src/train/ckpt.cpp", "void save_model() {\n  write_meta();\n}\n"},
       {"src/train/meta.cpp",
        "void write_meta() {\n  stamp_time();\n}\n"
        "void stamp_time() {\n  long t = time(nullptr);\n}\n"}},
      empty_allow());
  const auto r12 = findings_for(result.findings, "R12");
  ASSERT_EQ(r12.size(), 1U);
  EXPECT_EQ(r12[0].file, "src/train/ckpt.cpp");
  EXPECT_EQ(r12[0].line, 1);
  EXPECT_FALSE(r12[0].suppressed);
  // The full shortest chain, every hop located, down to the tainted token.
  EXPECT_NE(r12[0].message.find("serialization function 'save_model'"),
            std::string::npos);
  EXPECT_NE(r12[0].message.find("save_model (src/train/ckpt.cpp:1) -> "
                                "write_meta (src/train/meta.cpp:1) -> "
                                "stamp_time (src/train/meta.cpp:4)"),
            std::string::npos);
  EXPECT_NE(r12[0].message.find("'time(' at src/train/meta.cpp:5"),
            std::string::npos);
}

TEST(LintR12, KernelEntryPointsAreRoots) {
  const auto result = run_tree(
      {{"src/simd/kern.cpp", "void dot_product() {\n  seed_state();\n}\n"},
       {"src/core/seed.cpp",
        "void seed_state() {\n  int x = std::rand();\n}\n"}},
      empty_allow());
  const auto r12 = findings_for(result.findings, "R12");
  ASSERT_EQ(r12.size(), 1U);
  EXPECT_EQ(r12[0].file, "src/simd/kern.cpp");
  EXPECT_NE(r12[0].message.find("kernel entry point 'dot_product'"),
            std::string::npos);
}

TEST(LintR12, UnorderedIterationTaintPropagates) {
  const auto result = run_tree(
      {{"src/train/state.cpp", "void save_state() {\n  dump_keys();\n}\n"},
       {"src/core/dump.cpp",
        "void dump_keys(const std::unordered_map<int, int>& table) {\n"
        "  for (const auto& kv : table) {\n  }\n}\n"}},
      empty_allow());
  const auto r12 = findings_for(result.findings, "R12");
  ASSERT_EQ(r12.size(), 1U);
  EXPECT_NE(r12[0].message.find("unordered-container iteration"),
            std::string::npos);
  EXPECT_NE(r12[0].message.find("'table' at src/core/dump.cpp:2"),
            std::string::npos);
  // dump_keys is not serialization-named, so the lexical R4 stays silent —
  // only the whole-program pass can see this one.
  EXPECT_TRUE(findings_for(result.findings, "R4").empty());
}

TEST(LintR12, ReviewedSourceDoesNotPropagate) {
  const auto result = run_tree(
      {{"src/train/ckpt.cpp", "void save_model() {\n  stamp_time();\n}\n"},
       {"src/core/meta.cpp",
        "void stamp_time() {\n"
        "  long t = time(nullptr);  // dbk-lint: allow(R3): epoch stamp is "
        "metadata, not artifact bytes\n"
        "}\n"}},
      empty_allow());
  EXPECT_TRUE(findings_for(result.findings, "R12").empty());
  const auto r3 = findings_for(result.findings, "R3");
  ASSERT_EQ(r3.size(), 1U);
  EXPECT_TRUE(r3[0].suppressed);
}

TEST(LintR12, RootAllowlistSuppresses) {
  const auto allow = parse_allow(
      "R12 src/train/ckpt.cpp chain audited; rand feeds a debug counter\n");
  const auto result = run_tree(
      {{"src/train/ckpt.cpp", "void save_model() {\n  jitter();\n}\n"},
       {"src/core/jit.cpp", "void jitter() {\n  int x = std::rand();\n}\n"}},
      allow);
  const auto r12 = findings_for(result.findings, "R12");
  ASSERT_EQ(r12.size(), 1U);
  EXPECT_TRUE(r12[0].suppressed);
  EXPECT_NE(r12[0].suppress_reason.find("chain audited"), std::string::npos);
}

TEST(LintR12, RootsOwnLexicalTaintIsR3sBusiness) {
  const auto result = run_tree(
      {{"src/train/ckpt.cpp",
        "void save_model() {\n  int x = std::rand();\n}\n"}},
      empty_allow());
  EXPECT_TRUE(findings_for(result.findings, "R12").empty());
  EXPECT_EQ(findings_for(result.findings, "R3").size(), 1U);
}

// ---------------------------------------------------------------------------
// S1: stale-suppression audit
// ---------------------------------------------------------------------------

TEST(LintS1, StaleInlineDirectiveWarns) {
  dbk_lint::LintOptions opts;
  opts.audit_suppressions = true;
  const auto result = run_tree(
      {{"src/core/x.cpp",
        "// dbk-lint: allow(R1): grant that matches nothing\n"
        "int answer() { return 42; }\n"}},
      empty_allow(), opts);
  const auto s1 = findings_for(result.findings, "S1");
  ASSERT_EQ(s1.size(), 1U);
  EXPECT_EQ(s1[0].file, "src/core/x.cpp");
  EXPECT_EQ(s1[0].line, 1);
  EXPECT_TRUE(s1[0].warning);
  EXPECT_NE(s1[0].message.find("stale inline suppression allow(R1)"),
            std::string::npos);
  // Warnings never fail the run.
  EXPECT_EQ(dbk_lint::unsuppressed_count(result.findings), 0);
}

TEST(LintS1, StaleAllowlistEntryWarnsAtItsOwnLine) {
  dbk_lint::LintOptions opts;
  opts.audit_suppressions = true;
  const auto allow = parse_allow(
      "# header comment\n"
      "R1 src/core/gone.cpp mutex grant for a deleted file\n");
  const auto result =
      run_tree({{"src/core/x.cpp", "int answer() { return 42; }\n"}}, allow,
               opts);
  const auto s1 = findings_for(result.findings, "S1");
  ASSERT_EQ(s1.size(), 1U);
  EXPECT_EQ(s1[0].file, "tools/dbk_lint.rules");
  EXPECT_EQ(s1[0].line, 2);
  EXPECT_NE(s1[0].message.find("R1 src/core/gone.cpp"), std::string::npos);
}

TEST(LintS1, StrictModeUpgradesToError) {
  dbk_lint::LintOptions opts;
  opts.audit_suppressions = true;
  opts.strict_suppressions = true;
  const auto result = run_tree(
      {{"src/core/x.cpp",
        "// dbk-lint: allow(R1): grant that matches nothing\n"
        "int answer() { return 42; }\n"}},
      empty_allow(), opts);
  const auto s1 = findings_for(result.findings, "S1");
  ASSERT_EQ(s1.size(), 1U);
  EXPECT_FALSE(s1[0].warning);
  EXPECT_EQ(dbk_lint::unsuppressed_count(result.findings), 1);
}

TEST(LintS1, UsedGrantsAreNotFlagged) {
  dbk_lint::LintOptions opts;
  opts.audit_suppressions = true;
  const auto allow = parse_allow("R1 src/core/pool.cpp private registry\n");
  const auto result = run_tree(
      {{"src/core/pool.cpp", "void f() {\n  std::mutex mu;\n}\n"},
       {"src/core/y.cpp",
        "void g() {\n"
        "  std::thread t;  // dbk-lint: allow(R1): attack fixture\n"
        "}\n"}},
      allow, opts);
  EXPECT_TRUE(findings_for(result.findings, "S1").empty());
  EXPECT_EQ(dbk_lint::unsuppressed_count(result.findings), 0);
}

// ---------------------------------------------------------------------------
// Baseline mode
// ---------------------------------------------------------------------------

TEST(LintBaseline, DemotesByRuleFileMessageLineInsensitive) {
  const std::string before = "void f() {\n  std::thread t;\n}\n";
  const auto allow = empty_allow();
  const auto first = run_tree({{"src/core/w.cpp", before}}, allow);
  ASSERT_EQ(dbk_lint::unsuppressed_count(first.findings), 1);
  const std::string baseline =
      dbk_lint::report_jsonl(first.findings, first.files_linted);

  // Same violation, shifted two lines — the baseline still matches.
  const std::string after = "\n\nvoid f() {\n  std::thread t;\n}\n";
  auto second = run_tree({{"src/core/w.cpp", after}}, allow);
  const int demoted =
      dbk_lint::apply_baseline(second.findings, baseline, "seed.jsonl");
  EXPECT_EQ(demoted, 1);
  EXPECT_EQ(dbk_lint::unsuppressed_count(second.findings), 0);
  const auto r1 = findings_for(second.findings, "R1");
  ASSERT_EQ(r1.size(), 1U);
  EXPECT_TRUE(r1[0].suppressed);
  EXPECT_EQ(r1[0].suppress_reason, "baseline: seed.jsonl");
}

TEST(LintBaseline, NewFindingsSurvive) {
  const auto first =
      run_tree({{"src/core/w.cpp", "void f() {\n  std::thread t;\n}\n"}},
               empty_allow());
  const std::string baseline =
      dbk_lint::report_jsonl(first.findings, first.files_linted);
  auto second = run_tree(
      {{"src/core/w.cpp",
        "void f() {\n  std::thread t;\n  std::mutex mu;\n}\n"}},
      empty_allow());
  dbk_lint::apply_baseline(second.findings, baseline, "seed.jsonl");
  // The thread finding is old, the mutex finding is new.
  EXPECT_EQ(dbk_lint::unsuppressed_count(second.findings), 1);
}

// ---------------------------------------------------------------------------
// --changed: neighborhood scoping
// ---------------------------------------------------------------------------

TEST(LintChanged, HeaderDiffScansDependentsNotStrangers) {
  dbk_lint::LintOptions opts;
  opts.changed_files = {"src/core/a.hpp"};
  const auto result = run_tree(
      {{"src/core/a.hpp", "#pragma once\nvoid core_helper();\n"},
       {"src/core/a.cpp",
        "#include \"core/a.hpp\"\nvoid core_helper() {}\n"},
       {"src/train/user.cpp",
        "#include \"core/a.hpp\"\nvoid run() {\n  std::thread t;\n}\n"},
       {"src/nn/far.cpp", "void far() {\n  std::thread t;\n}\n"}},
      empty_allow(), opts);
  // The dependent's finding is reported; the unrelated file's is not.
  ASSERT_EQ(findings_for(result.findings, "R1").size(), 1U);
  EXPECT_EQ(findings_for(result.findings, "R1")[0].file,
            "src/train/user.cpp");
  EXPECT_EQ(result.files_scanned, 4);
  EXPECT_EQ(result.files_linted, 3);
}

TEST(LintChanged, CallEdgePartnersJoinTheNeighborhood) {
  dbk_lint::LintOptions opts;
  opts.changed_files = {"src/core/a.cpp"};
  const auto result = run_tree(
      {{"src/core/a.cpp", "void core_helper() {}\n"},
       {"src/optim/caller.cpp",
        "void step_opt() {\n  core_helper();\n  std::mutex mu;\n}\n"},
       {"src/nn/far.cpp", "void far() {\n  std::thread t;\n}\n"}},
      empty_allow(), opts);
  const auto r1 = findings_for(result.findings, "R1");
  ASSERT_EQ(r1.size(), 1U);
  EXPECT_EQ(r1[0].file, "src/optim/caller.cpp");
  EXPECT_EQ(result.files_linted, 2);
}

TEST(LintChanged, StalenessAuditIsDisabledWhenScoped) {
  dbk_lint::LintOptions opts;
  opts.audit_suppressions = true;
  opts.changed_files = {"src/core/x.cpp"};
  const auto allow = parse_allow("R1 src/serve/elsewhere.cpp queue lock\n");
  const auto result =
      run_tree({{"src/core/x.cpp", "int answer() { return 42; }\n"}}, allow,
               opts);
  EXPECT_TRUE(findings_for(result.findings, "S1").empty());
}

// ---------------------------------------------------------------------------
// SARIF output
// ---------------------------------------------------------------------------

std::vector<Finding> sarif_fixture_findings() {
  std::vector<Finding> fs;
  Finding a;
  a.rule = "R3";
  a.file = "src/core/x.cpp";
  a.line = 3;
  a.message = "nondeterminism source (std::rand)";
  fs.push_back(a);
  Finding b;
  b.rule = "R1";
  b.file = "src/serve/y.cpp";
  b.line = 7;
  b.message = "raw threading primitive std::mutex";
  b.suppressed = true;
  b.suppress_reason = "inline: slot registry lock";
  fs.push_back(b);
  Finding c;
  c.rule = "S1";
  c.file = "tools/dbk_lint.rules";
  c.line = 12;
  c.message = "stale allowlist entry";
  c.warning = true;
  fs.push_back(c);
  return fs;
}

TEST(LintSarif, GoldenBytes) {
  const std::string golden = R"gold({
  "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "dbk_lint",
          "informationUri": "docs/STATIC_ANALYSIS.md",
          "rules": [
            {"id": "R1", "shortDescription": {"text": "raw threading primitives outside util::ThreadPool"}},
            {"id": "R2", "shortDescription": {"text": "raw file writes bypassing util::atomic_write_file"}},
            {"id": "R3", "shortDescription": {"text": "ambient nondeterminism (wall clock / random_device / rand)"}},
            {"id": "R4", "shortDescription": {"text": "unordered-container iteration in serialization functions"}},
            {"id": "R5", "shortDescription": {"text": "floating-point ==/!= against literals outside tests"}},
            {"id": "R6", "shortDescription": {"text": "duplicate profile-scope labels / unregistered src .cpp"}},
            {"id": "R7", "shortDescription": {"text": "vendor SIMD intrinsics outside src/simd/"}},
            {"id": "R8", "shortDescription": {"text": "serving-layer thread discipline (detach / unbounded wait)"}},
            {"id": "R9", "shortDescription": {"text": "raw monotonic-clock reads outside util::ClockSource"}},
            {"id": "R10", "shortDescription": {"text": "tracked-set capacity mutation outside src/core/"}},
            {"id": "R11", "shortDescription": {"text": "include-graph layering contract violation"}},
            {"id": "R12", "shortDescription": {"text": "determinism taint reachable from serialization/kernel root"}},
            {"id": "S1", "shortDescription": {"text": "stale suppression (matched no finding)"}}
          ]
        }
      },
      "results": [
        {
          "ruleId": "R3",
          "level": "error",
          "message": {"text": "nondeterminism source (std::rand)"},
          "locations": [{"physicalLocation": {"artifactLocation": {"uri": "src/core/x.cpp"}, "region": {"startLine": 3}}}]
        },
        {
          "ruleId": "R1",
          "level": "error",
          "message": {"text": "raw threading primitive std::mutex"},
          "locations": [{"physicalLocation": {"artifactLocation": {"uri": "src/serve/y.cpp"}, "region": {"startLine": 7}}}],
          "suppressions": [{"kind": "inSource", "justification": "inline: slot registry lock"}]
        },
        {
          "ruleId": "S1",
          "level": "warning",
          "message": {"text": "stale allowlist entry"},
          "locations": [{"physicalLocation": {"artifactLocation": {"uri": "tools/dbk_lint.rules"}, "region": {"startLine": 12}}}]
        }
      ]
    }
  ]
}
)gold";
  EXPECT_EQ(dbk_lint::sarif_report(sarif_fixture_findings()), golden);
}

TEST(LintSarif, RoundTripVerifies) {
  const auto findings = sarif_fixture_findings();
  const std::string sarif = dbk_lint::sarif_report(findings);
  const auto v = dbk_lint::verify_sarif(sarif, findings);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.expected, v.emitted);
  EXPECT_EQ(v.emitted.at("R3"), 1);
}

TEST(LintSarif, EmptyFindingsStillValidate) {
  const std::vector<Finding> none;
  const auto v = dbk_lint::verify_sarif(dbk_lint::sarif_report(none), none);
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(LintSarif, TamperedCountsFailVerificationWithPerRuleCounts) {
  const auto findings = sarif_fixture_findings();
  std::string sarif = dbk_lint::sarif_report(findings);
  // A serializer bug that swaps a rule id: counts no longer match.
  const std::string from = "\"ruleId\": \"R3\"";
  const std::string to = "\"ruleId\": \"R4\"";
  sarif.replace(sarif.find(from), from.size(), to);
  const auto v = dbk_lint::verify_sarif(sarif, findings);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.expected.at("R3"), 1);
  EXPECT_EQ(v.emitted.count("R3"), 0U);
  EXPECT_EQ(v.emitted.at("R4"), 1);
}

TEST(LintSarif, TruncatedDocumentFailsVerification) {
  const auto findings = sarif_fixture_findings();
  const std::string sarif = dbk_lint::sarif_report(findings);
  const auto v =
      dbk_lint::verify_sarif(sarif.substr(0, sarif.size() / 2), findings);
  EXPECT_FALSE(v.ok);
  EXPECT_FALSE(v.error.empty());
}

TEST(LintSarif, WrongToolNameFailsVerification) {
  const auto findings = sarif_fixture_findings();
  std::string sarif = dbk_lint::sarif_report(findings);
  const std::string from = "\"name\": \"dbk_lint\"";
  const std::string to = "\"name\": \"other_tool\"";
  sarif.replace(sarif.find(from), from.size(), to);
  const auto v = dbk_lint::verify_sarif(sarif, findings);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("dbk_lint"), std::string::npos);
}

}  // namespace
