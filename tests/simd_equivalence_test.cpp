// Cross-target SIMD conformance suite (docs/SIMD.md).
//
// The determinism contract: every dispatch target's kernel table is bitwise
// identical to the scalar reference, for every input shape (tails included)
// and every thread count. This suite is parameterized over
// (target x thread count) — every runtime-available target from
// simd::available_targets() at 1/2/7 threads — and checks two layers:
//
//   1. the kernel tables directly, against simd::kScalarKernels, over a
//      size sweep that hits sub-lane sizes, exact vector multiples, and
//      ragged tails for every lane width (4/8/16);
//   2. the wired hot paths (matmul family, conv2d forward/backward,
//      InitSpec regeneration, score/apply sweeps, top-k selection), against
//      a scalar @ 1-thread reference.
//
// Comparison is memcmp, never EXPECT_FLOAT_EQ: a single reassociated add
// or contracted FMA in any backend fails.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "core/accumulated_gradients.hpp"
#include "core/dropback_optimizer.hpp"
#include "core/tracked_set.hpp"
#include "nn/linear.hpp"
#include "nn/models/lenet.hpp"
#include "nn/sequential.hpp"
#include "rng/init_spec.hpp"
#include "rng/xorshift.hpp"
#include "simd/dispatch.hpp"
#include "tensor/conv.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "util/thread_pool.hpp"

namespace dropback {
namespace {

namespace T = dropback::tensor;
using simd::Cmp;
using simd::Kernels;
using simd::RegenSpec;
using simd::Target;

/// Sizes that exercise sub-lane, exact-multiple, and ragged-tail paths for
/// every lane width in the tree (4, 8, 16) plus the 256-wide regen block.
const std::int64_t kSizes[] = {0,  1,  3,   4,   5,   7,   8,    9,   15,
                               16, 17, 31,  32,  33,  63,  64,   65,  67,
                               100, 255, 256, 257, 511, 513, 1000, 4099};

/// First-index values for the counter-based regen kernels: zero, small,
/// unaligned, and beyond 2^32 (the index math is 64-bit).
const std::uint64_t kFirsts[] = {0ULL, 1ULL, 17ULL, 1000000ULL,
                                 (1ULL << 40) + 5ULL};

std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  std::vector<float> out(n);
  rng::Xorshift128 rng(seed);
  for (auto& v : out) v = rng.uniform(-2.0F, 2.0F);
  return out;
}

::testing::AssertionResult bitwise_equal(const std::vector<float>& a,
                                         const std::vector<float>& b,
                                         const std::string& what) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << what << ": size mismatch";
  }
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a[i], &b[i], sizeof(float)) != 0) {
        return ::testing::AssertionFailure()
               << what << ": first bit difference at index " << i << ": "
               << a[i] << " vs " << b[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult tensors_equal(const T::Tensor& a,
                                         const T::Tensor& b,
                                         const std::string& what) {
  if (a.numel() != b.numel()) {
    return ::testing::AssertionFailure() << what << ": numel mismatch";
  }
  if (a.numel() > 0 &&
      std::memcmp(a.data(), b.data(),
                  static_cast<std::size_t>(a.numel()) * sizeof(float)) != 0) {
    return ::testing::AssertionFailure() << what << ": bit difference";
  }
  return ::testing::AssertionSuccess();
}

/// (target, threads) conformance fixture. Restores scalar-free defaults —
/// best target, 1 thread — so test order never leaks state.
class SimdConformanceTest
    : public ::testing::TestWithParam<std::tuple<Target, int>> {
 protected:
  void SetUp() override {
    target_ = std::get<0>(GetParam());
    threads_ = std::get<1>(GetParam());
    util::set_num_threads(threads_);
    simd::set_target(target_);
  }
  void TearDown() override {
    simd::set_target(simd::best_target());
    util::set_num_threads(1);
  }

  const Kernels& k() const { return simd::kernels_for(target_); }
  const Kernels& ref() const { return simd::kScalarKernels; }

  /// Runs `fn` under scalar dispatch at 1 thread (the reference config),
  /// then restores this test's (target, threads).
  template <typename Fn>
  void as_reference(Fn&& fn) {
    simd::set_target(Target::kScalar);
    util::set_num_threads(1);
    fn();
    util::set_num_threads(threads_);
    simd::set_target(target_);
  }

  Target target_ = Target::kScalar;
  int threads_ = 1;
};

// --- layer 1: kernel tables vs the scalar reference ----------------------

TEST_P(SimdConformanceTest, AxpyFamilyBitwiseEqual) {
  for (std::int64_t n : kSizes) {
    const auto src0 = random_floats(static_cast<std::size_t>(n), 11);
    const auto src1 = random_floats(static_cast<std::size_t>(n), 12);
    const auto base = random_floats(static_cast<std::size_t>(n), 13);

    auto got = base, want = base;
    k().axpy(got.data(), src0.data(), 0.37F, n);
    ref().axpy(want.data(), src0.data(), 0.37F, n);
    EXPECT_TRUE(bitwise_equal(got, want, "axpy n=" + std::to_string(n)));

    got = base;
    want = base;
    k().axpy2(got.data(), src0.data(), 0.37F, src1.data(), -1.25F, n);
    ref().axpy2(want.data(), src0.data(), 0.37F, src1.data(), -1.25F, n);
    EXPECT_TRUE(bitwise_equal(got, want, "axpy2 n=" + std::to_string(n)));

    got.assign(static_cast<std::size_t>(n), 0.0F);
    want.assign(static_cast<std::size_t>(n), 0.0F);
    k().copy(got.data(), src0.data(), n);
    ref().copy(want.data(), src0.data(), n);
    EXPECT_TRUE(bitwise_equal(got, want, "copy n=" + std::to_string(n)));

    k().fill(got.data(), -7.5F, n);
    ref().fill(want.data(), -7.5F, n);
    EXPECT_TRUE(bitwise_equal(got, want, "fill n=" + std::to_string(n)));
  }
}

TEST_P(SimdConformanceTest, GemmMicrokernelBitwiseEqual) {
  for (std::int64_t kdim : {1LL, 2LL, 7LL, 8LL, 33LL, 128LL}) {
    for (std::int64_t jblocks : {0LL, 1LL, 3LL, 16LL}) {
      const auto arow = random_floats(static_cast<std::size_t>(kdim), 21);
      const auto packed = random_floats(
          static_cast<std::size_t>(jblocks * simd::kPackWidth * kdim), 22);
      std::vector<float> got(
          static_cast<std::size_t>(jblocks * simd::kPackWidth), 0.0F);
      auto want = got;
      k().gemm_nt_packed(arow.data(), packed.data(), kdim, jblocks,
                         got.data());
      ref().gemm_nt_packed(arow.data(), packed.data(), kdim, jblocks,
                           want.data());
      EXPECT_TRUE(bitwise_equal(got, want,
                                "gemm_nt_packed k=" + std::to_string(kdim) +
                                    " jb=" + std::to_string(jblocks)));
      if (kdim > 0) {
        const auto brow = random_floats(static_cast<std::size_t>(kdim), 23);
        const float a = k().dot_nt(arow.data(), brow.data(), kdim);
        const float b = ref().dot_nt(arow.data(), brow.data(), kdim);
        EXPECT_EQ(std::memcmp(&a, &b, sizeof(float)), 0)
            << "dot_nt k=" << kdim;
      }
    }
  }
}

TEST_P(SimdConformanceTest, RegenBitwiseEqual) {
  for (std::uint64_t seed : {0ULL, 42ULL, 0xDEADBEEFULL}) {
    for (std::uint64_t first : kFirsts) {
      for (std::int64_t n : kSizes) {
        std::vector<std::uint32_t> got_u(static_cast<std::size_t>(n));
        std::vector<std::uint32_t> want_u(static_cast<std::size_t>(n));
        k().regen_u32(seed, first, n, got_u.data());
        ref().regen_u32(seed, first, n, want_u.data());
        EXPECT_EQ(got_u, want_u)
            << "regen_u32 seed=" << seed << " first=" << first << " n=" << n;

        const RegenSpec normal{1, 0.05F, seed};
        std::vector<float> got(static_cast<std::size_t>(n));
        std::vector<float> want(static_cast<std::size_t>(n));
        k().regen_fill(normal, first, n, got.data());
        ref().regen_fill(normal, first, n, want.data());
        EXPECT_TRUE(bitwise_equal(
            got, want, "regen_fill seed=" + std::to_string(seed) +
                           " first=" + std::to_string(first) +
                           " n=" + std::to_string(n)));
      }
    }
  }
  // Constant specs too (the BN-gamma/bias regeneration path).
  const RegenSpec constant{0, 1.0F, 0};
  std::vector<float> got(513), want(513);
  k().regen_fill(constant, 9, 513, got.data());
  ref().regen_fill(constant, 9, 513, want.data());
  EXPECT_TRUE(bitwise_equal(got, want, "regen_fill constant"));
}

TEST_P(SimdConformanceTest, ScoreAndApplyBitwiseEqual) {
  for (const RegenSpec spec :
       {RegenSpec{1, 0.05F, 7ULL}, RegenSpec{0, 1.0F, 0ULL}}) {
    for (std::uint64_t first : {0ULL, 33ULL, (1ULL << 40) + 5ULL}) {
      for (std::int64_t n : kSizes) {
        const auto w = random_floats(static_cast<std::size_t>(n), 31);
        const auto g = random_floats(static_cast<std::size_t>(n), 32);
        std::vector<std::uint8_t> mask(static_cast<std::size_t>(n));
        rng::Xorshift128 mrng(33);
        for (auto& m : mask) m = (mrng.next_u32() & 3U) == 0U ? 1U : 0U;

        std::vector<float> got(static_cast<std::size_t>(n));
        std::vector<float> want(static_cast<std::size_t>(n));
        for (const float* grad : {g.data(), static_cast<const float*>(
                                                nullptr)}) {
          k().score(w.data(), grad, 0.1F, spec, first, n, got.data());
          ref().score(w.data(), grad, 0.1F, spec, first, n, want.data());
          EXPECT_TRUE(bitwise_equal(
              got, want, "score n=" + std::to_string(n) + " kind=" +
                             std::to_string(spec.kind) +
                             (grad == nullptr ? " nograd" : "")));

          for (bool regen : {true, false}) {
            auto got_w = w;
            auto want_w = w;
            const std::int64_t got_tracked =
                k().apply_masked(got_w.data(), grad, mask.data(), 0.1F, spec,
                                 regen, first, n);
            const std::int64_t want_tracked =
                ref().apply_masked(want_w.data(), grad, mask.data(), 0.1F,
                                   spec, regen, first, n);
            EXPECT_EQ(got_tracked, want_tracked)
                << "apply_masked tracked n=" << n;
            EXPECT_TRUE(bitwise_equal(
                got_w, want_w,
                "apply_masked n=" + std::to_string(n) + " kind=" +
                    std::to_string(spec.kind) +
                    (regen ? " regen" : " zero") +
                    (grad == nullptr ? " nograd" : "")));
          }
        }
      }
    }
  }
}

TEST_P(SimdConformanceTest, TopkPrepassBitwiseEqual) {
  for (std::int64_t n : kSizes) {
    // Tie-heavy scores: each one of 4 values, so kEq/kGe find many hits.
    std::vector<float> s(static_cast<std::size_t>(n));
    rng::Xorshift128 rng(41);
    for (auto& v : s) v = 0.25F * static_cast<float>(rng.next_u32() % 4);
    for (Cmp cmp : {Cmp::kGt, Cmp::kGe, Cmp::kEq}) {
      EXPECT_EQ(k().count_cmp(s.data(), n, 0.5F, cmp),
                ref().count_cmp(s.data(), n, 0.5F, cmp))
          << "count_cmp n=" << n;
      for (std::int64_t max_out : {std::int64_t{0}, std::int64_t{3}, n,
                                   n + 5}) {
        std::vector<std::int64_t> got(static_cast<std::size_t>(
            std::max<std::int64_t>(max_out, 1)));
        auto want = got;
        const std::int64_t got_n =
            k().compact_cmp(s.data(), n, 0.5F, cmp, 1000, max_out,
                            got.data());
        const std::int64_t want_n =
            ref().compact_cmp(s.data(), n, 0.5F, cmp, 1000, max_out,
                              want.data());
        ASSERT_EQ(got_n, want_n) << "compact_cmp count n=" << n;
        got.resize(static_cast<std::size_t>(got_n));
        want.resize(static_cast<std::size_t>(want_n));
        EXPECT_EQ(got, want) << "compact_cmp indices n=" << n;
      }
    }
  }
}

// --- layer 2: wired hot paths vs scalar @ 1 thread ------------------------

TEST_P(SimdConformanceTest, WiredMatmulFamily) {
  const std::vector<std::array<std::int64_t, 3>> shapes = {
      {1, 1, 1}, {1, 5, 3}, {17, 13, 29}, {64, 64, 64}, {33, 129, 65},
  };
  for (const auto& [m, kdim, n] : shapes) {
    T::Tensor a({m, kdim}), b({kdim, n});
    rng::Xorshift128 rng(51);
    for (std::int64_t i = 0; i < a.numel(); ++i) a[i] = rng.uniform(-2, 2);
    for (std::int64_t i = 0; i < b.numel(); ++i) b[i] = rng.uniform(-2, 2);
    const T::Tensor bt = T::transpose2d(b);
    const T::Tensor at = T::transpose2d(a);

    T::Tensor want, want_nt, want_tn;
    as_reference([&] {
      want = T::matmul(a, b);
      want_nt = T::matmul_nt(a, bt);
      want_tn = T::matmul_tn(at, b);
    });
    const std::string tag = std::to_string(m) + "x" + std::to_string(kdim) +
                            "x" + std::to_string(n);
    EXPECT_TRUE(tensors_equal(T::matmul(a, b), want, "matmul " + tag));
    EXPECT_TRUE(
        tensors_equal(T::matmul_nt(a, bt), want_nt, "matmul_nt " + tag));
    EXPECT_TRUE(
        tensors_equal(T::matmul_tn(at, b), want_tn, "matmul_tn " + tag));
  }
}

TEST_P(SimdConformanceTest, WiredConv2d) {
  T::Tensor x({3, 5, 9, 9}), w({4, 5, 3, 3}), b({4});
  rng::Xorshift128 rng(52);
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-2, 2);
  for (std::int64_t i = 0; i < w.numel(); ++i) w[i] = rng.uniform(-2, 2);
  for (std::int64_t i = 0; i < b.numel(); ++i) b[i] = rng.uniform(-2, 2);
  const T::Conv2dSpec spec{3, 3, 2, 1};

  T::Tensor want_y;
  T::Conv2dGrads want_g;
  T::Tensor gy;
  as_reference([&] {
    want_y = T::conv2d(x, w, b, spec);
    gy = T::Tensor(want_y.shape());
    for (std::int64_t i = 0; i < gy.numel(); ++i) gy[i] = rng.uniform(-1, 1);
    want_g = T::conv2d_backward(x, w, gy, spec, true);
  });

  EXPECT_TRUE(tensors_equal(T::conv2d(x, w, b, spec), want_y, "conv2d fwd"));
  const T::Conv2dGrads got = T::conv2d_backward(x, w, gy, spec, true);
  EXPECT_TRUE(tensors_equal(got.grad_weight, want_g.grad_weight, "conv dW"));
  EXPECT_TRUE(tensors_equal(got.grad_input, want_g.grad_input, "conv dX"));
  EXPECT_TRUE(tensors_equal(got.grad_bias, want_g.grad_bias, "conv db"));
}

TEST_P(SimdConformanceTest, WiredInitSpecFill) {
  const auto spec = rng::InitSpec::lecun(784, 7);
  for (std::int64_t n : {1LL, 65LL, 4099LL}) {
    std::vector<float> want(static_cast<std::size_t>(n));
    as_reference([&] { spec.fill(want.data(), want.size()); });
    std::vector<float> got(static_cast<std::size_t>(n));
    spec.fill(got.data(), got.size());
    EXPECT_TRUE(bitwise_equal(got, want, "InitSpec::fill n=" +
                                             std::to_string(n)));
    // fill_range must agree with per-index value_at at any offset.
    std::vector<float> ranged(static_cast<std::size_t>(n));
    spec.fill_range((1ULL << 33) + 11, ranged.data(), ranged.size());
    for (std::size_t i = 0; i < ranged.size(); ++i) {
      const float want_v = spec.value_at((1ULL << 33) + 11 + i);
      ASSERT_EQ(std::memcmp(&ranged[i], &want_v, sizeof(float)), 0)
          << "fill_range index " << i;
    }
  }
}

TEST_P(SimdConformanceTest, WiredScoreSelectApply) {
  // Whole-optimizer wiring: compute_scores + TrackedSet::select +
  // apply_update_and_mask over the paper MLP, 3 steps.
  const auto run = [] {
    auto model = nn::models::make_mnist_100_100(7);
    auto params = model->collect_parameters();
    core::DropBackConfig config;
    config.budget = 20000;
    core::DropBackOptimizer opt(params, 0.1F, config);
    rng::Xorshift128 rng(42);
    for (int s = 0; s < 3; ++s) {
      for (auto* p : params) {
        float* g = p->var.grad().data();
        for (std::int64_t i = 0; i < p->numel(); ++i) {
          g[i] = rng.uniform(-1, 1);
        }
      }
      opt.step();
    }
    std::vector<float> weights;
    for (auto* p : params) {
      const float* w = p->var.value().data();
      weights.insert(weights.end(), w, w + p->numel());
    }
    return weights;
  };
  std::vector<float> want;
  as_reference([&] { want = run(); });
  EXPECT_TRUE(bitwise_equal(run(), want, "DropBack trajectory"));
}

TEST_P(SimdConformanceTest, WiredTieHeavySelect) {
  nn::Sequential net;
  net.emplace<nn::Linear>(400, 500, 1);
  core::ParamIndex index(net.collect_parameters());
  rng::Xorshift128 rng(61);
  std::vector<float> scores(static_cast<std::size_t>(index.total()));
  for (auto& s : scores) s = 0.25F * static_cast<float>(rng.next_u32() % 4);

  const auto masks_of = [&](core::TrackedSet& set) {
    std::vector<std::uint8_t> flat;
    for (std::size_t p = 0; p < index.num_params(); ++p) {
      const std::uint8_t* m = set.mask_of(p);
      flat.insert(flat.end(), m, m + index.param(p).numel());
    }
    return flat;
  };

  for (std::int64_t kbudget : {std::int64_t{1}, std::int64_t{5000},
                               std::int64_t{123457}}) {
    std::vector<std::uint8_t> want;
    float want_lambda = 0.0F;
    as_reference([&] {
      core::TrackedSet set(index);
      set.select(scores, kbudget, core::SelectionStrategy::kFullSort);
      want = masks_of(set);
      want_lambda = set.last_lambda();
    });
    core::TrackedSet set(index);
    set.select(scores, kbudget, core::SelectionStrategy::kFullSort);
    EXPECT_EQ(masks_of(set), want) << "select k=" << kbudget;
    EXPECT_EQ(set.last_lambda(), want_lambda) << "lambda k=" << kbudget;
  }
}

std::string param_name(
    const ::testing::TestParamInfo<std::tuple<Target, int>>& info) {
  return std::string(simd::target_name(std::get<0>(info.param))) + "_t" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllTargets, SimdConformanceTest,
    ::testing::Combine(::testing::ValuesIn(simd::available_targets()),
                       ::testing::Values(1, 2, 7)),
    param_name);

}  // namespace
}  // namespace dropback
