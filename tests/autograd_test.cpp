#include "autograd/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/conv_ops.hpp"
#include "gradcheck.hpp"
#include "tensor/ops.hpp"

namespace dropback::autograd {
namespace {

namespace T = dropback::tensor;
using dropback::testing::expect_gradients_close;
using dropback::testing::random_tensor;

class AutogradTest : public ::testing::Test {
 protected:
  rng::Xorshift128 rng_{42};
};

TEST_F(AutogradTest, LeafWithoutGradFnHasNoTape) {
  Variable x(T::Tensor::ones({3}), /*requires_grad=*/false);
  Variable y = mul_scalar(x, 2.0F);
  EXPECT_EQ(y.grad_fn(), nullptr);
  EXPECT_FALSE(y.requires_grad());
}

TEST_F(AutogradTest, RequiresGradPropagates) {
  Variable x(T::Tensor::ones({3}), true);
  Variable y = mul_scalar(x, 2.0F);
  EXPECT_NE(y.grad_fn(), nullptr);
  EXPECT_TRUE(y.requires_grad());
}

TEST_F(AutogradTest, NoGradGuardSuppressesTape) {
  Variable x(T::Tensor::ones({3}), true);
  {
    NoGradGuard guard;
    Variable y = mul_scalar(x, 2.0F);
    EXPECT_EQ(y.grad_fn(), nullptr);
  }
  Variable z = mul_scalar(x, 2.0F);
  EXPECT_NE(z.grad_fn(), nullptr);
}

TEST_F(AutogradTest, BackwardRequiresScalar) {
  Variable x(T::Tensor::ones({3}), true);
  Variable y = mul_scalar(x, 2.0F);
  EXPECT_THROW(backward(y), std::invalid_argument);
}

TEST_F(AutogradTest, SimpleChainGradient) {
  Variable x(T::Tensor::from_vector({2}, {3.0F, -1.0F}), true);
  Variable loss = sum(mul_scalar(x, 4.0F));
  backward(loss);
  EXPECT_FLOAT_EQ(x.grad()[0], 4.0F);
  EXPECT_FLOAT_EQ(x.grad()[1], 4.0F);
}

TEST_F(AutogradTest, DiamondGraphAccumulatesBothPaths) {
  // y = sum(x*2) + sum(x*3): dx = 5 everywhere.
  Variable x(T::Tensor::ones({4}), true);
  Variable a = mul_scalar(x, 2.0F);
  Variable b = mul_scalar(x, 3.0F);
  Variable loss = add(sum(a), sum(b));
  backward(loss);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x.grad()[i], 5.0F);
}

TEST_F(AutogradTest, ReuseOfSameVariableTwiceInOneOp) {
  // loss = sum(x * x): dx = 2x.
  Variable x(T::Tensor::from_vector({3}, {1, 2, 3}), true);
  Variable loss = sum(mul(x, x));
  backward(loss);
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0F);
  EXPECT_FLOAT_EQ(x.grad()[1], 4.0F);
  EXPECT_FLOAT_EQ(x.grad()[2], 6.0F);
}

TEST_F(AutogradTest, GradCheckAddSubMul) {
  Variable a(random_tensor({2, 3}, rng_), true);
  Variable b(random_tensor({2, 3}, rng_), true);
  expect_gradients_close([&] { return sum(mul(add(a, b), sub(a, b))); },
                         {a, b});
}

TEST_F(AutogradTest, GradCheckScalarOps) {
  Variable a(random_tensor({5}, rng_), true);
  expect_gradients_close(
      [&] { return sum(add_scalar(mul_scalar(a, -1.7F), 0.3F)); }, {a});
}

TEST_F(AutogradTest, GradCheckRelu) {
  // Keep values away from the kink for stable finite differences.
  T::Tensor v = random_tensor({8}, rng_);
  for (std::int64_t i = 0; i < v.numel(); ++i) {
    if (std::fabs(v[i]) < 0.1F) v[i] = 0.5F;
  }
  Variable a(v, true);
  expect_gradients_close([&] { return sum(relu(a)); }, {a});
}

TEST_F(AutogradTest, GradCheckPrelu) {
  T::Tensor v = random_tensor({8}, rng_);
  for (std::int64_t i = 0; i < v.numel(); ++i) {
    if (std::fabs(v[i]) < 0.1F) v[i] = -0.5F;
  }
  Variable a(v, true);
  Variable slope(T::Tensor::from_vector({1}, {0.25F}), true);
  expect_gradients_close([&] { return sum(prelu(a, slope)); }, {a, slope});
}

TEST_F(AutogradTest, GradCheckSigmoidTanh) {
  Variable a(random_tensor({6}, rng_), true);
  expect_gradients_close([&] { return sum(sigmoid(a)); }, {a});
  expect_gradients_close([&] { return sum(tanh_op(a)); }, {a});
}

TEST_F(AutogradTest, GradCheckExpLogSqrt) {
  Variable a(random_tensor({6}, rng_, 0.5F, 2.0F), true);
  expect_gradients_close([&] { return sum(exp_op(a)); }, {a});
  expect_gradients_close([&] { return sum(log_op(a)); }, {a});
  expect_gradients_close([&] { return sum(sqrt_op(a)); }, {a});
}

TEST_F(AutogradTest, GradCheckMulMask) {
  Variable a(random_tensor({6}, rng_), true);
  T::Tensor mask = T::Tensor::from_vector({6}, {1, 0, 1, 0, 2, 0.5F});
  expect_gradients_close([&] { return sum(mul_mask(a, mask)); }, {a});
}

TEST_F(AutogradTest, GradCheckReshape) {
  Variable a(random_tensor({2, 6}, rng_), true);
  expect_gradients_close(
      [&] { return sum(mul(reshape(a, {3, 4}), reshape(a, {3, 4}))); }, {a});
}

TEST_F(AutogradTest, GradCheckLinear) {
  Variable x(random_tensor({3, 4}, rng_), true);
  Variable w(random_tensor({2, 4}, rng_), true);
  Variable b(random_tensor({2}, rng_), true);
  expect_gradients_close([&] { return sum(linear(x, w, b)); }, {x, w, b});
}

TEST_F(AutogradTest, GradCheckLinearNoBias) {
  Variable x(random_tensor({2, 3}, rng_), true);
  Variable w(random_tensor({4, 3}, rng_), true);
  expect_gradients_close([&] { return sum(linear(x, w, Variable())); },
                         {x, w});
}

TEST_F(AutogradTest, GradCheckMean) {
  Variable a(random_tensor({3, 3}, rng_), true);
  expect_gradients_close([&] { return mean(mul(a, a)); }, {a});
}

TEST_F(AutogradTest, GradCheckSoftmaxCrossEntropy) {
  Variable logits(random_tensor({4, 5}, rng_), true);
  const std::vector<std::int64_t> labels{0, 2, 4, 1};
  expect_gradients_close(
      [&] { return softmax_cross_entropy(logits, labels); }, {logits});
}

TEST_F(AutogradTest, SoftmaxCrossEntropyValueMatchesManual) {
  Variable logits(T::Tensor::from_vector({1, 3}, {1.0F, 2.0F, 3.0F}), false);
  Variable loss = softmax_cross_entropy(logits, {2});
  const float lse = std::log(std::exp(1.0F) + std::exp(2.0F) + std::exp(3.0F));
  EXPECT_NEAR(loss.value()[0], lse - 3.0F, 1e-5F);
}

TEST_F(AutogradTest, SoftmaxCrossEntropyRejectsBadLabels) {
  Variable logits(T::Tensor::ones({2, 3}), false);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 3}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0}), std::invalid_argument);
}

TEST_F(AutogradTest, AccuracyCountsCorrectRows) {
  T::Tensor logits =
      T::Tensor::from_vector({3, 2}, {0.9F, 0.1F, 0.2F, 0.8F, 0.6F, 0.4F});
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 1, 0}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 0, 1}), 0.0);
}

TEST_F(AutogradTest, GradCheckConcatChannels) {
  Variable a(random_tensor({2, 2, 3, 3}, rng_), true);
  Variable b(random_tensor({2, 1, 3, 3}, rng_), true);
  expect_gradients_close(
      [&] {
        Variable c = concat_channels({a, b});
        return sum(mul(c, c));
      },
      {a, b});
}

TEST_F(AutogradTest, ConcatChannelsValueLayout) {
  Variable a(T::Tensor::full({1, 1, 2, 2}, 1.0F), false);
  Variable b(T::Tensor::full({1, 2, 2, 2}, 2.0F), false);
  Variable c = concat_channels({a, b});
  EXPECT_EQ(c.value().shape(), (T::Shape{1, 3, 2, 2}));
  EXPECT_FLOAT_EQ(c.value().at({0, 0, 0, 0}), 1.0F);
  EXPECT_FLOAT_EQ(c.value().at({0, 1, 1, 1}), 2.0F);
  EXPECT_FLOAT_EQ(c.value().at({0, 2, 0, 1}), 2.0F);
}

TEST_F(AutogradTest, GradCheckConv2d) {
  tensor::Conv2dSpec spec{3, 3, 1, 1};
  Variable x(random_tensor({1, 2, 4, 4}, rng_), true);
  Variable w(random_tensor({2, 2, 3, 3}, rng_), true);
  Variable b(random_tensor({2}, rng_), true);
  expect_gradients_close(
      [&] {
        Variable y = conv2d(x, w, b, spec);
        return sum(mul(y, y));
      },
      {x, w, b}, 1e-2F, 8e-2F, 8e-3F);
}

TEST_F(AutogradTest, GradCheckConv2dStrided) {
  tensor::Conv2dSpec spec{3, 3, 2, 1};
  Variable x(random_tensor({1, 1, 5, 5}, rng_), true);
  Variable w(random_tensor({2, 1, 3, 3}, rng_), true);
  expect_gradients_close([&] { return sum(conv2d(x, w, Variable(), spec)); },
                         {x, w});
}

TEST_F(AutogradTest, GradCheckMaxPool) {
  // Perturbations must not flip the argmax: use well-separated values.
  T::Tensor v({1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) v[i] = static_cast<float>(i) * 0.5F;
  Variable x(v, true);
  expect_gradients_close(
      [&] {
        Variable y = maxpool2d(x, 2, 2);
        return sum(mul(y, y));
      },
      {x});
}

TEST_F(AutogradTest, GradCheckAvgPoolAndGlobal) {
  Variable x(random_tensor({1, 2, 4, 4}, rng_), true);
  expect_gradients_close([&] { return sum(avgpool2d(x, 2, 2)); }, {x});
  expect_gradients_close(
      [&] {
        Variable y = global_avgpool(x);
        return sum(mul(y, y));
      },
      {x});
}

TEST_F(AutogradTest, GradCheckBatchNormTraining) {
  Variable x(random_tensor({3, 2, 3, 3}, rng_), true);
  Variable gamma(T::Tensor::from_vector({2}, {1.2F, 0.8F}), true);
  Variable beta(T::Tensor::from_vector({2}, {0.1F, -0.2F}), true);
  expect_gradients_close(
      [&] {
        // Fresh running stats each call so repeated evaluation is pure.
        T::Tensor rm = T::Tensor::zeros({2});
        T::Tensor rv = T::Tensor::ones({2});
        Variable y = batch_norm2d(x, gamma, beta, rm, rv, /*training=*/true,
                                  0.1F, 1e-5F);
        return sum(mul(y, y));
      },
      {x, gamma, beta}, 1e-2F, 8e-2F, 8e-3F);
}

TEST_F(AutogradTest, GradCheckBatchNormEval) {
  Variable x(random_tensor({2, 2, 2, 2}, rng_), true);
  Variable gamma(T::Tensor::ones({2}), true);
  Variable beta(T::Tensor::zeros({2}), true);
  T::Tensor rm = T::Tensor::from_vector({2}, {0.2F, -0.1F});
  T::Tensor rv = T::Tensor::from_vector({2}, {1.5F, 0.7F});
  expect_gradients_close(
      [&] {
        T::Tensor rm_copy = rm.clone();
        T::Tensor rv_copy = rv.clone();
        Variable y = batch_norm2d(x, gamma, beta, rm_copy, rv_copy,
                                  /*training=*/false, 0.1F, 1e-5F);
        return sum(mul(y, y));
      },
      {x, gamma, beta});
}

TEST_F(AutogradTest, BatchNormTrainingNormalizesBatch) {
  Variable x(random_tensor({4, 3, 5, 5}, rng_, -3.0F, 3.0F), false);
  Variable gamma(T::Tensor::ones({3}), false);
  Variable beta(T::Tensor::zeros({3}), false);
  T::Tensor rm = T::Tensor::zeros({3});
  T::Tensor rv = T::Tensor::ones({3});
  Variable y = batch_norm2d(x, gamma, beta, rm, rv, true, 0.1F, 1e-5F);
  const T::Tensor mean = T::channel_mean(y.value());
  const T::Tensor var = T::channel_var(y.value(), mean);
  for (std::int64_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(mean[c], 0.0F, 1e-4F);
    EXPECT_NEAR(var[c], 1.0F, 1e-2F);
  }
}

TEST_F(AutogradTest, BatchNormUpdatesRunningStats) {
  Variable x(random_tensor({4, 2, 3, 3}, rng_, 1.0F, 3.0F), false);
  Variable gamma(T::Tensor::ones({2}), false);
  Variable beta(T::Tensor::zeros({2}), false);
  T::Tensor rm = T::Tensor::zeros({2});
  T::Tensor rv = T::Tensor::ones({2});
  batch_norm2d(x, gamma, beta, rm, rv, true, 0.5F, 1e-5F);
  // Batch mean is ~2, so running mean moves toward it.
  EXPECT_GT(rm[0], 0.5F);
  EXPECT_GT(rm[1], 0.5F);
}

TEST_F(AutogradTest, DropoutTrainingScalesSurvivors) {
  Variable x(T::Tensor::ones({10000}), false);
  rng::Xorshift128 rng(7);
  Variable y = dropout(x, 0.5F, /*training=*/true, rng);
  // Inverted dropout: survivors scaled by 2, mean preserved.
  EXPECT_NEAR(y.value().mean(), 1.0F, 0.05F);
  int zeros = 0;
  for (std::int64_t i = 0; i < y.value().numel(); ++i) {
    const float v = y.value()[i];
    EXPECT_TRUE(v == 0.0F || std::fabs(v - 2.0F) < 1e-6F);
    if (v == 0.0F) ++zeros;
  }
  EXPECT_NEAR(zeros / 10000.0, 0.5, 0.03);
}

TEST_F(AutogradTest, DropoutIdentityWhenEvalOrZeroP) {
  Variable x(T::Tensor::ones({8}), false);
  rng::Xorshift128 rng(7);
  Variable y1 = dropout(x, 0.5F, /*training=*/false, rng);
  Variable y2 = dropout(x, 0.0F, /*training=*/true, rng);
  EXPECT_EQ(y1.id(), x.id());
  EXPECT_EQ(y2.id(), x.id());
}

TEST_F(AutogradTest, ClearGradResetsAccumulation) {
  Variable x(T::Tensor::ones({2}), true);
  backward(sum(mul_scalar(x, 3.0F)));
  EXPECT_FLOAT_EQ(x.grad()[0], 3.0F);
  x.clear_grad();
  EXPECT_FALSE(x.has_grad());
  backward(sum(mul_scalar(x, 3.0F)));
  EXPECT_FLOAT_EQ(x.grad()[0], 3.0F);  // not 6
}

TEST_F(AutogradTest, BackwardTwiceAccumulates) {
  Variable x(T::Tensor::ones({2}), true);
  backward(sum(mul_scalar(x, 3.0F)));
  backward(sum(mul_scalar(x, 3.0F)));
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0F);
}

TEST_F(AutogradTest, DeepChainDoesNotOverflowStack) {
  // 5000 chained ops — validates the iterative DFS in backward().
  Variable x(T::Tensor::ones({1}), true);
  Variable h = x;
  for (int i = 0; i < 5000; ++i) h = mul_scalar(h, 1.0001F);
  backward(sum(h));
  EXPECT_GT(x.grad()[0], 1.0F);
  EXPECT_LT(x.grad()[0], 2.0F);
}

}  // namespace
}  // namespace dropback::autograd
