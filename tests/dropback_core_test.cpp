#include "core/dropback_optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "autograd/ops.hpp"
#include "core/accumulated_gradients.hpp"
#include "core/tracked_set.hpp"
#include "nn/linear.hpp"
#include "nn/models/lenet.hpp"
#include "nn/sequential.hpp"
#include "rng/xorshift.hpp"

namespace dropback::core {
namespace {

namespace T = dropback::tensor;
namespace ag = dropback::autograd;

/// Two-linear model used across the suite.
std::unique_ptr<nn::Sequential> tiny_net(std::uint64_t seed = 1) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Linear>(4, 6, seed);
  net->emplace<nn::Linear>(6, 3, seed + 1);
  return net;
}

/// Runs one synthetic backward pass so every parameter has a gradient.
void make_gradients(nn::Module& net, std::uint64_t seed = 9) {
  rng::Xorshift128 rng(seed);
  T::Tensor x({2, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-1, 1);
  ag::Variable input(x);
  ag::Variable out = net.forward(input);
  ag::backward(ag::sum(ag::mul(out, out)));
}

TEST(ParamIndexTest, OffsetsAndTotal) {
  auto net = tiny_net();
  ParamIndex index(net->collect_parameters());
  // 4*6 + 6 + 6*3 + 3 = 51
  EXPECT_EQ(index.total(), 51);
  EXPECT_EQ(index.num_params(), 4U);
  EXPECT_EQ(index.offset(0), 0);
  EXPECT_EQ(index.offset(1), 24);
  EXPECT_EQ(index.offset(2), 30);
  EXPECT_EQ(index.offset(3), 48);
}

TEST(ParamIndexTest, ParamOfMapsGlobalIndices) {
  auto net = tiny_net();
  ParamIndex index(net->collect_parameters());
  EXPECT_EQ(index.param_of(0), 0U);
  EXPECT_EQ(index.param_of(23), 0U);
  EXPECT_EQ(index.param_of(24), 1U);
  EXPECT_EQ(index.param_of(29), 1U);
  EXPECT_EQ(index.param_of(30), 2U);
  EXPECT_EQ(index.param_of(50), 3U);
  EXPECT_THROW(index.param_of(51), std::invalid_argument);
  EXPECT_THROW(index.param_of(-1), std::invalid_argument);
}

TEST(ComputeScoresTest, MatchesManualFormula) {
  auto net = tiny_net();
  auto params = net->collect_parameters();
  make_gradients(*net);
  ParamIndex index(params);
  std::vector<float> scores;
  const float lr = 0.25F;
  compute_scores(index, lr, scores);
  ASSERT_EQ(static_cast<std::int64_t>(scores.size()), index.total());
  for (std::size_t p = 0; p < index.num_params(); ++p) {
    nn::Parameter& param = index.param(p);
    for (std::int64_t i = 0; i < param.numel(); ++i) {
      const float updated =
          param.var.value()[i] - lr * param.var.grad()[i];
      const float w0 = param.init.value_at(static_cast<std::uint64_t>(i));
      EXPECT_NEAR(scores[static_cast<std::size_t>(index.offset(p) + i)],
                  std::fabs(updated - w0), 1e-6F);
    }
  }
}

TEST(ComputeScoresTest, FreshNetworkScoresEqualUpdateMagnitude) {
  // At initialization w == w0, so the score must be exactly |lr * g| — the
  // paper's "U" term for untracked weights.
  auto net = tiny_net();
  auto params = net->collect_parameters();
  make_gradients(*net);
  ParamIndex index(params);
  std::vector<float> scores;
  compute_scores(index, 0.5F, scores);
  for (std::size_t p = 0; p < index.num_params(); ++p) {
    nn::Parameter& param = index.param(p);
    for (std::int64_t i = 0; i < param.numel(); ++i) {
      EXPECT_NEAR(scores[static_cast<std::size_t>(index.offset(p) + i)],
                  0.5F * std::fabs(param.var.grad()[i]), 1e-6F);
    }
  }
}

TEST(ComputeScoresTest, NonPrunableGetsInfiniteScore) {
  auto net = tiny_net();
  auto params = net->collect_parameters();
  params[1]->prunable = false;
  ParamIndex index(params);
  std::vector<float> scores;
  compute_scores(index, 0.1F, scores);
  for (std::int64_t i = index.offset(1); i < index.offset(1) + 6; ++i) {
    EXPECT_TRUE(std::isinf(scores[static_cast<std::size_t>(i)]));
  }
}

TEST(TrackedSetTest, StartsAllTracked) {
  auto net = tiny_net();
  ParamIndex index(net->collect_parameters());
  TrackedSet set(index);
  EXPECT_TRUE(set.all_tracked());
  EXPECT_EQ(set.tracked_count(), 51);
  EXPECT_TRUE(set.is_tracked(17));
}

TEST(TrackedSetTest, SelectsExactlyK) {
  auto net = tiny_net();
  ParamIndex index(net->collect_parameters());
  TrackedSet set(index);
  std::vector<float> scores(51);
  rng::Xorshift128 rng(3);
  for (auto& s : scores) s = rng.uniform();
  set.select(scores, 10);
  EXPECT_FALSE(set.all_tracked());
  EXPECT_EQ(set.tracked_count(), 10);
}

TEST(TrackedSetTest, TracksHighestScores) {
  auto net = tiny_net();
  ParamIndex index(net->collect_parameters());
  TrackedSet set(index);
  std::vector<float> scores(51, 0.0F);
  scores[5] = 3.0F;
  scores[30] = 2.0F;
  scores[50] = 1.0F;
  set.select(scores, 3);
  EXPECT_TRUE(set.is_tracked(5));
  EXPECT_TRUE(set.is_tracked(30));
  EXPECT_TRUE(set.is_tracked(50));
  EXPECT_FALSE(set.is_tracked(0));
  EXPECT_FLOAT_EQ(set.last_lambda(), 1.0F);
}

TEST(TrackedSetTest, TiesBrokenByLowestIndex) {
  auto net = tiny_net();
  ParamIndex index(net->collect_parameters());
  TrackedSet set(index);
  std::vector<float> scores(51, 1.0F);  // all tied
  set.select(scores, 5);
  EXPECT_EQ(set.tracked_count(), 5);
  for (std::int64_t i = 0; i < 5; ++i) EXPECT_TRUE(set.is_tracked(i));
  for (std::int64_t i = 5; i < 51; ++i) EXPECT_FALSE(set.is_tracked(i));
}

TEST(TrackedSetTest, TieBreakIdenticalAcrossStrategies) {
  // Regression: both selection strategies must resolve equal-score ties to
  // the SAME index set — index order is the documented deterministic
  // tie-break. Tie-heavy scores (drawn from a four-value alphabet, so many
  // A_i are exactly equal at the threshold) previously relied on two
  // independently-written tie conditions staying in sync; they now share
  // one comparator, and this locks the agreement down.
  auto net = tiny_net();
  ParamIndex index(net->collect_parameters());
  rng::Xorshift128 rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> scores(51);
    for (auto& s : scores) {
      s = 0.5F * static_cast<float>(rng.next_u32() % 4);
    }
    const auto k = static_cast<std::int64_t>(1 + rng.next_u32() % 50);
    TrackedSet by_sort(index);
    by_sort.select(scores, k, SelectionStrategy::kFullSort);
    TrackedSet by_heap(index);
    by_heap.select(scores, k, SelectionStrategy::kThresholdHeap);
    for (std::int64_t g = 0; g < index.total(); ++g) {
      ASSERT_EQ(by_sort.is_tracked(g), by_heap.is_tracked(g))
          << "trial " << trial << " k=" << k << " index " << g;
    }
    ASSERT_EQ(by_sort.last_lambda(), by_heap.last_lambda())
        << "trial " << trial << " k=" << k;
  }
}

TEST(TrackedSetTest, AllTiedSelectsLowestIndicesUnderBothStrategies) {
  auto net = tiny_net();
  ParamIndex index(net->collect_parameters());
  std::vector<float> scores(51, 2.5F);  // every score equal
  for (auto strategy :
       {SelectionStrategy::kFullSort, SelectionStrategy::kThresholdHeap}) {
    TrackedSet set(index);
    set.select(scores, 7, strategy);
    for (std::int64_t i = 0; i < 7; ++i) EXPECT_TRUE(set.is_tracked(i));
    for (std::int64_t i = 7; i < 51; ++i) EXPECT_FALSE(set.is_tracked(i));
  }
}

TEST(TrackedSetTest, KLargerThanTotalTracksEverything) {
  auto net = tiny_net();
  ParamIndex index(net->collect_parameters());
  TrackedSet set(index);
  std::vector<float> scores(51, 0.5F);
  set.select(scores, 1000);
  EXPECT_TRUE(set.all_tracked());
  EXPECT_EQ(set.tracked_count(), 51);
}

TEST(TrackedSetTest, ChurnCountsEnteringWeights) {
  auto net = tiny_net();
  ParamIndex index(net->collect_parameters());
  TrackedSet set(index);
  std::vector<float> scores(51, 0.0F);
  scores[0] = scores[1] = scores[2] = 1.0F;
  set.select(scores, 3);
  EXPECT_EQ(set.last_churn(), 3);  // initial fill
  // Replace one member.
  scores[2] = 0.0F;
  scores[10] = 2.0F;
  set.select(scores, 3);
  EXPECT_EQ(set.last_churn(), 1);
  EXPECT_TRUE(set.is_tracked(10));
  EXPECT_FALSE(set.is_tracked(2));
  // Stable selection -> zero churn.
  set.select(scores, 3);
  EXPECT_EQ(set.last_churn(), 0);
}

TEST(TrackedSetTest, PerParamCountsSumToK) {
  auto net = tiny_net();
  ParamIndex index(net->collect_parameters());
  TrackedSet set(index);
  std::vector<float> scores(51);
  rng::Xorshift128 rng(4);
  for (auto& s : scores) s = rng.uniform();
  set.select(scores, 20);
  std::int64_t total = 0;
  for (std::size_t p = 0; p < index.num_params(); ++p) {
    total += set.tracked_count_in(p);
  }
  EXPECT_EQ(total, 20);
}

/// Property test: full-sort and threshold-heap selection produce identical
/// masks on random score vectors, including duplicated values.
class SelectionEquivalence
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::int64_t>> {
};

TEST_P(SelectionEquivalence, StrategiesAgree) {
  const auto [seed, k] = GetParam();
  auto net = tiny_net();
  ParamIndex index(net->collect_parameters());
  TrackedSet full(index), heap(index);
  rng::Xorshift128 rng(seed);
  std::vector<float> scores(51);
  for (auto& s : scores) {
    // Quantized scores force plenty of ties.
    s = static_cast<float>(rng.uniform_int(8)) * 0.125F;
  }
  full.select(scores, k, SelectionStrategy::kFullSort);
  heap.select(scores, k, SelectionStrategy::kThresholdHeap);
  for (std::int64_t g = 0; g < 51; ++g) {
    EXPECT_EQ(full.is_tracked(g), heap.is_tracked(g)) << "index " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SelectionEquivalence,
    ::testing::Values(std::make_pair(1ULL, 1LL), std::make_pair(2ULL, 5LL),
                      std::make_pair(3ULL, 17LL), std::make_pair(4ULL, 50LL),
                      std::make_pair(5ULL, 25LL), std::make_pair(6ULL, 2LL)));

// --- DropBackOptimizer ------------------------------------------------------

TEST(DropBackOptimizerTest, RejectsZeroBudget) {
  auto net = tiny_net();
  DropBackConfig config;
  config.budget = 0;
  EXPECT_THROW(
      DropBackOptimizer(net->collect_parameters(), 0.1F, config),
      std::invalid_argument);
}

TEST(DropBackOptimizerTest, RespectsBudgetAfterFirstStep) {
  auto net = tiny_net();
  DropBackConfig config;
  config.budget = 12;
  DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  make_gradients(*net);
  opt.step();
  EXPECT_EQ(opt.live_weights(), 12);
  EXPECT_NEAR(opt.compression_ratio(), 51.0 / 12.0, 1e-9);
}

TEST(DropBackOptimizerTest, UntrackedWeightsEqualRegeneratedInit) {
  auto net = tiny_net();
  auto params = net->collect_parameters();
  DropBackConfig config;
  config.budget = 8;
  DropBackOptimizer opt(params, 0.1F, config);
  for (int iter = 0; iter < 5; ++iter) {
    net->zero_grad();
    make_gradients(*net, 100 + iter);
    opt.step();
  }
  const TrackedSet& tracked = opt.tracked();
  const ParamIndex& index = opt.param_index();
  for (std::size_t p = 0; p < index.num_params(); ++p) {
    nn::Parameter& param = index.param(p);
    const std::uint8_t* mask = tracked.mask_of(p);
    for (std::int64_t i = 0; i < param.numel(); ++i) {
      if (!mask[static_cast<std::size_t>(i)]) {
        EXPECT_EQ(param.var.value()[i],
                  param.init.value_at(static_cast<std::uint64_t>(i)))
            << param.name << "[" << i << "]";
      }
    }
  }
}

TEST(DropBackOptimizerTest, TrackedWeightsFollowSgd) {
  // With budget >= total, DropBack must be *exactly* plain SGD.
  auto net_a = tiny_net(5);
  auto net_b = tiny_net(5);
  auto pa = net_a->collect_parameters();
  auto pb = net_b->collect_parameters();
  DropBackConfig config;
  config.budget = 1000000;  // covers everything
  DropBackOptimizer dropback(pa, 0.2F, config);
  optim::SGD sgd(pb, 0.2F);
  for (int iter = 0; iter < 3; ++iter) {
    net_a->zero_grad();
    net_b->zero_grad();
    make_gradients(*net_a, 50 + iter);
    make_gradients(*net_b, 50 + iter);
    dropback.step();
    sgd.step();
  }
  for (std::size_t p = 0; p < pa.size(); ++p) {
    for (std::int64_t i = 0; i < pa[p]->numel(); ++i) {
      ASSERT_FLOAT_EQ(pa[p]->var.value()[i], pb[p]->var.value()[i]);
    }
  }
}

TEST(DropBackOptimizerTest, FreezeStopsSetChanges) {
  auto net = tiny_net();
  auto params = net->collect_parameters();
  DropBackConfig config;
  config.budget = 10;
  config.freeze_after_steps = 3;
  DropBackOptimizer opt(params, 0.3F, config);
  std::set<std::int64_t> frozen_set;
  for (int iter = 0; iter < 10; ++iter) {
    net->zero_grad();
    make_gradients(*net, 200 + iter);
    opt.step();
    if (iter == 2) {
      EXPECT_TRUE(opt.frozen());
      for (std::int64_t g = 0; g < 51; ++g) {
        if (opt.tracked().is_tracked(g)) frozen_set.insert(g);
      }
    }
    if (iter > 2) {
      std::set<std::int64_t> now;
      for (std::int64_t g = 0; g < 51; ++g) {
        if (opt.tracked().is_tracked(g)) now.insert(g);
      }
      EXPECT_EQ(now, frozen_set) << "tracked set changed after freeze";
    }
  }
}

TEST(DropBackOptimizerTest, ManualFreezeWorks) {
  auto net = tiny_net();
  DropBackConfig config;
  config.budget = 10;
  DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  EXPECT_FALSE(opt.frozen());
  opt.freeze();
  EXPECT_TRUE(opt.frozen());
}

TEST(DropBackOptimizerTest, ZeroingAblationZeroesUntracked) {
  auto net = tiny_net();
  auto params = net->collect_parameters();
  DropBackConfig config;
  config.budget = 8;
  config.regenerate_untracked = false;  // the paper's failing ablation
  DropBackOptimizer opt(params, 0.1F, config);
  make_gradients(*net);
  opt.step();
  const ParamIndex& index = opt.param_index();
  for (std::size_t p = 0; p < index.num_params(); ++p) {
    nn::Parameter& param = index.param(p);
    const std::uint8_t* mask = opt.tracked().mask_of(p);
    for (std::int64_t i = 0; i < param.numel(); ++i) {
      if (!mask[static_cast<std::size_t>(i)]) {
        EXPECT_EQ(param.var.value()[i], 0.0F);
      }
    }
  }
}

TEST(DropBackOptimizerTest, TrafficCounterTalliesAccesses) {
  auto net = tiny_net();
  DropBackConfig config;
  config.budget = 10;
  DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  energy::TrafficCounter traffic;
  opt.set_traffic_counter(&traffic);
  make_gradients(*net);
  opt.step();
  // 10 tracked (read+write each), 41 regenerated.
  EXPECT_EQ(traffic.dram_reads, 10U);
  EXPECT_EQ(traffic.dram_writes, 10U);
  EXPECT_EQ(traffic.regens, 41U);
}

TEST(DropBackOptimizerTest, StepsCount) {
  auto net = tiny_net();
  DropBackConfig config;
  config.budget = 10;
  DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  EXPECT_EQ(opt.steps(), 0);
  make_gradients(*net);
  opt.step();
  opt.step();
  EXPECT_EQ(opt.steps(), 2);
}

TEST(DropBackOptimizerTest, ChurnShrinksAsTrainingStabilizes) {
  // The Figure-2 effect: the first selection churns the full budget, later
  // selections churn less once the same strong gradients keep accumulating.
  auto net = tiny_net();
  auto params = net->collect_parameters();
  DropBackConfig config;
  config.budget = 15;
  DropBackOptimizer opt(params, 0.05F, config);
  std::vector<std::int64_t> churns;
  for (int iter = 0; iter < 8; ++iter) {
    net->zero_grad();
    make_gradients(*net, 7);  // identical batch -> stable gradients
    opt.step();
    churns.push_back(opt.last_churn());
  }
  EXPECT_EQ(churns.front(), 15);
  EXPECT_LT(churns.back(), 4);
}

/// Budget sweep: live weights never exceed the budget and compression is
/// total/budget for budgets below the parameter count.
class BudgetSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BudgetSweep, LiveWeightsMatchBudget) {
  const std::int64_t budget = GetParam();
  auto net = tiny_net();
  DropBackConfig config;
  config.budget = budget;
  DropBackOptimizer opt(net->collect_parameters(), 0.1F, config);
  make_gradients(*net);
  opt.step();
  EXPECT_EQ(opt.live_weights(), std::min<std::int64_t>(budget, 51));
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweep,
                         ::testing::Values(1, 2, 5, 10, 25, 50, 51, 100));

}  // namespace
}  // namespace dropback::core
