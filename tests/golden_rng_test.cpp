// Golden-value regression tests for the regeneration functions.
//
// The indexed xorshift draws are not merely a convenience RNG: they ARE the
// persistence format. Every SparseWeightStore on disk encodes its untracked
// weights as "whatever indexed_normal_fast(seed, i) returns", so any change
// to these functions silently corrupts every stored model and breaks
// training/deployment agreement. These tests pin the exact current outputs;
// if one fails, either revert the RNG change or version the store format.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rng/init_spec.hpp"
#include "rng/xorshift.hpp"
#include "simd/dispatch.hpp"

namespace dropback::rng {
namespace {

TEST(GoldenRng, IndexedU32PinnedValues) {
  // Values captured from the initial release; format-stability contract.
  EXPECT_EQ(indexed_u32(0, 0), 2222478705U);
  EXPECT_EQ(indexed_u32(1, 0), 3549863259U);
  EXPECT_EQ(indexed_u32(1, 1), 3131716144U);
  EXPECT_EQ(indexed_u32(42, 1337), 3622382452U);
  EXPECT_EQ(indexed_u32(0xDEADBEEF, 0xCAFE), 102503971U);
}

TEST(GoldenRng, IndexedNormalPinnedValues) {
  EXPECT_FLOAT_EQ(indexed_normal_fast(0, 0), -0.405952543F);
  EXPECT_FLOAT_EQ(indexed_normal_fast(1, 0), 0.66982168F);
  EXPECT_FLOAT_EQ(indexed_normal_fast(42, 1337), 0.656289935F);
}

TEST(GoldenRng, InitSpecPinnedValues) {
  // LeCun init of a 784-fan-in layer with seed 7 — the exact values every
  // MNIST model in this repo regenerates for its untracked weights.
  const InitSpec spec = InitSpec::lecun(784, 7);
  EXPECT_FLOAT_EQ(spec.value_at(0), 0.000483276846F);
  EXPECT_FLOAT_EQ(spec.value_at(1), -0.059926331F);
  EXPECT_FLOAT_EQ(spec.value_at(99999), -0.0744246393F);
}

TEST(GoldenRng, StreamGeneratorPinnedValues) {
  // The sequential stream seeds data generation; pin it too so synthetic
  // datasets stay reproducible across releases.
  Xorshift128 rng(42);
  EXPECT_EQ(rng.next_u32(), 3464667790U);
  EXPECT_EQ(rng.next_u32(), 3401645946U);
  EXPECT_EQ(rng.next_u32(), 1583839749U);
}

TEST(GoldenRng, IndexedDrawsAreStableAcrossCalls) {
  // Stronger than determinism: snapshot a block of draws, recompute them in
  // a different order and via fill(), and compare elementwise.
  const InitSpec spec = InitSpec::scaled_normal(1.0F, 0xFEEDULL);
  std::vector<float> direct(4096);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    direct[i] = spec.value_at(i);
  }
  std::vector<float> filled(4096);
  spec.fill(filled.data(), filled.size());
  EXPECT_EQ(direct, filled);
  // Reversed-order recomputation.
  for (std::size_t i = direct.size(); i-- > 0;) {
    ASSERT_EQ(spec.value_at(i), direct[i]);
  }
}

TEST(GoldenRng, LargeIndicesDoNotCollide) {
  // Indices beyond 2^32 (future big models) must keep producing distinct,
  // well-mixed values — the mixing is 64-bit.
  const std::uint64_t base = 1ULL << 40;
  std::uint32_t prev = indexed_u32(7, base);
  int same = 0;
  for (std::uint64_t i = 1; i < 1000; ++i) {
    const std::uint32_t v = indexed_u32(7, base + i);
    if (v == prev) ++same;
    prev = v;
  }
  EXPECT_EQ(same, 0);
}

// --- batched multi-lane stream pins (docs/SIMD.md) ------------------------
//
// The SIMD regen kernels compute 4/8/16 indices per vector, interleaving
// two 64-bit lanes into one 32-bit result vector. A lane-interleave bug
// would pass a "matches value_at" test on some indices and scramble others,
// so pin literal values at lane-boundary indices (0/1, 7/8, 15/16, 31/32,
// 47/48, 63) for EVERY runtime-available dispatch target. The pins are the
// published scalar sequence: indexed_u32 / value_at captured at seed time.

TEST(GoldenRng, BatchedU32StreamPinnedOnEveryTarget) {
  constexpr std::uint64_t kSeed = 42;
  constexpr struct {
    std::uint64_t index;
    std::uint32_t value;
  } kPins[] = {
      {0, 753679526U},   {1, 2703656119U},  {2, 2140888734U},
      {3, 1310057932U},  {7, 3431375581U},  {8, 3896359838U},
      {15, 1159260377U}, {16, 3410775163U}, {31, 1010425660U},
      {32, 4089440273U}, {47, 2555010046U}, {48, 2880683505U},
      {63, 3934107756U},
  };
  for (const auto& pin : kPins) {
    ASSERT_EQ(indexed_u32(kSeed, pin.index), pin.value)
        << "scalar reference drifted at index " << pin.index;
  }
  for (const simd::Target t : simd::available_targets()) {
    const simd::Kernels& kernels = simd::kernels_for(t);
    std::uint32_t out[64] = {};
    kernels.regen_u32(kSeed, 0, 64, out);
    for (const auto& pin : kPins) {
      EXPECT_EQ(out[pin.index], pin.value)
          << simd::target_name(t) << " lane stream at index " << pin.index;
    }
  }
}

TEST(GoldenRng, BatchedNormalStreamPinnedOnEveryTarget) {
  const InitSpec spec = InitSpec::scaled_normal(1.0F, 0xFEEDULL);
  constexpr struct {
    std::uint64_t index;
    float value;
  } kPins[] = {
      {0, 1.39377034F},    {1, 1.4749608F},    {3, -0.169146881F},
      {4, -0.913393199F},  {7, 0.649524033F},  {8, -0.148849264F},
      {15, -0.690119326F}, {16, -1.00811541F}, {31, -1.16373062F},
      {32, -0.3044644F},   {63, 0.250337392F},
  };
  for (const auto& pin : kPins) {
    ASSERT_FLOAT_EQ(spec.value_at(pin.index), pin.value)
        << "scalar reference drifted at index " << pin.index;
  }
  const simd::RegenSpec rspec{1, spec.scale(), spec.seed()};
  for (const simd::Target t : simd::available_targets()) {
    const simd::Kernels& kernels = simd::kernels_for(t);
    float out[64] = {};
    kernels.regen_fill(rspec, 0, 64, out);
    for (const auto& pin : kPins) {
      // Bitwise: the regenerated stream IS the persistence format.
      EXPECT_EQ(out[pin.index], pin.value)
          << simd::target_name(t) << " normal stream at index " << pin.index;
    }
  }
}

TEST(GoldenRng, SeedZeroAndIndexZeroWellDefined) {
  // The all-zero corner must not degenerate (xorshift of 0 stays 0 without
  // the splitmix pre-mix).
  EXPECT_NE(indexed_u32(0, 0), 0U);
  EXPECT_NE(indexed_normal_fast(0, 0), indexed_normal_fast(0, 1));
}

}  // namespace
}  // namespace dropback::rng
