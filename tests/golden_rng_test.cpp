// Golden-value regression tests for the regeneration functions.
//
// The indexed xorshift draws are not merely a convenience RNG: they ARE the
// persistence format. Every SparseWeightStore on disk encodes its untracked
// weights as "whatever indexed_normal_fast(seed, i) returns", so any change
// to these functions silently corrupts every stored model and breaks
// training/deployment agreement. These tests pin the exact current outputs;
// if one fails, either revert the RNG change or version the store format.
#include <gtest/gtest.h>

#include <vector>

#include "rng/init_spec.hpp"
#include "rng/xorshift.hpp"

namespace dropback::rng {
namespace {

TEST(GoldenRng, IndexedU32PinnedValues) {
  // Values captured from the initial release; format-stability contract.
  EXPECT_EQ(indexed_u32(0, 0), 2222478705U);
  EXPECT_EQ(indexed_u32(1, 0), 3549863259U);
  EXPECT_EQ(indexed_u32(1, 1), 3131716144U);
  EXPECT_EQ(indexed_u32(42, 1337), 3622382452U);
  EXPECT_EQ(indexed_u32(0xDEADBEEF, 0xCAFE), 102503971U);
}

TEST(GoldenRng, IndexedNormalPinnedValues) {
  EXPECT_FLOAT_EQ(indexed_normal_fast(0, 0), -0.405952543F);
  EXPECT_FLOAT_EQ(indexed_normal_fast(1, 0), 0.66982168F);
  EXPECT_FLOAT_EQ(indexed_normal_fast(42, 1337), 0.656289935F);
}

TEST(GoldenRng, InitSpecPinnedValues) {
  // LeCun init of a 784-fan-in layer with seed 7 — the exact values every
  // MNIST model in this repo regenerates for its untracked weights.
  const InitSpec spec = InitSpec::lecun(784, 7);
  EXPECT_FLOAT_EQ(spec.value_at(0), 0.000483276846F);
  EXPECT_FLOAT_EQ(spec.value_at(1), -0.059926331F);
  EXPECT_FLOAT_EQ(spec.value_at(99999), -0.0744246393F);
}

TEST(GoldenRng, StreamGeneratorPinnedValues) {
  // The sequential stream seeds data generation; pin it too so synthetic
  // datasets stay reproducible across releases.
  Xorshift128 rng(42);
  EXPECT_EQ(rng.next_u32(), 3464667790U);
  EXPECT_EQ(rng.next_u32(), 3401645946U);
  EXPECT_EQ(rng.next_u32(), 1583839749U);
}

TEST(GoldenRng, IndexedDrawsAreStableAcrossCalls) {
  // Stronger than determinism: snapshot a block of draws, recompute them in
  // a different order and via fill(), and compare elementwise.
  const InitSpec spec = InitSpec::scaled_normal(1.0F, 0xFEEDULL);
  std::vector<float> direct(4096);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    direct[i] = spec.value_at(i);
  }
  std::vector<float> filled(4096);
  spec.fill(filled.data(), filled.size());
  EXPECT_EQ(direct, filled);
  // Reversed-order recomputation.
  for (std::size_t i = direct.size(); i-- > 0;) {
    ASSERT_EQ(spec.value_at(i), direct[i]);
  }
}

TEST(GoldenRng, LargeIndicesDoNotCollide) {
  // Indices beyond 2^32 (future big models) must keep producing distinct,
  // well-mixed values — the mixing is 64-bit.
  const std::uint64_t base = 1ULL << 40;
  std::uint32_t prev = indexed_u32(7, base);
  int same = 0;
  for (std::uint64_t i = 1; i < 1000; ++i) {
    const std::uint32_t v = indexed_u32(7, base + i);
    if (v == prev) ++same;
    prev = v;
  }
  EXPECT_EQ(same, 0);
}

TEST(GoldenRng, SeedZeroAndIndexZeroWellDefined) {
  // The all-zero corner must not degenerate (xorshift of 0 stays 0 without
  // the splitmix pre-mix).
  EXPECT_NE(indexed_u32(0, 0), 0U);
  EXPECT_NE(indexed_normal_fast(0, 0), indexed_normal_fast(0, 1));
}

}  // namespace
}  // namespace dropback::rng
