// util/check.hpp contract (ISSUE 5 satellite): DROPBACK_CHECK throws
// std::invalid_argument whose message carries the failed expression, the
// file:line of the check, and the streamed detail; passing checks evaluate
// their condition exactly once and stream nothing. DROPBACK_ASSERT aliases
// DROPBACK_CHECK in default builds (the compile-out build is covered by
// util_check_disabled_test.cpp under -DDROPBACK_DISABLE_ASSERTS).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/check.hpp"

namespace {

TEST(UtilCheck, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(DROPBACK_CHECK(1 + 1 == 2, << "never rendered"));
}

TEST(UtilCheck, FailingCheckThrowsInvalidArgument) {
  EXPECT_THROW(DROPBACK_CHECK(false, << "boom"), std::invalid_argument);
}

TEST(UtilCheck, MessageCarriesExpressionFileLineAndDetail) {
  try {
    const int rows = 3;
    const int cols = 7;
    DROPBACK_CHECK(rows == cols,
                   << "shape mismatch: " << rows << " vs " << cols);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    // The stringified expression...
    EXPECT_NE(msg.find("rows == cols"), std::string::npos) << msg;
    // ...the location of THIS file (line is brittle, file is not)...
    EXPECT_NE(msg.find("util_check_test.cpp"), std::string::npos) << msg;
    EXPECT_NE(msg.find("check failed"), std::string::npos) << msg;
    // ...and the streamed detail with values formatted in.
    EXPECT_NE(msg.find("shape mismatch: 3 vs 7"), std::string::npos) << msg;
  }
}

TEST(UtilCheck, DetailIsOptional) {
  try {
    DROPBACK_CHECK(false);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("check failed: false"), std::string::npos) << msg;
    // No stray separator when no detail was streamed.
    EXPECT_EQ(msg.find("—"), std::string::npos) << msg;
  }
}

TEST(UtilCheck, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  DROPBACK_CHECK(++evaluations > 0, << "detail");
  EXPECT_EQ(evaluations, 1);
}

TEST(UtilCheck, DetailNotEvaluatedWhenCheckPasses) {
  int renders = 0;
  auto count = [&renders]() {
    ++renders;
    return "x";
  };
  DROPBACK_CHECK(true, << count());
  EXPECT_EQ(renders, 0);
}

TEST(UtilCheck, AssertAliasesCheckInDefaultBuilds) {
#ifdef DROPBACK_DISABLE_ASSERTS
  FAIL() << "this suite must build without DROPBACK_DISABLE_ASSERTS";
#else
  EXPECT_THROW(DROPBACK_ASSERT(false, << "invariant"), std::invalid_argument);
  EXPECT_NO_THROW(DROPBACK_ASSERT(true));
  try {
    const std::size_t idx = 9;
    DROPBACK_ASSERT(idx < 4, << "index " << idx << " out of range");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("index 9 out of range"),
              std::string::npos);
  }
#endif
}

}  // namespace
