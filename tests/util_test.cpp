#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/container.hpp"
#include "util/crc32.hpp"
#include "util/csv.hpp"
#include "util/fault_injection.hpp"
#include "util/flags.hpp"
#include "util/io_error.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace dropback::util {
namespace {

TEST(CheckMacro, ThrowsWithMessage) {
  try {
    DROPBACK_CHECK(1 == 2, << "custom detail " << 42);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom detail 42"), std::string::npos);
  }
}

TEST(CheckMacro, PassesSilently) {
  EXPECT_NO_THROW(DROPBACK_CHECK(true, << "never shown"));
}

TEST(Flags, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=1.5", "--name", "foo", "--verbose"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(flags.get_string("name", ""), "foo");
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_int("missing", 7), 7);
}

TEST(Flags, PositionalArgumentsCollected) {
  const char* argv[] = {"prog", "input.bin", "--k=3", "output.bin"};
  Flags flags(4, const_cast<char**>(argv));
  ASSERT_EQ(flags.positional().size(), 2U);
  EXPECT_EQ(flags.positional()[0], "input.bin");
  EXPECT_EQ(flags.positional()[1], "output.bin");
}

TEST(Flags, EnvFallbackWithPrefix) {
  ::setenv("DROPBACK_TEST_KNOB", "123", 1);
  Flags flags;
  EXPECT_EQ(flags.get_int("test-knob", 0), 123);
  ::unsetenv("DROPBACK_TEST_KNOB");
  EXPECT_EQ(flags.get_int("test-knob", 5), 5);
}

TEST(Flags, CliBeatsEnv) {
  ::setenv("DROPBACK_K", "10", 1);
  const char* argv[] = {"prog", "--k=20"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_EQ(flags.get_int("k", 0), 20);
  ::unsetenv("DROPBACK_K");
}

TEST(Flags, BadNumberThrows) {
  const char* argv[] = {"prog", "--k=abc"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_THROW(flags.get_int("k", 0), std::runtime_error);
  EXPECT_THROW(flags.get_double("k", 0), std::runtime_error);
}

TEST(Flags, BoolForms) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=off"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_FALSE(flags.get_bool("b", true));
  EXPECT_TRUE(flags.get_bool("c", false));
  EXPECT_FALSE(flags.get_bool("d", true));
}

TEST(Csv, WritesHeaderRowsAndEscapes) {
  const std::string path = ::testing::TempDir() + "/util_test.csv";
  {
    CsvWriter csv(path);
    csv.header({"a", "b,with,commas", "c"});
    csv.row(std::vector<std::string>{"1", "say \"hi\"", "line\nbreak"});
    csv.row(std::vector<double>{1.5, 2.25, -3.0});
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("a,\"b,with,commas\",c"), std::string::npos);
  EXPECT_NE(content.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(content.find("1.5,2.25,-3"), std::string::npos);
}

TEST(Csv, FormatRoundTripsDoubles) {
  EXPECT_EQ(CsvWriter::format(0.5), "0.5");
  EXPECT_EQ(CsvWriter::format(std::nan("")), "nan");
}

TEST(Csv, ThrowsOnUnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv"),
               std::runtime_error);
}

TEST(TableTest, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"a-much-longer-name", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--"), std::string::npos);
  EXPECT_EQ(table.rows(), 2U);
}

TEST(TableTest, ShortRowsArePadded) {
  Table table({"a", "b", "c"});
  table.add_row({"only-one"});
  EXPECT_NO_THROW({ const auto s = table.render(); (void)s; });
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::pct(0.0142), "1.42%");
  EXPECT_EQ(Table::pct(0.905, 1), "90.5%");
  EXPECT_EQ(Table::times(5.333, 2), "5.33x");
  EXPECT_EQ(Table::num(3.14159, 3), "3.142");
  EXPECT_EQ(Table::count(1500000), "1.5M");
  EXPECT_EQ(Table::count(50000), "50k");
  EXPECT_EQ(Table::count(123), "123");
}

TEST(Log, LevelsParse) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  // Unknown names used to silently mean kInfo; they must throw instead
  // (full rejection coverage lives in util_log_test.cpp).
  EXPECT_THROW(parse_log_level("nonsense"), std::invalid_argument);
}

TEST(Log, SetAndGetLevel) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Suppressed message should not crash.
  log_info() << "this is below the level and discarded";
  set_log_level(old);
}

TEST(Crc32, KnownVectors) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926U);
  EXPECT_EQ(crc32("", 0), 0U);
  EXPECT_EQ(crc32("a", 1), 0xE8B7BE43U);
}

TEST(Crc32, ChainingMatchesConcatenation) {
  const std::string a = "hello, ";
  const std::string b = "world";
  const std::string ab = a + b;
  EXPECT_EQ(crc32(b.data(), b.size(), crc32(a.data(), a.size())),
            crc32(ab.data(), ab.size()));
}

TEST(Crc32, SingleBitFlipChangesChecksum) {
  std::string bytes(64, '\x5A');
  const std::uint32_t clean = crc32(bytes.data(), bytes.size());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>(bytes[i] ^ 0x01);
    EXPECT_NE(crc32(bytes.data(), bytes.size()), clean) << "byte " << i;
    bytes[i] = static_cast<char>(bytes[i] ^ 0x01);
  }
}

TEST(Container, RoundTripsMultipleSections) {
  ContainerWriter writer("TEST");
  writer.add_section("alpha") << "payload one";
  writer.add_section("beta").write("\x00\x01\x02", 3);
  writer.add_section("empty");
  std::ostringstream out(std::ios::binary);
  writer.write_to(out);

  std::istringstream in(out.str(), std::ios::binary);
  const ContainerReader reader = ContainerReader::read_from(in, "TEST");
  ASSERT_EQ(reader.num_sections(), 3U);
  EXPECT_EQ(reader.section_name(0), "alpha");
  EXPECT_EQ(reader.section_bytes(0), "payload one");
  EXPECT_EQ(reader.section_bytes(1), std::string("\x00\x01\x02", 3));
  EXPECT_TRUE(reader.has_section("empty"));
  EXPECT_EQ(reader.section_bytes(2), "");
  EXPECT_FALSE(reader.has_section("gamma"));
  EXPECT_THROW(reader.section_stream("gamma"), IoError);
  // The reader consumed exactly its own bytes.
  EXPECT_EQ(in.tellg(), static_cast<std::streamoff>(out.str().size()));
}

TEST(Container, RejectsWrongKindAndTruncation) {
  ContainerWriter writer("AAAA");
  writer.add_section("s") << "data";
  std::ostringstream out(std::ios::binary);
  writer.write_to(out);
  const std::string bytes = out.str();
  {
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_THROW(ContainerReader::read_from(in, "BBBB"), IoError);
  }
  // Truncation at every length short of the full container fails cleanly.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::istringstream in(bytes.substr(0, len), std::ios::binary);
    EXPECT_THROW(ContainerReader::read_from(in, "AAAA"), IoError)
        << "length " << len;
  }
}

TEST(Container, LegacyMagicGetsMigrationHint) {
  std::istringstream in(std::string("DBSW") + std::string(16, '\0'),
                        std::ios::binary);
  try {
    ContainerReader::read_from(in, "DBSW");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("legacy"), std::string::npos);
  }
}

TEST(FaultInjection, ShortWriteStopsAtOffset) {
  std::ostringstream sink(std::ios::binary);
  FaultyStreambuf faulty(sink.rdbuf(), {FaultKind::kShortWrite, 5});
  std::ostream out(&faulty);
  out.write("0123456789", 10);
  EXPECT_EQ(sink.str(), "01234");
  EXPECT_EQ(faulty.bytes_written(), 5);
}

TEST(FaultInjection, CrashThrowsAtOffset) {
  std::ostringstream sink(std::ios::binary);
  FaultyStreambuf faulty(sink.rdbuf(), {FaultKind::kCrash, 3});
  // Drive the streambuf directly: std::ostream::write would swallow the
  // exception into badbit, which is its own documented behavior, not ours.
  EXPECT_THROW(faulty.sputn("0123456789", 10), SimulatedCrash);
  EXPECT_EQ(sink.str(), "012");
}

TEST(FaultInjection, FlipCorruptsExactlyOneByte) {
  std::ostringstream sink(std::ios::binary);
  FaultyStreambuf faulty(sink.rdbuf(), {FaultKind::kFlipByte, 2});
  std::ostream out(&faulty);
  out.write("abcd", 4);
  out.flush();
  const std::string got = sink.str();
  ASSERT_EQ(got.size(), 4U);
  EXPECT_EQ(got[0], 'a');
  EXPECT_EQ(got[1], 'b');
  EXPECT_EQ(got[2], static_cast<char>('c' ^ 0xFF));
  EXPECT_EQ(got[3], 'd');
}

TEST(FaultInjection, NoFaultPassesThrough) {
  std::ostringstream sink(std::ios::binary);
  FaultyStreambuf faulty(sink.rdbuf(), {});
  std::ostream out(&faulty);
  out.write("abcd", 4);
  EXPECT_EQ(sink.str(), "abcd");
  EXPECT_EQ(faulty.bytes_written(), 4);
}

TEST(AtomicFile, WritesAndReadsBack) {
  const std::string path = ::testing::TempDir() + "/atomic_roundtrip.bin";
  std::remove(path.c_str());
  atomic_write_file(path, [](std::ostream& out) { out << "hello"; });
  EXPECT_EQ(read_file(path), "hello");
  // Overwrite is atomic too: either the old or the new content, never a mix.
  atomic_write_file(path, [](std::ostream& out) { out << "goodbye"; });
  EXPECT_EQ(read_file(path), "goodbye");
  std::remove(path.c_str());
  EXPECT_FALSE(file_exists(path));
  EXPECT_THROW(read_file(path), IoError);
}

}  // namespace
}  // namespace dropback::util
