#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace dropback::util {
namespace {

TEST(CheckMacro, ThrowsWithMessage) {
  try {
    DROPBACK_CHECK(1 == 2, << "custom detail " << 42);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom detail 42"), std::string::npos);
  }
}

TEST(CheckMacro, PassesSilently) {
  EXPECT_NO_THROW(DROPBACK_CHECK(true, << "never shown"));
}

TEST(Flags, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=1.5", "--name", "foo", "--verbose"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(flags.get_string("name", ""), "foo");
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_int("missing", 7), 7);
}

TEST(Flags, PositionalArgumentsCollected) {
  const char* argv[] = {"prog", "input.bin", "--k=3", "output.bin"};
  Flags flags(4, const_cast<char**>(argv));
  ASSERT_EQ(flags.positional().size(), 2U);
  EXPECT_EQ(flags.positional()[0], "input.bin");
  EXPECT_EQ(flags.positional()[1], "output.bin");
}

TEST(Flags, EnvFallbackWithPrefix) {
  ::setenv("DROPBACK_TEST_KNOB", "123", 1);
  Flags flags;
  EXPECT_EQ(flags.get_int("test-knob", 0), 123);
  ::unsetenv("DROPBACK_TEST_KNOB");
  EXPECT_EQ(flags.get_int("test-knob", 5), 5);
}

TEST(Flags, CliBeatsEnv) {
  ::setenv("DROPBACK_K", "10", 1);
  const char* argv[] = {"prog", "--k=20"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_EQ(flags.get_int("k", 0), 20);
  ::unsetenv("DROPBACK_K");
}

TEST(Flags, BadNumberThrows) {
  const char* argv[] = {"prog", "--k=abc"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_THROW(flags.get_int("k", 0), std::runtime_error);
  EXPECT_THROW(flags.get_double("k", 0), std::runtime_error);
}

TEST(Flags, BoolForms) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=off"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_FALSE(flags.get_bool("b", true));
  EXPECT_TRUE(flags.get_bool("c", false));
  EXPECT_FALSE(flags.get_bool("d", true));
}

TEST(Csv, WritesHeaderRowsAndEscapes) {
  const std::string path = ::testing::TempDir() + "/util_test.csv";
  {
    CsvWriter csv(path);
    csv.header({"a", "b,with,commas", "c"});
    csv.row(std::vector<std::string>{"1", "say \"hi\"", "line\nbreak"});
    csv.row(std::vector<double>{1.5, 2.25, -3.0});
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("a,\"b,with,commas\",c"), std::string::npos);
  EXPECT_NE(content.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(content.find("1.5,2.25,-3"), std::string::npos);
}

TEST(Csv, FormatRoundTripsDoubles) {
  EXPECT_EQ(CsvWriter::format(0.5), "0.5");
  EXPECT_EQ(CsvWriter::format(std::nan("")), "nan");
}

TEST(Csv, ThrowsOnUnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv"),
               std::runtime_error);
}

TEST(TableTest, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"a-much-longer-name", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--"), std::string::npos);
  EXPECT_EQ(table.rows(), 2U);
}

TEST(TableTest, ShortRowsArePadded) {
  Table table({"a", "b", "c"});
  table.add_row({"only-one"});
  EXPECT_NO_THROW({ const auto s = table.render(); (void)s; });
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::pct(0.0142), "1.42%");
  EXPECT_EQ(Table::pct(0.905, 1), "90.5%");
  EXPECT_EQ(Table::times(5.333, 2), "5.33x");
  EXPECT_EQ(Table::num(3.14159, 3), "3.142");
  EXPECT_EQ(Table::count(1500000), "1.5M");
  EXPECT_EQ(Table::count(50000), "50k");
  EXPECT_EQ(Table::count(123), "123");
}

TEST(Log, LevelsParse) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("nonsense"), LogLevel::kInfo);
}

TEST(Log, SetAndGetLevel) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Suppressed message should not crash.
  log_info() << "this is below the level and discarded";
  set_log_level(old);
}

}  // namespace
}  // namespace dropback::util
