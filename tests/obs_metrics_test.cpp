// MetricsRegistry, JSON helpers, and event-stream schema tests (ISSUE 3):
// histogram bucket boundaries including under/overflow bins, counter wrap
// modulo 2^64, snapshot-while-writing from concurrent threads, and the
// golden field-order schema of the JSONL step record.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_stream.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace dropback;

TEST(JsonTest, EscapeAndNumberRoundTrip) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(obs::json_number(3.0), "3");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()), "null");
  // Shortest-round-trip: the value survives a print/parse cycle bit-exactly.
  const double v = 0.1 + 0.2;
  const auto rec =
      obs::parse_flat_object("{\"v\":" + obs::json_number(v) + "}");
  EXPECT_EQ(rec.at("v").number, v);
}

TEST(JsonTest, ParseFlatObjectTypes) {
  const auto rec = obs::parse_flat_object(
      R"({"s":"x","n":-2.5,"t":true,"f":false,"z":null})");
  EXPECT_EQ(rec.at("s").type, obs::JsonValue::Type::kString);
  EXPECT_EQ(rec.at("s").string, "x");
  EXPECT_EQ(rec.at("n").number, -2.5);
  EXPECT_TRUE(rec.at("t").boolean);
  EXPECT_FALSE(rec.at("f").boolean);
  EXPECT_EQ(rec.at("z").type, obs::JsonValue::Type::kNull);
}

TEST(JsonTest, ParseRejectsCorruptInputLoudly) {
  EXPECT_THROW(obs::parse_flat_object("{\"a\":1"), std::runtime_error);
  EXPECT_THROW(obs::parse_flat_object("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(obs::parse_flat_object("not json"), std::runtime_error);
  EXPECT_THROW(obs::parse_flat_object("{\"a\":{\"nested\":1}}"),
               std::runtime_error);
  EXPECT_THROW(obs::parse_flat_object("{\"a\":1}trailing"),
               std::runtime_error);
}

TEST(JsonTest, KernelTimingSchema) {
  const std::string line = obs::kernel_timing_json("matmul", 3, 1500, 2);
  EXPECT_EQ(line,
            R"({"name":"matmul","calls":3,"total_us":1500,"threads":2})");
  const auto rec = obs::parse_flat_object(line);
  EXPECT_EQ(rec.at("name").string, "matmul");
  EXPECT_EQ(rec.at("calls").number, 3.0);
}

TEST(MetricsTest, CounterWrapsModulo2e64) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("wrap");
  c.add(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(c.value(), std::numeric_limits<std::uint64_t>::max());
  c.add(2);  // odometer semantics: wraps, does not saturate
  EXPECT_EQ(c.value(), 1U);
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat", {1.0, 10.0, 100.0});
  ASSERT_EQ(h.num_buckets(), 4U);  // underflow + 2 interior + overflow
  h.observe(0.5);    // < 1           -> bucket 0 (underflow)
  h.observe(1.0);    // [1, 10)       -> bucket 1 (left-closed boundary)
  h.observe(9.999);  // [1, 10)       -> bucket 1
  h.observe(10.0);   // [10, 100)     -> bucket 2
  h.observe(100.0);  // >= 100        -> bucket 3 (overflow, boundary)
  h.observe(1e9);    // >= 100        -> bucket 3
  EXPECT_EQ(h.bucket_count(0), 1U);
  EXPECT_EQ(h.bucket_count(1), 2U);
  EXPECT_EQ(h.bucket_count(2), 1U);
  EXPECT_EQ(h.bucket_count(3), 2U);
  EXPECT_EQ(h.count(), 6U);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 9.999 + 10.0 + 100.0 + 1e9);
}

TEST(MetricsTest, RegistryReturnsSameMetricAndFirstBoundsWin) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x");
  a.add(3);
  EXPECT_EQ(&reg.counter("x"), &a);
  obs::Histogram& h = reg.histogram("h", {1.0, 2.0});
  EXPECT_EQ(&reg.histogram("h", {99.0}), &h);
  EXPECT_EQ(h.bounds().size(), 2U);
}

TEST(MetricsTest, SnapshotJsonShape) {
  obs::MetricsRegistry reg;
  reg.counter("steps").add(7);
  reg.gauge("loss").set(1.5);
  reg.histogram("ms", {10.0}).observe(3.0);
  const std::string snap = reg.snapshot_json();
  EXPECT_NE(snap.find("\"counters\":{\"steps\":7}"), std::string::npos)
      << snap;
  EXPECT_NE(snap.find("\"loss\":1.5"), std::string::npos) << snap;
  // The overflow bin's open end is explicit: bounds[i] pairs with counts[i].
  EXPECT_NE(snap.find("\"bounds\":[10,\"+Inf\"]"), std::string::npos) << snap;
  EXPECT_NE(snap.find("\"counts\":[1,0]"), std::string::npos) << snap;
}

TEST(MetricsTest, QuantileEdgeCases) {
  obs::Histogram empty({1.0, 10.0});
  EXPECT_EQ(obs::histogram_quantile(empty, 0.0), 0.0);  // no data -> 0
  EXPECT_EQ(obs::histogram_quantile(empty, 1.0), 0.0);

  // All observations in the overflow bin: every quantile clamps to the top
  // finite bound — never extrapolated past it.
  obs::Histogram overflow({1.0, 10.0});
  overflow.observe(50.0);
  overflow.observe(1e9);
  EXPECT_EQ(obs::histogram_quantile(overflow, 0.0), 10.0);
  EXPECT_EQ(obs::histogram_quantile(overflow, 0.5), 10.0);
  EXPECT_EQ(obs::histogram_quantile(overflow, 1.0), 10.0);

  // q=0 maps to the first observation's bucket, q=1 to the last one's.
  obs::Histogram spread({1.0, 10.0, 100.0});
  spread.observe(0.5);   // underflow
  spread.observe(5.0);   // [1, 10)
  spread.observe(50.0);  // [10, 100)
  EXPECT_EQ(obs::histogram_quantile(spread, 0.0), 1.0);
  EXPECT_EQ(obs::histogram_quantile(spread, 1.0), 100.0);
}

TEST(LogHistogramTest, BucketingAndQuantileAccuracy) {
  // 1 .. 16 covered by 4 octaves of 8 sub-buckets: relative quantile error
  // is bounded by 1/sub_buckets = 12.5%.
  obs::LogHistogram h(1.0, 16.0, 8);
  EXPECT_EQ(h.octaves(), 4);
  EXPECT_EQ(h.num_buckets(), 4U * 8U + 2U);

  EXPECT_EQ(h.bucket_index(0.5), 0U);                     // underflow
  EXPECT_EQ(h.bucket_index(16.0), h.num_buckets() - 1);   // overflow
  EXPECT_EQ(h.bucket_index(1.0), 1U);                     // first finite bin
  // First bin of the second octave is [2, 2.25).
  EXPECT_EQ(h.bucket_index(2.0), 1U + 8U);
  EXPECT_DOUBLE_EQ(h.bucket_upper(1U + 8U), 2.25);

  // Quantiles stay within one sub-bucket of the true value across octaves.
  for (const double v : {1.5, 3.0, 7.7, 12.0}) {
    obs::LogHistogram one(1.0, 16.0, 8);
    one.observe(v);
    const double q = one.quantile(0.5);
    EXPECT_GE(q, v);
    EXPECT_LE(q, v * (1.0 + 1.0 / 8.0) + 1e-12) << "v=" << v;
  }
}

TEST(LogHistogramTest, EdgeCasesMatchFixedHistogramContract) {
  obs::LogHistogram h(0.01, 1000.0, 16);
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty -> 0

  h.observe(0.001);  // underflow reports min_value
  EXPECT_EQ(h.quantile(0.0), 0.01);

  obs::LogHistogram over(0.01, 1000.0, 16);
  over.observe(5000.0);  // overflow clamps to max_value, no extrapolation
  over.observe(1e12);
  EXPECT_EQ(over.quantile(0.5), 1000.0);
  EXPECT_EQ(over.quantile(1.0), 1000.0);

  // NaN lands in the underflow bin rather than corrupting an index.
  obs::LogHistogram nan_h(0.01, 1000.0, 16);
  nan_h.observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(nan_h.bucket_count(0), 1U);
}

TEST(LogHistogramTest, AccurateOverFourDecadesWhereFixedBucketsAreNot) {
  // p99 of a bimodal latency mix: 98 fast (0.2ms) + 2 slow (150ms). The old
  // serve bounds {...,100,200,...} could only answer "200"; the log
  // histogram pins it within ~6%.
  obs::LogHistogram h(0.01, 600000.0, 16);
  for (int i = 0; i < 98; ++i) h.observe(0.2);
  h.observe(150.0);
  h.observe(150.0);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p99, 150.0);
  EXPECT_LE(p99, 150.0 * 1.07);
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 0.2);
  EXPECT_LE(p50, 0.2 * 1.07);
}

TEST(LogHistogramTest, RegistrySnapshotEmitsSparseBuckets) {
  obs::MetricsRegistry reg;
  obs::LogHistogram& h = reg.log_histogram("lat", 0.01, 1000.0, 16);
  EXPECT_EQ(&reg.log_histogram("lat", 9.0, 99.0, 4), &h);  // first wins
  h.observe(1.0);
  h.observe(1.0);
  const std::string snap = reg.snapshot_json();
  EXPECT_NE(snap.find("\"log_histograms\":{\"lat\":{"), std::string::npos)
      << snap;
  EXPECT_NE(snap.find("\"count\":2"), std::string::npos) << snap;
  const std::size_t idx = h.bucket_index(1.0);
  EXPECT_NE(snap.find("\"buckets\":[[" + std::to_string(idx) + ",2]]"),
            std::string::npos)
      << snap;
}

TEST(MetricsTest, SnapshotWhileWritingFromThreads) {
  // Writers hammer a counter, gauge, and histogram while the main thread
  // snapshots concurrently; under -DDROPBACK_SANITIZE=thread this also
  // proves the registry race-free. The final counter value is exact.
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  obs::Gauge& g = reg.gauge("g");
  obs::Histogram& h = reg.histogram("h", {0.5});
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.add(1);
        g.set(static_cast<double>(t));
        h.observe(i % 2 == 0 ? 0.0 : 1.0);
      }
    });
  }
  for (int s = 0; s < 50; ++s) {
    const std::string snap = reg.snapshot_json();
    EXPECT_NE(snap.find("\"c\":"), std::string::npos);
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
}

// Golden schema: the exact field order of a step record, as documented in
// obs/event_stream.hpp and consumed by metrics_tool. Any change here is a
// telemetry format break and must update docs/OBSERVABILITY.md.
TEST(EventSchemaTest, StepRecordGoldenFieldOrder) {
  obs::StepEvent ev;
  ev.step = 12;
  ev.epoch = 1;
  ev.loss = 2.5;
  ev.acc = 0.25;
  ev.has_dropback = true;
  ev.churn_in = 10;
  ev.churn_out = 7;
  ev.tracked = 2000;
  ev.budget = 2000;
  ev.occupancy = 1.0;
  ev.has_quantiles = true;
  ev.grad_q50 = 0.25;
  ev.grad_q90 = 0.5;
  ev.grad_q99 = 0.75;
  ev.step_ms = 8.5;
  ev.forward_ms = 2.0;
  ev.backward_ms = 3.0;
  ev.optimizer_ms = 3.5;
  EXPECT_EQ(
      ev.to_json(),
      R"({"type":"step","step":12,"epoch":1,"loss":2.5,"acc":0.25,)"
      R"("churn_in":10,"churn_out":7,"tracked":2000,"budget":2000,)"
      R"("occupancy":1,"grad_q50":0.25,"grad_q90":0.5,"grad_q99":0.75,)"
      R"("step_ms":8.5,"forward_ms":2,"backward_ms":3,"optimizer_ms":3.5})");
}

TEST(EventSchemaTest, StepRecordNullsWithoutDropBack) {
  obs::StepEvent ev;
  ev.step = 1;
  const auto rec = obs::parse_flat_object(ev.to_json());
  EXPECT_EQ(rec.at("type").string, "step");
  EXPECT_EQ(rec.at("churn_in").type, obs::JsonValue::Type::kNull);
  EXPECT_EQ(rec.at("grad_q50").type, obs::JsonValue::Type::kNull);
  EXPECT_EQ(rec.at("occupancy").type, obs::JsonValue::Type::kNull);
}

TEST(EventSchemaTest, OtherRecordsParseWithTypes) {
  obs::EpochEvent ep;
  ep.epoch = 2;
  ep.frozen = true;
  EXPECT_EQ(obs::parse_flat_object(ep.to_json()).at("type").string, "epoch");
  obs::CheckpointEvent cp;
  cp.path = "a\"b";  // exercises escaping through the full record path
  EXPECT_EQ(obs::parse_flat_object(cp.to_json()).at("path").string, "a\"b");
  obs::AnomalyEvent an;
  an.what = "loss is nan";
  an.policy = "skip";
  EXPECT_EQ(obs::parse_flat_object(an.to_json()).at("policy").string, "skip");
  obs::SummaryEvent su;
  su.steps = 5;
  EXPECT_EQ(obs::parse_flat_object(su.to_json()).at("steps").number, 5.0);
}

TEST(EventStreamTest, MemorySinkCountsAndKeepsLines) {
  auto sink = std::make_unique<obs::MemorySink>();
  auto* raw = sink.get();
  obs::EventStream stream(std::move(sink));
  stream.emit("{\"type\":\"step\"}");
  stream.emit("{\"type\":\"summary\"}");
  EXPECT_EQ(stream.records(), 2);
  ASSERT_EQ(raw->lines().size(), 2U);
  EXPECT_EQ(raw->lines()[0], "{\"type\":\"step\"}");
}

}  // namespace
