// MetricsRegistry, JSON helpers, and event-stream schema tests (ISSUE 3):
// histogram bucket boundaries including under/overflow bins, counter wrap
// modulo 2^64, snapshot-while-writing from concurrent threads, and the
// golden field-order schema of the JSONL step record.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_stream.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace dropback;

TEST(JsonTest, EscapeAndNumberRoundTrip) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(obs::json_number(3.0), "3");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()), "null");
  // Shortest-round-trip: the value survives a print/parse cycle bit-exactly.
  const double v = 0.1 + 0.2;
  const auto rec =
      obs::parse_flat_object("{\"v\":" + obs::json_number(v) + "}");
  EXPECT_EQ(rec.at("v").number, v);
}

TEST(JsonTest, ParseFlatObjectTypes) {
  const auto rec = obs::parse_flat_object(
      R"({"s":"x","n":-2.5,"t":true,"f":false,"z":null})");
  EXPECT_EQ(rec.at("s").type, obs::JsonValue::Type::kString);
  EXPECT_EQ(rec.at("s").string, "x");
  EXPECT_EQ(rec.at("n").number, -2.5);
  EXPECT_TRUE(rec.at("t").boolean);
  EXPECT_FALSE(rec.at("f").boolean);
  EXPECT_EQ(rec.at("z").type, obs::JsonValue::Type::kNull);
}

TEST(JsonTest, ParseRejectsCorruptInputLoudly) {
  EXPECT_THROW(obs::parse_flat_object("{\"a\":1"), std::runtime_error);
  EXPECT_THROW(obs::parse_flat_object("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(obs::parse_flat_object("not json"), std::runtime_error);
  EXPECT_THROW(obs::parse_flat_object("{\"a\":{\"nested\":1}}"),
               std::runtime_error);
  EXPECT_THROW(obs::parse_flat_object("{\"a\":1}trailing"),
               std::runtime_error);
}

TEST(JsonTest, KernelTimingSchema) {
  const std::string line = obs::kernel_timing_json("matmul", 3, 1500, 2);
  EXPECT_EQ(line,
            R"({"name":"matmul","calls":3,"total_us":1500,"threads":2})");
  const auto rec = obs::parse_flat_object(line);
  EXPECT_EQ(rec.at("name").string, "matmul");
  EXPECT_EQ(rec.at("calls").number, 3.0);
}

TEST(MetricsTest, CounterWrapsModulo2e64) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("wrap");
  c.add(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(c.value(), std::numeric_limits<std::uint64_t>::max());
  c.add(2);  // odometer semantics: wraps, does not saturate
  EXPECT_EQ(c.value(), 1U);
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat", {1.0, 10.0, 100.0});
  ASSERT_EQ(h.num_buckets(), 4U);  // underflow + 2 interior + overflow
  h.observe(0.5);    // < 1           -> bucket 0 (underflow)
  h.observe(1.0);    // [1, 10)       -> bucket 1 (left-closed boundary)
  h.observe(9.999);  // [1, 10)       -> bucket 1
  h.observe(10.0);   // [10, 100)     -> bucket 2
  h.observe(100.0);  // >= 100        -> bucket 3 (overflow, boundary)
  h.observe(1e9);    // >= 100        -> bucket 3
  EXPECT_EQ(h.bucket_count(0), 1U);
  EXPECT_EQ(h.bucket_count(1), 2U);
  EXPECT_EQ(h.bucket_count(2), 1U);
  EXPECT_EQ(h.bucket_count(3), 2U);
  EXPECT_EQ(h.count(), 6U);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 9.999 + 10.0 + 100.0 + 1e9);
}

TEST(MetricsTest, RegistryReturnsSameMetricAndFirstBoundsWin) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x");
  a.add(3);
  EXPECT_EQ(&reg.counter("x"), &a);
  obs::Histogram& h = reg.histogram("h", {1.0, 2.0});
  EXPECT_EQ(&reg.histogram("h", {99.0}), &h);
  EXPECT_EQ(h.bounds().size(), 2U);
}

TEST(MetricsTest, SnapshotJsonShape) {
  obs::MetricsRegistry reg;
  reg.counter("steps").add(7);
  reg.gauge("loss").set(1.5);
  reg.histogram("ms", {10.0}).observe(3.0);
  const std::string snap = reg.snapshot_json();
  EXPECT_NE(snap.find("\"counters\":{\"steps\":7}"), std::string::npos)
      << snap;
  EXPECT_NE(snap.find("\"loss\":1.5"), std::string::npos) << snap;
  EXPECT_NE(snap.find("\"bounds\":[10]"), std::string::npos) << snap;
  EXPECT_NE(snap.find("\"counts\":[1,0]"), std::string::npos) << snap;
}

TEST(MetricsTest, SnapshotWhileWritingFromThreads) {
  // Writers hammer a counter, gauge, and histogram while the main thread
  // snapshots concurrently; under -DDROPBACK_SANITIZE=thread this also
  // proves the registry race-free. The final counter value is exact.
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  obs::Gauge& g = reg.gauge("g");
  obs::Histogram& h = reg.histogram("h", {0.5});
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.add(1);
        g.set(static_cast<double>(t));
        h.observe(i % 2 == 0 ? 0.0 : 1.0);
      }
    });
  }
  for (int s = 0; s < 50; ++s) {
    const std::string snap = reg.snapshot_json();
    EXPECT_NE(snap.find("\"c\":"), std::string::npos);
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
}

// Golden schema: the exact field order of a step record, as documented in
// obs/event_stream.hpp and consumed by metrics_tool. Any change here is a
// telemetry format break and must update docs/OBSERVABILITY.md.
TEST(EventSchemaTest, StepRecordGoldenFieldOrder) {
  obs::StepEvent ev;
  ev.step = 12;
  ev.epoch = 1;
  ev.loss = 2.5;
  ev.acc = 0.25;
  ev.has_dropback = true;
  ev.churn_in = 10;
  ev.churn_out = 7;
  ev.tracked = 2000;
  ev.budget = 2000;
  ev.occupancy = 1.0;
  ev.has_quantiles = true;
  ev.grad_q50 = 0.25;
  ev.grad_q90 = 0.5;
  ev.grad_q99 = 0.75;
  ev.step_ms = 8.5;
  ev.forward_ms = 2.0;
  ev.backward_ms = 3.0;
  ev.optimizer_ms = 3.5;
  EXPECT_EQ(
      ev.to_json(),
      R"({"type":"step","step":12,"epoch":1,"loss":2.5,"acc":0.25,)"
      R"("churn_in":10,"churn_out":7,"tracked":2000,"budget":2000,)"
      R"("occupancy":1,"grad_q50":0.25,"grad_q90":0.5,"grad_q99":0.75,)"
      R"("step_ms":8.5,"forward_ms":2,"backward_ms":3,"optimizer_ms":3.5})");
}

TEST(EventSchemaTest, StepRecordNullsWithoutDropBack) {
  obs::StepEvent ev;
  ev.step = 1;
  const auto rec = obs::parse_flat_object(ev.to_json());
  EXPECT_EQ(rec.at("type").string, "step");
  EXPECT_EQ(rec.at("churn_in").type, obs::JsonValue::Type::kNull);
  EXPECT_EQ(rec.at("grad_q50").type, obs::JsonValue::Type::kNull);
  EXPECT_EQ(rec.at("occupancy").type, obs::JsonValue::Type::kNull);
}

TEST(EventSchemaTest, OtherRecordsParseWithTypes) {
  obs::EpochEvent ep;
  ep.epoch = 2;
  ep.frozen = true;
  EXPECT_EQ(obs::parse_flat_object(ep.to_json()).at("type").string, "epoch");
  obs::CheckpointEvent cp;
  cp.path = "a\"b";  // exercises escaping through the full record path
  EXPECT_EQ(obs::parse_flat_object(cp.to_json()).at("path").string, "a\"b");
  obs::AnomalyEvent an;
  an.what = "loss is nan";
  an.policy = "skip";
  EXPECT_EQ(obs::parse_flat_object(an.to_json()).at("policy").string, "skip");
  obs::SummaryEvent su;
  su.steps = 5;
  EXPECT_EQ(obs::parse_flat_object(su.to_json()).at("steps").number, 5.0);
}

TEST(EventStreamTest, MemorySinkCountsAndKeepsLines) {
  auto sink = std::make_unique<obs::MemorySink>();
  auto* raw = sink.get();
  obs::EventStream stream(std::move(sink));
  stream.emit("{\"type\":\"step\"}");
  stream.emit("{\"type\":\"summary\"}");
  EXPECT_EQ(stream.records(), 2);
  ASSERT_EQ(raw->lines().size(), 2U);
  EXPECT_EQ(raw->lines()[0], "{\"type\":\"step\"}");
}

}  // namespace
