// Tests for the real-dataset format loaders (MNIST IDX, CIFAR-10 binary),
// using the writers to round-trip synthetic data through the genuine
// on-disk formats.
#include "data/real_data.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "data/synthetic_cifar.hpp"
#include "data/synthetic_mnist.hpp"

namespace dropback::data {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(MnistIdx, RoundTripPreservesLabelsAndQuantizedPixels) {
  SyntheticMnistOptions opt;
  opt.num_samples = 20;
  auto original = make_synthetic_mnist(opt);
  const std::string images = temp_path("mnist_images.idx3");
  const std::string labels = temp_path("mnist_labels.idx1");
  write_mnist_idx(images, labels, *original);
  auto loaded = load_mnist_idx(images, labels);
  ASSERT_EQ(loaded->size(), 20);
  EXPECT_EQ(loaded->sample_shape(), (tensor::Shape{1, 28, 28}));
  std::vector<float> a(784), b(784);
  for (std::int64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(loaded->label(i), original->label(i));
    original->copy_sample(i, a.data());
    loaded->copy_sample(i, b.data());
    for (int p = 0; p < 784; ++p) {
      // One 8-bit quantization round trip: error <= 1/255 (plus rounding).
      ASSERT_NEAR(a[p], b[p], 1.0F / 255.0F + 1e-6F);
    }
  }
}

TEST(MnistIdx, RejectsBadMagic) {
  const std::string images = temp_path("bad_images.idx3");
  const std::string labels = temp_path("bad_labels.idx1");
  std::ofstream(images, std::ios::binary) << "NOT AN IDX FILE AT ALL";
  std::ofstream(labels, std::ios::binary) << "NOT AN IDX FILE AT ALL";
  EXPECT_THROW(load_mnist_idx(images, labels), std::runtime_error);
}

TEST(MnistIdx, RejectsCountMismatch) {
  SyntheticMnistOptions opt;
  opt.num_samples = 8;
  auto ds_a = make_synthetic_mnist(opt);
  opt.num_samples = 4;
  auto ds_b = make_synthetic_mnist(opt);
  const std::string images_a = temp_path("mm_images.idx3");
  const std::string labels_a = temp_path("mm_labels_a.idx1");
  const std::string images_b = temp_path("mm_images_b.idx3");
  const std::string labels_b = temp_path("mm_labels.idx1");
  write_mnist_idx(images_a, labels_a, *ds_a);
  write_mnist_idx(images_b, labels_b, *ds_b);
  EXPECT_THROW(load_mnist_idx(images_a, labels_b), std::runtime_error);
}

TEST(MnistIdx, RejectsTruncatedPixels) {
  SyntheticMnistOptions opt;
  opt.num_samples = 4;
  auto ds = make_synthetic_mnist(opt);
  const std::string images = temp_path("trunc_images.idx3");
  const std::string labels = temp_path("trunc_labels.idx1");
  write_mnist_idx(images, labels, *ds);
  // Truncate the image file.
  std::ifstream in(images, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(images, std::ios::binary)
      << content.substr(0, content.size() / 2);
  EXPECT_THROW(load_mnist_idx(images, labels), std::runtime_error);
}

TEST(MnistIdx, MissingFileThrows) {
  EXPECT_THROW(load_mnist_idx("/nonexistent/images", "/nonexistent/labels"),
               std::runtime_error);
}

TEST(Cifar10Binary, RoundTripSingleBatch) {
  SyntheticCifarOptions opt;
  opt.num_samples = 12;
  auto original = make_synthetic_cifar(opt);
  const std::string path = temp_path("cifar_batch.bin");
  write_cifar10_batch(path, *original);
  auto loaded = load_cifar10_batches({path});
  ASSERT_EQ(loaded->size(), 12);
  EXPECT_EQ(loaded->sample_shape(), (tensor::Shape{3, 32, 32}));
  std::vector<float> a(3 * 32 * 32), b(3 * 32 * 32);
  for (std::int64_t i = 0; i < 12; ++i) {
    EXPECT_EQ(loaded->label(i), original->label(i));
    original->copy_sample(i, a.data());
    loaded->copy_sample(i, b.data());
    for (std::size_t p = 0; p < a.size(); ++p) {
      ASSERT_NEAR(a[p], b[p], 1.0F / 255.0F + 1e-6F);
    }
  }
}

TEST(Cifar10Binary, ConcatenatesMultipleBatches) {
  SyntheticCifarOptions opt;
  opt.num_samples = 5;
  auto ds1 = make_synthetic_cifar(opt);
  opt.seed = 99;
  opt.num_samples = 7;
  auto ds2 = make_synthetic_cifar(opt);
  const std::string p1 = temp_path("cifar_b1.bin");
  const std::string p2 = temp_path("cifar_b2.bin");
  write_cifar10_batch(p1, *ds1);
  write_cifar10_batch(p2, *ds2);
  auto loaded = load_cifar10_batches({p1, p2});
  EXPECT_EQ(loaded->size(), 12);
  EXPECT_EQ(loaded->label(0), ds1->label(0));
  EXPECT_EQ(loaded->label(5), ds2->label(0));
}

TEST(Cifar10Binary, RejectsNonRecordSizedFile) {
  const std::string path = temp_path("cifar_bad.bin");
  std::ofstream(path, std::ios::binary) << "only a few bytes";
  EXPECT_THROW(load_cifar10_batches({path}), std::runtime_error);
}

TEST(Cifar10Binary, RejectsOutOfRangeLabel) {
  const std::string path = temp_path("cifar_badlabel.bin");
  std::ofstream out(path, std::ios::binary);
  std::vector<char> record(3073, 0);
  record[0] = 42;  // invalid label
  out.write(record.data(), static_cast<std::streamsize>(record.size()));
  out.close();
  EXPECT_THROW(load_cifar10_batches({path}), std::runtime_error);
}

TEST(Cifar10Binary, EmptyPathListThrows) {
  EXPECT_THROW(load_cifar10_batches({}), std::invalid_argument);
}

}  // namespace
}  // namespace dropback::data
