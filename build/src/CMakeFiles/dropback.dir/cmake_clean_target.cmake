file(REMOVE_RECURSE
  "libdropback.a"
)
