# Empty dependencies file for dropback.
# This may be replaced when dependencies are built.
