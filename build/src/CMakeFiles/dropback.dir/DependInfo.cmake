
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/diffusion.cpp" "src/CMakeFiles/dropback.dir/analysis/diffusion.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/analysis/diffusion.cpp.o.d"
  "/root/repo/src/analysis/kde.cpp" "src/CMakeFiles/dropback.dir/analysis/kde.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/analysis/kde.cpp.o.d"
  "/root/repo/src/analysis/pca.cpp" "src/CMakeFiles/dropback.dir/analysis/pca.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/analysis/pca.cpp.o.d"
  "/root/repo/src/analysis/set_stability.cpp" "src/CMakeFiles/dropback.dir/analysis/set_stability.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/analysis/set_stability.cpp.o.d"
  "/root/repo/src/analysis/sparsity_report.cpp" "src/CMakeFiles/dropback.dir/analysis/sparsity_report.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/analysis/sparsity_report.cpp.o.d"
  "/root/repo/src/autograd/conv_ops.cpp" "src/CMakeFiles/dropback.dir/autograd/conv_ops.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/autograd/conv_ops.cpp.o.d"
  "/root/repo/src/autograd/ops.cpp" "src/CMakeFiles/dropback.dir/autograd/ops.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/autograd/ops.cpp.o.d"
  "/root/repo/src/autograd/variable.cpp" "src/CMakeFiles/dropback.dir/autograd/variable.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/autograd/variable.cpp.o.d"
  "/root/repo/src/baselines/dsd.cpp" "src/CMakeFiles/dropback.dir/baselines/dsd.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/baselines/dsd.cpp.o.d"
  "/root/repo/src/baselines/gradual_pruner.cpp" "src/CMakeFiles/dropback.dir/baselines/gradual_pruner.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/baselines/gradual_pruner.cpp.o.d"
  "/root/repo/src/baselines/magnitude_pruner.cpp" "src/CMakeFiles/dropback.dir/baselines/magnitude_pruner.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/baselines/magnitude_pruner.cpp.o.d"
  "/root/repo/src/baselines/network_slimming.cpp" "src/CMakeFiles/dropback.dir/baselines/network_slimming.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/baselines/network_slimming.cpp.o.d"
  "/root/repo/src/baselines/variational_dropout.cpp" "src/CMakeFiles/dropback.dir/baselines/variational_dropout.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/baselines/variational_dropout.cpp.o.d"
  "/root/repo/src/core/accumulated_gradients.cpp" "src/CMakeFiles/dropback.dir/core/accumulated_gradients.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/core/accumulated_gradients.cpp.o.d"
  "/root/repo/src/core/dropback_optimizer.cpp" "src/CMakeFiles/dropback.dir/core/dropback_optimizer.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/core/dropback_optimizer.cpp.o.d"
  "/root/repo/src/core/reference_algorithm.cpp" "src/CMakeFiles/dropback.dir/core/reference_algorithm.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/core/reference_algorithm.cpp.o.d"
  "/root/repo/src/core/sparse_backward.cpp" "src/CMakeFiles/dropback.dir/core/sparse_backward.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/core/sparse_backward.cpp.o.d"
  "/root/repo/src/core/sparse_weight_store.cpp" "src/CMakeFiles/dropback.dir/core/sparse_weight_store.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/core/sparse_weight_store.cpp.o.d"
  "/root/repo/src/core/tracked_set.cpp" "src/CMakeFiles/dropback.dir/core/tracked_set.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/core/tracked_set.cpp.o.d"
  "/root/repo/src/data/dataloader.cpp" "src/CMakeFiles/dropback.dir/data/dataloader.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/data/dataloader.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/dropback.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/real_data.cpp" "src/CMakeFiles/dropback.dir/data/real_data.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/data/real_data.cpp.o.d"
  "/root/repo/src/data/synthetic_cifar.cpp" "src/CMakeFiles/dropback.dir/data/synthetic_cifar.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/data/synthetic_cifar.cpp.o.d"
  "/root/repo/src/data/synthetic_mnist.cpp" "src/CMakeFiles/dropback.dir/data/synthetic_mnist.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/data/synthetic_mnist.cpp.o.d"
  "/root/repo/src/energy/energy_model.cpp" "src/CMakeFiles/dropback.dir/energy/energy_model.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/energy/energy_model.cpp.o.d"
  "/root/repo/src/energy/memory_hierarchy.cpp" "src/CMakeFiles/dropback.dir/energy/memory_hierarchy.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/energy/memory_hierarchy.cpp.o.d"
  "/root/repo/src/inference/regen_forward.cpp" "src/CMakeFiles/dropback.dir/inference/regen_forward.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/inference/regen_forward.cpp.o.d"
  "/root/repo/src/nn/activations.cpp" "src/CMakeFiles/dropback.dir/nn/activations.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/nn/activations.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/CMakeFiles/dropback.dir/nn/batchnorm.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/nn/batchnorm.cpp.o.d"
  "/root/repo/src/nn/checkpoint.cpp" "src/CMakeFiles/dropback.dir/nn/checkpoint.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/nn/checkpoint.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/CMakeFiles/dropback.dir/nn/conv2d.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/nn/conv2d.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/CMakeFiles/dropback.dir/nn/dropout.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/nn/dropout.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/dropback.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/dropback.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/models/densenet.cpp" "src/CMakeFiles/dropback.dir/nn/models/densenet.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/nn/models/densenet.cpp.o.d"
  "/root/repo/src/nn/models/lenet.cpp" "src/CMakeFiles/dropback.dir/nn/models/lenet.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/nn/models/lenet.cpp.o.d"
  "/root/repo/src/nn/models/vgg_s.cpp" "src/CMakeFiles/dropback.dir/nn/models/vgg_s.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/nn/models/vgg_s.cpp.o.d"
  "/root/repo/src/nn/models/wrn.cpp" "src/CMakeFiles/dropback.dir/nn/models/wrn.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/nn/models/wrn.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/CMakeFiles/dropback.dir/nn/module.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/nn/module.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/CMakeFiles/dropback.dir/nn/pooling.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/nn/pooling.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/CMakeFiles/dropback.dir/nn/sequential.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/nn/sequential.cpp.o.d"
  "/root/repo/src/optim/lr_schedule.cpp" "src/CMakeFiles/dropback.dir/optim/lr_schedule.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/optim/lr_schedule.cpp.o.d"
  "/root/repo/src/optim/momentum.cpp" "src/CMakeFiles/dropback.dir/optim/momentum.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/optim/momentum.cpp.o.d"
  "/root/repo/src/optim/sgd.cpp" "src/CMakeFiles/dropback.dir/optim/sgd.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/optim/sgd.cpp.o.d"
  "/root/repo/src/quant/quantized_store.cpp" "src/CMakeFiles/dropback.dir/quant/quantized_store.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/quant/quantized_store.cpp.o.d"
  "/root/repo/src/rng/init_spec.cpp" "src/CMakeFiles/dropback.dir/rng/init_spec.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/rng/init_spec.cpp.o.d"
  "/root/repo/src/rng/xorshift.cpp" "src/CMakeFiles/dropback.dir/rng/xorshift.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/rng/xorshift.cpp.o.d"
  "/root/repo/src/tensor/conv.cpp" "src/CMakeFiles/dropback.dir/tensor/conv.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/tensor/conv.cpp.o.d"
  "/root/repo/src/tensor/matmul.cpp" "src/CMakeFiles/dropback.dir/tensor/matmul.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/tensor/matmul.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/dropback.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/serialize.cpp" "src/CMakeFiles/dropback.dir/tensor/serialize.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/tensor/serialize.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/dropback.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/tensor/tensor.cpp.o.d"
  "/root/repo/src/train/dropback_session.cpp" "src/CMakeFiles/dropback.dir/train/dropback_session.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/train/dropback_session.cpp.o.d"
  "/root/repo/src/train/eval_metrics.cpp" "src/CMakeFiles/dropback.dir/train/eval_metrics.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/train/eval_metrics.cpp.o.d"
  "/root/repo/src/train/trainer.cpp" "src/CMakeFiles/dropback.dir/train/trainer.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/train/trainer.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/dropback.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/flags.cpp" "src/CMakeFiles/dropback.dir/util/flags.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/util/flags.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/dropback.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/util/log.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/dropback.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/dropback.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
