file(REMOVE_RECURSE
  "CMakeFiles/momentum_checkpoint_test.dir/momentum_checkpoint_test.cpp.o"
  "CMakeFiles/momentum_checkpoint_test.dir/momentum_checkpoint_test.cpp.o.d"
  "momentum_checkpoint_test"
  "momentum_checkpoint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/momentum_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
