# Empty dependencies file for momentum_checkpoint_test.
# This may be replaced when dependencies are built.
