file(REMOVE_RECURSE
  "CMakeFiles/reference_equivalence_test.dir/reference_equivalence_test.cpp.o"
  "CMakeFiles/reference_equivalence_test.dir/reference_equivalence_test.cpp.o.d"
  "reference_equivalence_test"
  "reference_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
