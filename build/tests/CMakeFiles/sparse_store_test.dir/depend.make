# Empty dependencies file for sparse_store_test.
# This may be replaced when dependencies are built.
