file(REMOVE_RECURSE
  "CMakeFiles/sparse_store_test.dir/sparse_store_test.cpp.o"
  "CMakeFiles/sparse_store_test.dir/sparse_store_test.cpp.o.d"
  "sparse_store_test"
  "sparse_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
