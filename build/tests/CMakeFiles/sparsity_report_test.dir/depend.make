# Empty dependencies file for sparsity_report_test.
# This may be replaced when dependencies are built.
