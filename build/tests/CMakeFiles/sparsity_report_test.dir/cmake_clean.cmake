file(REMOVE_RECURSE
  "CMakeFiles/sparsity_report_test.dir/sparsity_report_test.cpp.o"
  "CMakeFiles/sparsity_report_test.dir/sparsity_report_test.cpp.o.d"
  "sparsity_report_test"
  "sparsity_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparsity_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
