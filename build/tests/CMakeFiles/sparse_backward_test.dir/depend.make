# Empty dependencies file for sparse_backward_test.
# This may be replaced when dependencies are built.
