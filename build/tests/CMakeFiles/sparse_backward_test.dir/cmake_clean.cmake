file(REMOVE_RECURSE
  "CMakeFiles/sparse_backward_test.dir/sparse_backward_test.cpp.o"
  "CMakeFiles/sparse_backward_test.dir/sparse_backward_test.cpp.o.d"
  "sparse_backward_test"
  "sparse_backward_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_backward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
