# Empty compiler generated dependencies file for dropback_invariant_test.
# This may be replaced when dependencies are built.
