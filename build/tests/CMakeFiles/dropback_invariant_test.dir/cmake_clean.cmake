file(REMOVE_RECURSE
  "CMakeFiles/dropback_invariant_test.dir/dropback_invariant_test.cpp.o"
  "CMakeFiles/dropback_invariant_test.dir/dropback_invariant_test.cpp.o.d"
  "dropback_invariant_test"
  "dropback_invariant_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dropback_invariant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
