file(REMOVE_RECURSE
  "CMakeFiles/real_data_test.dir/real_data_test.cpp.o"
  "CMakeFiles/real_data_test.dir/real_data_test.cpp.o.d"
  "real_data_test"
  "real_data_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
