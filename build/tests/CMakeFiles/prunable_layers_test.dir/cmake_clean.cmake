file(REMOVE_RECURSE
  "CMakeFiles/prunable_layers_test.dir/prunable_layers_test.cpp.o"
  "CMakeFiles/prunable_layers_test.dir/prunable_layers_test.cpp.o.d"
  "prunable_layers_test"
  "prunable_layers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prunable_layers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
