# Empty dependencies file for prunable_layers_test.
# This may be replaced when dependencies are built.
