file(REMOVE_RECURSE
  "CMakeFiles/golden_rng_test.dir/golden_rng_test.cpp.o"
  "CMakeFiles/golden_rng_test.dir/golden_rng_test.cpp.o.d"
  "golden_rng_test"
  "golden_rng_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_rng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
