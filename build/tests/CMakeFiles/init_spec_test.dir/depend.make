# Empty dependencies file for init_spec_test.
# This may be replaced when dependencies are built.
