file(REMOVE_RECURSE
  "CMakeFiles/init_spec_test.dir/init_spec_test.cpp.o"
  "CMakeFiles/init_spec_test.dir/init_spec_test.cpp.o.d"
  "init_spec_test"
  "init_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/init_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
