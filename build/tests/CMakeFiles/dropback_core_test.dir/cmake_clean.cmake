file(REMOVE_RECURSE
  "CMakeFiles/dropback_core_test.dir/dropback_core_test.cpp.o"
  "CMakeFiles/dropback_core_test.dir/dropback_core_test.cpp.o.d"
  "dropback_core_test"
  "dropback_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dropback_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
