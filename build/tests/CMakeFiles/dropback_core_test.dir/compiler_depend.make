# Empty compiler generated dependencies file for dropback_core_test.
# This may be replaced when dependencies are built.
