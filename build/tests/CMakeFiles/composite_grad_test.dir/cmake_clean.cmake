file(REMOVE_RECURSE
  "CMakeFiles/composite_grad_test.dir/composite_grad_test.cpp.o"
  "CMakeFiles/composite_grad_test.dir/composite_grad_test.cpp.o.d"
  "composite_grad_test"
  "composite_grad_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composite_grad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
