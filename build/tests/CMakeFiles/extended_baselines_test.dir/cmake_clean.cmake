file(REMOVE_RECURSE
  "CMakeFiles/extended_baselines_test.dir/extended_baselines_test.cpp.o"
  "CMakeFiles/extended_baselines_test.dir/extended_baselines_test.cpp.o.d"
  "extended_baselines_test"
  "extended_baselines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
