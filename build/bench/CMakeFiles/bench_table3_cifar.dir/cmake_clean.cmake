file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_cifar.dir/bench_table3_cifar.cpp.o"
  "CMakeFiles/bench_table3_cifar.dir/bench_table3_cifar.cpp.o.d"
  "bench_table3_cifar"
  "bench_table3_cifar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_cifar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
