# Empty dependencies file for bench_ablation_budget_sweep.
# This may be replaced when dependencies are built.
