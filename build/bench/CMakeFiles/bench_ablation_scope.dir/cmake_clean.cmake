file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scope.dir/bench_ablation_scope.cpp.o"
  "CMakeFiles/bench_ablation_scope.dir/bench_ablation_scope.cpp.o.d"
  "bench_ablation_scope"
  "bench_ablation_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
