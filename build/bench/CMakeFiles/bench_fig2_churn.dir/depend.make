# Empty dependencies file for bench_fig2_churn.
# This may be replaced when dependencies are built.
