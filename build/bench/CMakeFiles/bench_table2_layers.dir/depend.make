# Empty dependencies file for bench_table2_layers.
# This may be replaced when dependencies are built.
