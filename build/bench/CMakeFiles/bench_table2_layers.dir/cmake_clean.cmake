file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_layers.dir/bench_table2_layers.cpp.o"
  "CMakeFiles/bench_table2_layers.dir/bench_table2_layers.cpp.o.d"
  "bench_table2_layers"
  "bench_table2_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
