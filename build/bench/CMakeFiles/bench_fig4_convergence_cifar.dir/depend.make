# Empty dependencies file for bench_fig4_convergence_cifar.
# This may be replaced when dependencies are built.
