file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_convergence_cifar.dir/bench_fig4_convergence_cifar.cpp.o"
  "CMakeFiles/bench_fig4_convergence_cifar.dir/bench_fig4_convergence_cifar.cpp.o.d"
  "bench_fig4_convergence_cifar"
  "bench_fig4_convergence_cifar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_convergence_cifar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
