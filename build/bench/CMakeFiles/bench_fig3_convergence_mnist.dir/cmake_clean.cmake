file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_convergence_mnist.dir/bench_fig3_convergence_mnist.cpp.o"
  "CMakeFiles/bench_fig3_convergence_mnist.dir/bench_fig3_convergence_mnist.cpp.o.d"
  "bench_fig3_convergence_mnist"
  "bench_fig3_convergence_mnist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_convergence_mnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
