file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_mnist.dir/bench_table1_mnist.cpp.o"
  "CMakeFiles/bench_table1_mnist.dir/bench_table1_mnist.cpp.o.d"
  "bench_table1_mnist"
  "bench_table1_mnist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_mnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
