file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_pca.dir/bench_fig6_pca.cpp.o"
  "CMakeFiles/bench_fig6_pca.dir/bench_fig6_pca.cpp.o.d"
  "bench_fig6_pca"
  "bench_fig6_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
