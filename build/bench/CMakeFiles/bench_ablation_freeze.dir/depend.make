# Empty dependencies file for bench_ablation_freeze.
# This may be replaced when dependencies are built.
