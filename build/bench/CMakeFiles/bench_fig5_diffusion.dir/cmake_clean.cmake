file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_diffusion.dir/bench_fig5_diffusion.cpp.o"
  "CMakeFiles/bench_fig5_diffusion.dir/bench_fig5_diffusion.cpp.o.d"
  "bench_fig5_diffusion"
  "bench_fig5_diffusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
