# Empty dependencies file for bench_fig5_diffusion.
# This may be replaced when dependencies are built.
