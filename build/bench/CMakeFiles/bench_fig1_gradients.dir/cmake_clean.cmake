file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_gradients.dir/bench_fig1_gradients.cpp.o"
  "CMakeFiles/bench_fig1_gradients.dir/bench_fig1_gradients.cpp.o.d"
  "bench_fig1_gradients"
  "bench_fig1_gradients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_gradients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
