# Empty dependencies file for compare_pruning.
# This may be replaced when dependencies are built.
