file(REMOVE_RECURSE
  "CMakeFiles/compare_pruning.dir/compare_pruning.cpp.o"
  "CMakeFiles/compare_pruning.dir/compare_pruning.cpp.o.d"
  "compare_pruning"
  "compare_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
