# Empty compiler generated dependencies file for train_cifar_dropback.
# This may be replaced when dependencies are built.
