file(REMOVE_RECURSE
  "CMakeFiles/train_cifar_dropback.dir/train_cifar_dropback.cpp.o"
  "CMakeFiles/train_cifar_dropback.dir/train_cifar_dropback.cpp.o.d"
  "train_cifar_dropback"
  "train_cifar_dropback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_cifar_dropback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
