# Empty compiler generated dependencies file for store_tool.
# This may be replaced when dependencies are built.
