file(REMOVE_RECURSE
  "CMakeFiles/store_tool.dir/store_tool.cpp.o"
  "CMakeFiles/store_tool.dir/store_tool.cpp.o.d"
  "store_tool"
  "store_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
