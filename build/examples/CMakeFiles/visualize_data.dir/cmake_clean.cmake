file(REMOVE_RECURSE
  "CMakeFiles/visualize_data.dir/visualize_data.cpp.o"
  "CMakeFiles/visualize_data.dir/visualize_data.cpp.o.d"
  "visualize_data"
  "visualize_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visualize_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
