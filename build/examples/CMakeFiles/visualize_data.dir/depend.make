# Empty dependencies file for visualize_data.
# This may be replaced when dependencies are built.
