file(REMOVE_RECURSE
  "CMakeFiles/embedded_inference.dir/embedded_inference.cpp.o"
  "CMakeFiles/embedded_inference.dir/embedded_inference.cpp.o.d"
  "embedded_inference"
  "embedded_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
