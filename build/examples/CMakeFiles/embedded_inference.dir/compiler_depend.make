# Empty compiler generated dependencies file for embedded_inference.
# This may be replaced when dependencies are built.
