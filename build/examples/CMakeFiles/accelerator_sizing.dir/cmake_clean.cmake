file(REMOVE_RECURSE
  "CMakeFiles/accelerator_sizing.dir/accelerator_sizing.cpp.o"
  "CMakeFiles/accelerator_sizing.dir/accelerator_sizing.cpp.o.d"
  "accelerator_sizing"
  "accelerator_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
