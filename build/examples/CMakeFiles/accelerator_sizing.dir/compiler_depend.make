# Empty compiler generated dependencies file for accelerator_sizing.
# This may be replaced when dependencies are built.
