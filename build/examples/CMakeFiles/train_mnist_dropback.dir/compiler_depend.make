# Empty compiler generated dependencies file for train_mnist_dropback.
# This may be replaced when dependencies are built.
