file(REMOVE_RECURSE
  "CMakeFiles/train_mnist_dropback.dir/train_mnist_dropback.cpp.o"
  "CMakeFiles/train_mnist_dropback.dir/train_mnist_dropback.cpp.o.d"
  "train_mnist_dropback"
  "train_mnist_dropback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_mnist_dropback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
